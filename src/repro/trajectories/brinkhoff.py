"""Network-based moving-object generator in the spirit of Brinkhoff's tool.

The paper's Oldenburg workload comes from Brinkhoff's spatio-temporal
generator [13]: objects appear at network nodes, travel along shortest
paths toward sampled destinations at class-dependent speeds, and report
their position periodically.  This module reproduces that recipe — the
essential ingredients being network-constrained movement, object classes
with different speeds, and Poisson-like departure times — fully seeded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.graph import EdgeWeight, RoadNetwork
from ..network.path import Trip
from ..network.shortest_path import NoPathError, dijkstra
from .trajectory import Trajectory, TrajectoryDataset, TrajectoryPoint


@dataclass(frozen=True, slots=True)
class ObjectClass:
    """A Brinkhoff object class: a speed factor applied to edge speeds."""

    name: str
    speed_factor: float
    share: float

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if not 0.0 <= self.share <= 1.0:
            raise ValueError("share must be in [0, 1]")


#: Default classes: slow delivery vans, regular cars, fast through traffic.
DEFAULT_CLASSES = (
    ObjectClass("slow", 0.7, 0.2),
    ObjectClass("regular", 1.0, 0.6),
    ObjectClass("fast", 1.25, 0.2),
)


@dataclass(frozen=True, slots=True)
class GeneratorSpec:
    """Parameters for :func:`generate_dataset`."""

    object_count: int = 100
    report_interval_h: float = 1.0 / 60.0  # one fix per minute
    min_trip_km: float = 5.0
    # Late-morning window: the renewable-hoarding scenarios (shopping,
    # waiting parents, idle taxis) happen in daylight, when solar output
    # actually differentiates chargers.
    departure_start_h: float = 9.5
    departure_spread_h: float = 4.0
    classes: tuple[ObjectClass, ...] = DEFAULT_CLASSES
    seed: int = 3

    def __post_init__(self) -> None:
        if self.object_count < 1:
            raise ValueError("object_count must be positive")
        if self.report_interval_h <= 0:
            raise ValueError("report interval must be positive")
        if self.min_trip_km < 0:
            raise ValueError("min_trip_km must be non-negative")
        if abs(sum(c.share for c in self.classes) - 1.0) > 1e-9:
            raise ValueError("class shares must sum to 1")


def generate_trip(
    network: RoadNetwork,
    rng: np.random.Generator,
    min_trip_km: float,
    departure_time_h: float,
    max_attempts: int = 25,
) -> Trip:
    """Sample a routable trip of at least ``min_trip_km``."""
    node_ids = list(network.node_ids())
    if len(node_ids) < 2:
        raise ValueError("network too small to generate trips")
    for __ in range(max_attempts):
        source, target = rng.choice(node_ids, size=2, replace=False)
        try:
            result = dijkstra(network, int(source), int(target), EdgeWeight.DISTANCE_KM)
        except NoPathError:
            continue
        if result.cost >= min_trip_km:
            return Trip(network, result.nodes, departure_time_h)
    # Fall back to the longest attempt rather than failing the workload.
    source, target = rng.choice(node_ids, size=2, replace=False)
    result = dijkstra(network, int(source), int(target), EdgeWeight.DISTANCE_KM)
    return Trip(network, result.nodes, departure_time_h)


def trip_to_trajectory(
    trip: Trip,
    object_id: int,
    speed_factor: float = 1.0,
    report_interval_h: float = 1.0 / 60.0,
) -> Trajectory:
    """Drive a trip at edge speeds and report fixes periodically.

    The object moves edge by edge at ``edge.speed_kmh * speed_factor`` and
    a fix is emitted every ``report_interval_h``, plus one final fix at
    arrival.
    """
    if speed_factor <= 0:
        raise ValueError("speed_factor must be positive")
    if report_interval_h <= 0:
        raise ValueError("report interval must be positive")
    network = trip.network
    fixes = [TrajectoryPoint(trip.departure_time_h, network.node(trip.source).point)]
    clock = trip.departure_time_h
    next_report = clock + report_interval_h
    for a, b in zip(trip.node_ids, trip.node_ids[1:]):
        edge = network.edge(a, b)
        pa, pb = network.node(a).point, network.node(b).point
        travel_h = edge.length_km / (edge.speed_kmh * speed_factor)
        arrive = clock + travel_h
        while next_report < arrive and travel_h > 0:
            f = (next_report - clock) / travel_h
            fixes.append(
                TrajectoryPoint(
                    next_report,
                    type(pa)(pa.x + (pb.x - pa.x) * f, pa.y + (pb.y - pa.y) * f),
                )
            )
            next_report += report_interval_h
        clock = arrive
    fixes.append(TrajectoryPoint(clock, network.node(trip.destination).point))
    return Trajectory(object_id=object_id, fixes=tuple(fixes), node_path=trip.node_ids)


def generate_dataset(
    network: RoadNetwork, spec: GeneratorSpec, name: str = "brinkhoff"
) -> TrajectoryDataset:
    """Generate a full moving-object dataset over ``network``."""
    rng = np.random.default_rng(spec.seed)
    shares = np.array([c.share for c in spec.classes])
    trajectories = []
    for object_id in range(spec.object_count):
        departure = spec.departure_start_h + float(
            rng.uniform(0.0, spec.departure_spread_h)
        )
        object_class = spec.classes[int(rng.choice(len(spec.classes), p=shares))]
        trip = generate_trip(network, rng, spec.min_trip_km, departure)
        trajectories.append(
            trip_to_trajectory(
                trip,
                object_id=object_id,
                speed_factor=object_class.speed_factor,
                report_interval_h=spec.report_interval_h,
            )
        )
    return TrajectoryDataset(name=name, trajectories=tuple(trajectories))
