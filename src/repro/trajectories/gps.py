"""GPS realism: sampling-rate variation, measurement noise, map matching.

T-drive and Geolife are raw GPS logs — irregular sampling, metres of
positional noise, off-road fixes.  This module degrades clean
network-constrained trajectories into that shape and provides the inverse
operation (snap-to-network map matching) the pipeline needs before the
ranking algorithms can anchor queries to road nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.graph import RoadNetwork
from ..spatial.geometry import Point
from ..spatial.kdtree import KDTree
from .trajectory import Trajectory, TrajectoryPoint


@dataclass(frozen=True, slots=True)
class GpsNoiseSpec:
    """How to degrade a clean trajectory into a GPS-like one.

    ``position_std_km`` is per-axis Gaussian noise (10-20 m typical);
    ``drop_rate`` randomly drops fixes (urban canyons);
    ``resample_interval_h`` optionally re-times fixes to a fixed cadence
    first (Geolife's dense 1-5 s logging vs T-drive's sparse minutes).
    """

    position_std_km: float = 0.015
    drop_rate: float = 0.05
    resample_interval_h: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.position_std_km < 0:
            raise ValueError("position_std_km must be non-negative")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        if self.resample_interval_h is not None and self.resample_interval_h <= 0:
            raise ValueError("resample interval must be positive")


def degrade(trajectory: Trajectory, spec: GpsNoiseSpec) -> Trajectory:
    """Apply the noise spec; first and last fixes are never dropped."""
    rng = np.random.default_rng(spec.seed * 1_000_003 + trajectory.object_id)
    fixes = list(trajectory.fixes)
    if spec.resample_interval_h is not None and trajectory.duration_h > 0:
        times = np.arange(
            trajectory.start_time_h,
            trajectory.end_time_h + 1e-12,
            spec.resample_interval_h,
        )
        fixes = [TrajectoryPoint(float(t), trajectory.position_at(float(t))) for t in times]
        if fixes[-1].time_h < trajectory.end_time_h:
            fixes.append(trajectory.fixes[-1])
    kept: list[TrajectoryPoint] = []
    last = len(fixes) - 1
    for i, fix in enumerate(fixes):
        if 0 < i < last and rng.uniform() < spec.drop_rate:
            continue
        noise = rng.normal(0.0, spec.position_std_km, size=2)
        kept.append(
            TrajectoryPoint(
                fix.time_h, Point(fix.point.x + float(noise[0]), fix.point.y + float(noise[1]))
            )
        )
    return Trajectory(trajectory.object_id, tuple(kept), node_path=())


class MapMatcher:
    """Snap GPS fixes back onto the road network.

    Point-wise nearest-node matching with a smoothness prior: a candidate
    node is preferred when it is near the fix *and* adjacent (in hop
    distance) to the previous matched node.  Sufficient for the 10-20 m
    noise regime; full HMM matching is out of scope for the workloads
    here.
    """

    def __init__(self, network: RoadNetwork, candidate_k: int = 5, jump_penalty_km: float = 0.3):
        if candidate_k < 1:
            raise ValueError("candidate_k must be at least 1")
        self._network = network
        self._index: KDTree[int] = network.node_index()
        self._candidate_k = candidate_k
        self._jump_penalty_km = jump_penalty_km

    def match_point(self, point: Point) -> int:
        """Nearest network node to a single fix."""
        return self._index.nearest(point, 1)[0][2]

    def match(self, trajectory: Trajectory) -> tuple[int, ...]:
        """Matched node id per fix, de-duplicated consecutively."""
        matched: list[int] = []
        previous: int | None = None
        for fix in trajectory.fixes:
            candidates = self._index.nearest(fix.point, self._candidate_k)
            best_node = None
            best_cost = float("inf")
            for dist, __, node_id in candidates:
                cost = dist
                if previous is not None and node_id != previous:
                    if not self._network.has_edge(previous, node_id):
                        cost += self._jump_penalty_km
                if cost < best_cost:
                    best_cost = cost
                    best_node = node_id
            assert best_node is not None
            if not matched or matched[-1] != best_node:
                matched.append(best_node)
            previous = best_node
        return tuple(matched)

    def match_to_path(self, trajectory: Trajectory) -> tuple[int, ...]:
        """Matched nodes stitched into a connected node path.

        Gaps between consecutive matched nodes (dropped fixes) are filled
        with shortest-path interpolation so the result is a valid trip.
        """
        from ..network.shortest_path import NoPathError, dijkstra

        matched = self.match(trajectory)
        if len(matched) <= 1:
            return matched
        path: list[int] = [matched[0]]
        for a, b in zip(matched, matched[1:]):
            if self._network.has_edge(a, b):
                path.append(b)
                continue
            try:
                bridge = dijkstra(self._network, a, b).nodes
            except NoPathError:
                continue  # unbridgeable gap: skip the fix
            path.extend(bridge[1:])
        return tuple(path)
