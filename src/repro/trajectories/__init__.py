"""Trajectory substrate: generators, GPS realism, evaluation workloads."""

from .brinkhoff import (
    DEFAULT_CLASSES,
    GeneratorSpec,
    ObjectClass,
    generate_dataset,
    generate_trip,
    trip_to_trajectory,
)
from .datasets import (
    DATASET_ORDER,
    PROFILES,
    DatasetProfile,
    Workload,
    load_workload,
)
from .gps import GpsNoiseSpec, MapMatcher, degrade
from .trajectory import Trajectory, TrajectoryDataset, TrajectoryPoint

__all__ = [
    "DATASET_ORDER",
    "DEFAULT_CLASSES",
    "DatasetProfile",
    "GeneratorSpec",
    "GpsNoiseSpec",
    "MapMatcher",
    "ObjectClass",
    "PROFILES",
    "Trajectory",
    "TrajectoryDataset",
    "TrajectoryPoint",
    "Workload",
    "degrade",
    "generate_dataset",
    "generate_trip",
    "load_workload",
    "trip_to_trajectory",
]
