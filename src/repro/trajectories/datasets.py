"""The four evaluation workloads (Section V-A), as synthetic profiles.

The paper feeds its simulator real and synthetic traces: Oldenburg
(Brinkhoff-generated), California (road-network trajectories), T-drive
(Beijing taxi GPS), Geolife (multi-modal GPS).  Offline reproduction
cannot ship those datasets, so each is replaced by a deterministic
synthetic workload that preserves what the algorithms consume:

* a road network of the right *relative* scale (Oldenburg < California <
  T-drive < Geolife in total work, matching the paper's runtime ordering),
* network-constrained trajectories (GPS-degraded for the two raw-GPS
  datasets, then map-matched back, exercising that whole pipeline),
* a PlugShare-scale charger catalog with CDGS-style solar curves.

Absolute sizes are scaled to laptop budgets and controllable via
``scale``; the experiment harness records the sizes used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chargers.plugshare import CatalogSpec, generate_catalog
from ..chargers.registry import ChargerRegistry
from ..core.environment import ChargingEnvironment
from ..network.builders import NetworkSpec, build_city_network
from ..network.graph import RoadNetwork
from ..network.path import Trip
from .brinkhoff import GeneratorSpec, generate_dataset
from .gps import GpsNoiseSpec, MapMatcher, degrade
from .trajectory import Trajectory, TrajectoryDataset


@dataclass(frozen=True, slots=True)
class DatasetProfile:
    """Recipe for one evaluation workload."""

    name: str
    description: str
    network: NetworkSpec
    catalog: CatalogSpec
    generator: GeneratorSpec
    gps_noise: GpsNoiseSpec | None = None  # raw-GPS datasets only


#: The paper's four datasets, ordered small to large.  Areas follow the
#: paper's stated extents at reduced scale; counts keep the ordering.
PROFILES: dict[str, DatasetProfile] = {
    "oldenburg": DatasetProfile(
        name="oldenburg",
        description="Brinkhoff-style synthetic trajectories, 45x35 km area "
        "(paper: 4,000 trajectories, Oldenburg, Germany)",
        network=NetworkSpec(width_km=45.0, height_km=35.0, block_km=2.2, seed=101),
        catalog=CatalogSpec(charger_count=400, hotspots=4, seed=201),
        generator=GeneratorSpec(object_count=40, min_trip_km=8.0, seed=301),
    ),
    "california": DatasetProfile(
        name="california",
        description="Road-network trajectories over an elongated region "
        "(paper: 7,000 trajectories, 1,220x400 km, California, USA)",
        network=NetworkSpec(width_km=110.0, height_km=42.0, block_km=2.6, seed=102),
        catalog=CatalogSpec(charger_count=600, hotspots=6, seed=202),
        generator=GeneratorSpec(object_count=48, min_trip_km=12.0, seed=302),
    ),
    "tdrive": DatasetProfile(
        name="tdrive",
        description="Taxi GPS traces over a dense metropolitan grid "
        "(paper: 10,357 taxis, Beijing, China; sparse sampling)",
        network=NetworkSpec(width_km=42.0, height_km=42.0, block_km=1.1, seed=103),
        catalog=CatalogSpec(charger_count=800, hotspots=8, seed=203),
        generator=GeneratorSpec(object_count=56, min_trip_km=16.0, seed=303),
        gps_noise=GpsNoiseSpec(
            position_std_km=0.02, drop_rate=0.08, resample_interval_h=1.0 / 20.0, seed=403
        ),
    ),
    "geolife": DatasetProfile(
        name="geolife",
        description="Dense multi-modal GPS traces over a wide area "
        "(paper: 17,621 trajectories, 1-5 s sampling; Geolife)",
        network=NetworkSpec(width_km=56.0, height_km=48.0, block_km=1.15, seed=104),
        catalog=CatalogSpec(charger_count=1000, hotspots=10, seed=204),
        generator=GeneratorSpec(object_count=64, min_trip_km=18.0, seed=304),
        gps_noise=GpsNoiseSpec(
            position_std_km=0.01, drop_rate=0.02, resample_interval_h=1.0 / 120.0, seed=404
        ),
    ),
}

DATASET_ORDER = ("oldenburg", "california", "tdrive", "geolife")


@dataclass
class Workload:
    """Everything an experiment needs for one dataset."""

    name: str
    profile: DatasetProfile
    network: RoadNetwork
    registry: ChargerRegistry
    trajectories: TrajectoryDataset
    trips: list[Trip]
    environment: ChargingEnvironment

    def summary(self) -> dict[str, float | int | str]:
        """Size fingerprint of the workload (nodes, chargers, trips...)."""
        return {
            "name": self.name,
            "nodes": self.network.node_count,
            "edges": self.network.edge_count,
            "chargers": len(self.registry),
            "trajectories": len(self.trajectories),
            "trips": len(self.trips),
            "total_km": round(self.trajectories.total_length_km(), 1),
        }


def _scaled(profile: DatasetProfile, scale: float) -> DatasetProfile:
    """Scale the countable parts of a profile (keeps areas fixed)."""
    if scale == 1.0:
        return profile
    from dataclasses import replace

    return replace(
        profile,
        catalog=replace(
            profile.catalog,
            charger_count=max(10, int(profile.catalog.charger_count * scale)),
        ),
        generator=replace(
            profile.generator,
            object_count=max(2, int(profile.generator.object_count * scale)),
        ),
    )


def load_workload(name: str, scale: float = 1.0, environment_seed: int = 0) -> Workload:
    """Materialise a workload by profile name.

    ``scale`` multiplies charger and trajectory counts (1.0 = the default
    laptop-scale sizes above); the road network geometry is fixed so that
    the R/Q parameter sweeps remain meaningful across scales.
    """
    if name not in PROFILES:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(PROFILES)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    profile = _scaled(PROFILES[name], scale)

    network = build_city_network(profile.network)
    registry = generate_catalog(network, profile.catalog)
    clean = generate_dataset(network, profile.generator, name=name)

    if profile.gps_noise is not None:
        # Raw-GPS pipeline: degrade, then map-match back to node paths.
        matcher = MapMatcher(network)
        noisy = []
        for trajectory in clean:
            degraded = degrade(trajectory, profile.gps_noise)
            node_path = matcher.match_to_path(degraded)
            noisy.append(
                Trajectory(degraded.object_id, degraded.fixes, node_path=node_path)
            )
        trajectories = TrajectoryDataset(name, tuple(noisy))
    else:
        trajectories = clean

    trips = _trips_from(network, trajectories)
    environment = ChargingEnvironment(network, registry, seed=environment_seed)
    return Workload(
        name=name,
        profile=profile,
        network=network,
        registry=registry,
        trajectories=trajectories,
        trips=trips,
        environment=environment,
    )


def _trips_from(network: RoadNetwork, dataset: TrajectoryDataset) -> list[Trip]:
    """Query trips: one per trajectory with a usable node path."""
    trips: list[Trip] = []
    for trajectory in dataset:
        path = trajectory.node_path
        if len(path) < 2:
            continue
        # Defensive: map matching can in rare cases emit a repeated node.
        cleaned = [path[0]]
        for node in path[1:]:
            if node != cleaned[-1]:
                cleaned.append(node)
        if len(cleaned) < 2:
            continue
        try:
            trips.append(Trip(network, tuple(cleaned), trajectory.start_time_h))
        except ValueError:
            continue  # non-contiguous path; skip rather than fabricate
    if not trips:
        raise ValueError(f"dataset {dataset.name} produced no usable trips")
    return trips
