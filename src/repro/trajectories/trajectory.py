"""Moving-object trajectories.

A trajectory is a timestamped point sequence, optionally anchored to the
road network via the node path that produced it.  The evaluation datasets
(Oldenburg, California, T-drive, Geolife) are collections of these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..spatial.geometry import Point, polyline_length


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One GPS fix: time (hours since day-0 midnight) and position."""

    time_h: float
    point: Point

    @property
    def x(self) -> float:
        return self.point.x

    @property
    def y(self) -> float:
        return self.point.y


@dataclass(frozen=True)
class Trajectory:
    """A timestamped movement trace."""

    object_id: int
    fixes: tuple[TrajectoryPoint, ...]
    node_path: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.fixes:
            raise ValueError("a trajectory needs at least one fix")
        times = [fix.time_h for fix in self.fixes]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trajectory fixes must be time-ordered")

    def __len__(self) -> int:
        return len(self.fixes)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self.fixes)

    @property
    def start_time_h(self) -> float:
        return self.fixes[0].time_h

    @property
    def end_time_h(self) -> float:
        return self.fixes[-1].time_h

    @property
    def duration_h(self) -> float:
        return self.end_time_h - self.start_time_h

    @property
    def points(self) -> list[Point]:
        return [fix.point for fix in self.fixes]

    @property
    def length_km(self) -> float:
        return polyline_length(self.points)

    def average_speed_kmh(self) -> float:
        """Mean speed over the whole trace (0 for instantaneous traces)."""
        if self.duration_h == 0:
            return 0.0
        return self.length_km / self.duration_h

    def position_at(self, time_h: float) -> Point:
        """Linearly interpolated position at ``time_h`` (clamped to the
        trace's time span)."""
        if time_h <= self.start_time_h:
            return self.fixes[0].point
        if time_h >= self.end_time_h:
            return self.fixes[-1].point
        for a, b in zip(self.fixes, self.fixes[1:]):
            if a.time_h <= time_h <= b.time_h:
                span = b.time_h - a.time_h
                if span == 0:
                    return b.point
                f = (time_h - a.time_h) / span
                return Point(
                    a.point.x + (b.point.x - a.point.x) * f,
                    a.point.y + (b.point.y - a.point.y) * f,
                )
        return self.fixes[-1].point  # unreachable; appeases linters

    def sliced(self, start_h: float, end_h: float) -> "Trajectory":
        """Fixes within ``[start_h, end_h]`` (at least one fix retained)."""
        if end_h < start_h:
            raise ValueError("slice end before start")
        kept = tuple(f for f in self.fixes if start_h <= f.time_h <= end_h)
        if not kept:
            kept = (TrajectoryPoint(start_h, self.position_at(start_h)),)
        return Trajectory(self.object_id, kept, self.node_path)


@dataclass(frozen=True)
class TrajectoryDataset:
    """A named collection of trajectories plus provenance metadata."""

    name: str
    trajectories: tuple[Trajectory, ...]

    def __post_init__(self) -> None:
        if not self.trajectories:
            raise ValueError("a dataset needs at least one trajectory")

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    def total_points(self) -> int:
        """Total number of fixes across all trajectories."""
        return sum(len(t) for t in self.trajectories)

    def total_length_km(self) -> float:
        """Total travelled distance across all trajectories."""
        return sum(t.length_km for t in self.trajectories)

    def sample(self, count: int, seed: int = 0) -> "TrajectoryDataset":
        """Deterministic subsample of ``count`` trajectories."""
        import numpy as np

        if count >= len(self.trajectories):
            return self
        rng = np.random.default_rng(seed)
        indices = sorted(rng.choice(len(self.trajectories), size=count, replace=False))
        return TrajectoryDataset(
            self.name, tuple(self.trajectories[i] for i in indices)
        )
