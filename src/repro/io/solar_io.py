"""Solar production series readers and writers (CDGS-style CSV).

The "California Distributed Generation Statistics" interval files the
paper consumes are CSVs of 15-minute production readings per site.  This
module reads/writes that shape: ``site_id, interval_start_h, kw``.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..chargers.solar import SAMPLES_PER_HOUR, SolarSeries

CSV_FIELDS = ("site_id", "interval_start_h", "kw")


def write_solar_csv(series_by_site: dict[int, SolarSeries], path: str | Path) -> None:
    """Write per-site 15-minute series in CDGS interval-file shape."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for site_id in sorted(series_by_site):
            series = series_by_site[site_id]
            for i, kw in enumerate(series.values_kw):
                writer.writerow(
                    {
                        "site_id": site_id,
                        "interval_start_h": series.start_h + i / SAMPLES_PER_HOUR,
                        "kw": kw,
                    }
                )


def read_solar_csv(path: str | Path) -> dict[int, SolarSeries]:
    """Load per-site series; validates the 15-minute lattice.

    Rows may arrive unsorted (CDGS files often are); they are re-ordered
    per site.  Gaps in the lattice raise — interval files are dense.
    """
    rows: dict[int, list[tuple[float, float]]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"{path}: missing CSV columns {sorted(missing)}")
        for row in reader:
            rows.setdefault(int(row["site_id"]), []).append(
                (float(row["interval_start_h"]), float(row["kw"]))
            )
    if not rows:
        raise ValueError(f"{path}: no readings found")
    out: dict[int, SolarSeries] = {}
    step = 1.0 / SAMPLES_PER_HOUR
    for site_id, readings in rows.items():
        readings.sort(key=lambda r: r[0])
        start = readings[0][0]
        for i, (t, __) in enumerate(readings):
            expected = start + i * step
            if abs(t - expected) > 1e-6:
                raise ValueError(
                    f"{path}: site {site_id} has a gap at {expected} h "
                    f"(found {t} h) — interval files must be dense"
                )
        out[site_id] = SolarSeries(start_h=start, values_kw=tuple(kw for __, kw in readings))
    return out
