"""GeoJSON export for GIS inspection.

The paper's tooling is GIS through and through (OpenStreetMap, Leaflet,
Folium); exporting networks, trajectories, and Offering Tables as GeoJSON
lets any GIS tool (QGIS, kepler.gl, geojson.io) inspect a run.  Planar km
coordinates are converted back to WGS-84 through a
:class:`~repro.spatial.geometry.LocalProjection` anchored at a caller
supplied origin (default: Oldenburg, matching the flagship dataset).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..core.offering import OfferingTable
from ..network.graph import RoadNetwork
from ..network.path import Trip
from ..spatial.geometry import GeoPoint, LocalProjection, Point
from ..trajectories.trajectory import Trajectory

#: Default geographic anchor: Oldenburg, Germany (the paper's first dataset).
DEFAULT_ORIGIN = GeoPoint(53.1435, 8.2146)


def _coords(projection: LocalProjection, point: Point) -> list[float]:
    geo = projection.to_geo(point)
    return [round(geo.lon, 6), round(geo.lat, 6)]


def network_to_geojson(
    network: RoadNetwork, origin: GeoPoint = DEFAULT_ORIGIN
) -> dict:
    """The road network as a FeatureCollection of LineStrings.

    Each undirected road becomes one feature with speed and length
    properties; one-way edges are flagged.
    """
    projection = LocalProjection(origin)
    features = []
    seen: set[tuple[int, int]] = set()
    for edge in network.edges():
        key = (min(edge.source, edge.target), max(edge.source, edge.target))
        if key in seen:
            continue
        seen.add(key)
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [
                        _coords(projection, network.node(edge.source).point),
                        _coords(projection, network.node(edge.target).point),
                    ],
                },
                "properties": {
                    "source": edge.source,
                    "target": edge.target,
                    "length_km": round(edge.length_km, 4),
                    "speed_kmh": edge.speed_kmh,
                    "oneway": not network.has_edge(edge.target, edge.source),
                },
            }
        )
    return {"type": "FeatureCollection", "features": features}


def trip_to_geojson(trip: Trip, origin: GeoPoint = DEFAULT_ORIGIN) -> dict:
    """The scheduled trip as one LineString feature."""
    projection = LocalProjection(origin)
    return {
        "type": "FeatureCollection",
        "features": [
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [_coords(projection, p) for p in trip.points],
                },
                "properties": {
                    "length_km": round(trip.length_km, 3),
                    "departure_time_h": trip.departure_time_h,
                    "source": trip.source,
                    "destination": trip.destination,
                },
            }
        ],
    }


def trajectory_to_geojson(
    trajectory: Trajectory, origin: GeoPoint = DEFAULT_ORIGIN
) -> dict:
    """A GPS trace as a LineString with per-fix timestamps in properties."""
    projection = LocalProjection(origin)
    return {
        "type": "FeatureCollection",
        "features": [
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [
                        _coords(projection, fix.point) for fix in trajectory
                    ],
                },
                "properties": {
                    "object_id": trajectory.object_id,
                    "times_h": [round(fix.time_h, 5) for fix in trajectory],
                },
            }
        ],
    }


def offerings_to_geojson(
    tables: Iterable[OfferingTable], origin: GeoPoint = DEFAULT_ORIGIN
) -> dict:
    """Offering Tables as Point features, one per ranked charger.

    Properties carry rank, scores, and EC intervals so GIS styling can
    colour by sustainability.
    """
    projection = LocalProjection(origin)
    features = []
    for table in tables:
        for entry in table:
            features.append(
                {
                    "type": "Feature",
                    "geometry": {
                        "type": "Point",
                        "coordinates": _coords(projection, entry.charger.point),
                    },
                    "properties": {
                        "segment": table.segment_index,
                        "rank": entry.rank,
                        "charger_id": entry.charger_id,
                        "rate_kw": entry.charger.rate_kw,
                        "sc_min": round(entry.score.sc_min, 4),
                        "sc_max": round(entry.score.sc_max, 4),
                        "L": [round(entry.sustainable.lo, 4), round(entry.sustainable.hi, 4)],
                        "A": [round(entry.availability.lo, 4), round(entry.availability.hi, 4)],
                        "D": [round(entry.derouting.lo, 4), round(entry.derouting.hi, 4)],
                        "adapted": table.is_adapted,
                    },
                }
            )
    return {"type": "FeatureCollection", "features": features}


def write_geojson(payload: dict, path: str | Path) -> Path:
    """Serialise any of the collections above to a ``.geojson`` file."""
    destination = Path(path)
    destination.write_text(json.dumps(payload))
    return destination
