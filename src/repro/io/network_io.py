"""Road-network readers and writers.

Two formats:

* **cnode/cedge** — the classic format of the real California dataset the
  paper evaluates on (Li et al., "On Trip Planning Queries in Spatial
  Databases"): ``cal.cnode`` lines are ``node_id x y`` and ``cal.cedge``
  lines are ``edge_id start_node end_node distance``.  Loading a real
  download drops straight into this reproduction.
* **JSON** — a self-describing round-trip format for synthetic networks
  (preserves speeds and energy factors, which cnode/cedge cannot carry).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..network.graph import RoadNetwork
from ..spatial.geometry import Point


def read_cnode_cedge(
    cnode_path: str | Path,
    cedge_path: str | Path,
    bidirectional: bool = True,
    speed_kmh: float = 60.0,
) -> RoadNetwork:
    """Load a network from California-style ``cnode``/``cedge`` files.

    The file format carries no speed information, so ``speed_kmh`` is
    applied uniformly.  Edges referencing unknown nodes raise.  The real
    California file stores undirected road segments; ``bidirectional``
    mirrors each edge accordingly.
    """
    network = RoadNetwork()
    for line_no, parts in _rows(cnode_path, expected=3):
        node_id, x, y = int(parts[0]), float(parts[1]), float(parts[2])
        network.add_node(node_id, Point(x, y))
    for line_no, parts in _rows(cedge_path, expected=4):
        __, start, end, distance = (
            int(parts[0]), int(parts[1]), int(parts[2]), float(parts[3]),
        )
        if not network.has_node(start) or not network.has_node(end):
            raise ValueError(
                f"{cedge_path}:{line_no}: edge references unknown node "
                f"{start if not network.has_node(start) else end}"
            )
        if not network.has_edge(start, end):
            network.add_edge(start, end, length_km=distance, speed_kmh=speed_kmh)
        if bidirectional and not network.has_edge(end, start):
            network.add_edge(end, start, length_km=distance, speed_kmh=speed_kmh)
    return network


def write_cnode_cedge(
    network: RoadNetwork, cnode_path: str | Path, cedge_path: str | Path
) -> None:
    """Write a network in cnode/cedge form (speeds are lost by design)."""
    with open(cnode_path, "w") as handle:
        for node in sorted(network.nodes(), key=lambda n: n.node_id):
            handle.write(f"{node.node_id} {node.point.x} {node.point.y}\n")
    with open(cedge_path, "w") as handle:
        edge_id = 0
        written: set[tuple[int, int]] = set()
        for edge in network.edges():
            key = (min(edge.source, edge.target), max(edge.source, edge.target))
            if key in written and network.has_edge(edge.target, edge.source):
                continue  # undirected format: one line per road
            written.add(key)
            handle.write(f"{edge_id} {edge.source} {edge.target} {edge.length_km}\n")
            edge_id += 1


def _rows(path: str | Path, expected: int):
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != expected:
                raise ValueError(
                    f"{path}:{line_no}: expected {expected} fields, got {len(parts)}"
                )
            yield line_no, parts


def network_to_json(network: RoadNetwork) -> dict:
    """Self-describing dict (speeds and energy factors preserved)."""
    return {
        "format": "repro-road-network",
        "version": 1,
        "nodes": [
            {"id": n.node_id, "x": n.point.x, "y": n.point.y}
            for n in sorted(network.nodes(), key=lambda n: n.node_id)
        ],
        "edges": [
            {
                "source": e.source,
                "target": e.target,
                "length_km": e.length_km,
                "speed_kmh": e.speed_kmh,
                "kwh_per_km": e.kwh_per_km,
            }
            for e in sorted(network.edges(), key=lambda e: (e.source, e.target))
        ],
    }


def network_from_json(payload: dict) -> RoadNetwork:
    """Inverse of :func:`network_to_json` (validates the format marker)."""
    if payload.get("format") != "repro-road-network":
        raise ValueError("not a repro road-network document")
    network = RoadNetwork()
    for node in payload["nodes"]:
        network.add_node(int(node["id"]), Point(float(node["x"]), float(node["y"])))
    for edge in payload["edges"]:
        network.add_edge(
            int(edge["source"]),
            int(edge["target"]),
            length_km=float(edge["length_km"]),
            speed_kmh=float(edge.get("speed_kmh", 50.0)),
            kwh_per_km=float(edge.get("kwh_per_km", 0.18)),
        )
    return network


def save_network_json(network: RoadNetwork, path: str | Path) -> None:
    """Write the network to ``path`` as JSON."""
    Path(path).write_text(json.dumps(network_to_json(network)))


def load_network_json(path: str | Path) -> RoadNetwork:
    """Read a network back from a JSON file."""
    return network_from_json(json.loads(Path(path).read_text()))
