"""Charger catalog readers and writers.

* **CSV** — the shape of a PlugShare data export: one charger per row
  with location, plug type, rated power, and plug count.  Loading a real
  export (plus a node snap against the road network) reproduces the
  paper's PlugShare ingestion.
* **JSON** — full-fidelity round trip including the renewable-source
  linkage the CSV cannot carry.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from ..chargers.charger import Charger, PlugType, RenewableSource
from ..chargers.registry import ChargerRegistry
from ..network.graph import RoadNetwork
from ..spatial.geometry import Point

CSV_FIELDS = ("charger_id", "x", "y", "plug_type", "rate_kw", "plugs", "solar_capacity_kw")


def write_chargers_csv(registry: ChargerRegistry, path: str | Path) -> None:
    """PlugShare-style CSV export."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for charger in sorted(registry, key=lambda c: c.charger_id):
            writer.writerow(
                {
                    "charger_id": charger.charger_id,
                    "x": charger.point.x,
                    "y": charger.point.y,
                    "plug_type": charger.plug_type.value,
                    "rate_kw": charger.rate_kw,
                    "plugs": charger.plugs,
                    "solar_capacity_kw": charger.solar_capacity_kw,
                }
            )


def read_chargers_csv(path: str | Path, network: RoadNetwork) -> ChargerRegistry:
    """Load a CSV export and snap each charger to its nearest road node.

    The snap mirrors the paper's pipeline: PlugShare gives coordinates,
    OpenStreetMap gives the network, and routing needs the join.
    """
    index = network.node_index()
    chargers: list[Charger] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"{path}: missing CSV columns {sorted(missing)}")
        for row_no, row in enumerate(reader, start=2):
            point = Point(float(row["x"]), float(row["y"]))
            __, __, node_id = index.nearest(point, 1)[0]
            try:
                plug_type = PlugType(row["plug_type"])
            except ValueError:
                raise ValueError(
                    f"{path}:{row_no}: unknown plug type {row['plug_type']!r}"
                ) from None
            chargers.append(
                Charger(
                    charger_id=int(row["charger_id"]),
                    point=point,
                    node_id=node_id,
                    rate_kw=float(row["rate_kw"]),
                    plug_type=plug_type,
                    plugs=int(row["plugs"]),
                    solar_capacity_kw=float(row["solar_capacity_kw"]),
                )
            )
    return ChargerRegistry(chargers, bounds=network.bounds().expanded(1.0))


def chargers_to_json(registry: ChargerRegistry) -> dict:
    """Full-fidelity dict form of the registry."""
    return {
        "format": "repro-charger-catalog",
        "version": 1,
        "chargers": [
            {
                "charger_id": c.charger_id,
                "x": c.point.x,
                "y": c.point.y,
                "node_id": c.node_id,
                "rate_kw": c.rate_kw,
                "plug_type": c.plug_type.value,
                "plugs": c.plugs,
                "solar_capacity_kw": c.solar_capacity_kw,
                "source": c.source.value,
            }
            for c in sorted(registry, key=lambda c: c.charger_id)
        ],
    }


def chargers_from_json(payload: dict) -> ChargerRegistry:
    """Rebuild a registry from :func:`chargers_to_json` output."""
    if payload.get("format") != "repro-charger-catalog":
        raise ValueError("not a repro charger-catalog document")
    chargers = [
        Charger(
            charger_id=int(row["charger_id"]),
            point=Point(float(row["x"]), float(row["y"])),
            node_id=int(row["node_id"]),
            rate_kw=float(row["rate_kw"]),
            plug_type=PlugType(row["plug_type"]),
            plugs=int(row["plugs"]),
            solar_capacity_kw=float(row["solar_capacity_kw"]),
            source=RenewableSource(row["source"]),
        )
        for row in payload["chargers"]
    ]
    return ChargerRegistry(chargers)


def save_chargers_json(registry: ChargerRegistry, path: str | Path) -> None:
    """Write the registry to ``path`` as JSON."""
    Path(path).write_text(json.dumps(chargers_to_json(registry)))


def load_chargers_json(path: str | Path) -> ChargerRegistry:
    """Read a registry back from a JSON file."""
    return chargers_from_json(json.loads(Path(path).read_text()))
