"""Trajectory readers and writers.

* **Brinkhoff format** — the line format emitted by Brinkhoff's
  network-based generator (the paper's Oldenburg tool):
  ``kind id seq class time x y speed next_x next_y`` whitespace-separated,
  where ``kind`` is ``newpoint``/``point``/``disappearpoint``.  Only the
  fields this reproduction consumes (id, time, x, y) are interpreted;
  time ticks are converted to hours via ``tick_h``.
* **PLT (Geolife) format** — Geolife distributes one ``.plt`` per
  trajectory: six header lines, then
  ``lat,lon,0,alt,days,date,time`` rows.  The loader projects to the
  local plane around the first fix.
* **CSV** — simple round-trip format for synthetic datasets.
"""

from __future__ import annotations

import csv
from pathlib import Path

from ..spatial.geometry import GeoPoint, LocalProjection, Point
from ..trajectories.trajectory import Trajectory, TrajectoryDataset, TrajectoryPoint

_BRINKHOFF_KINDS = {"newpoint", "point", "disappearpoint"}


def read_brinkhoff(path: str | Path, tick_h: float = 1.0 / 60.0) -> TrajectoryDataset:
    """Parse Brinkhoff generator output into a dataset.

    ``tick_h`` converts the generator's integer time stamps to hours (the
    tool's default resolution is arbitrary; one minute per tick is the
    common convention).
    """
    if tick_h <= 0:
        raise ValueError("tick_h must be positive")
    fixes: dict[int, list[TrajectoryPoint]] = {}
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if parts[0] not in _BRINKHOFF_KINDS:
                raise ValueError(f"{path}:{line_no}: unknown record kind {parts[0]!r}")
            if len(parts) < 7:
                raise ValueError(f"{path}:{line_no}: truncated record")
            object_id = int(parts[1])
            time_h = float(parts[4]) * tick_h
            x, y = float(parts[5]), float(parts[6])
            fixes.setdefault(object_id, []).append(TrajectoryPoint(time_h, Point(x, y)))
    trajectories = []
    for object_id in sorted(fixes):
        points = sorted(fixes[object_id], key=lambda f: f.time_h)
        trajectories.append(Trajectory(object_id, tuple(points)))
    if not trajectories:
        raise ValueError(f"{path}: no trajectories found")
    return TrajectoryDataset(Path(path).stem, tuple(trajectories))


def write_brinkhoff(dataset: TrajectoryDataset, path: str | Path, tick_h: float = 1.0 / 60.0) -> None:
    """Write a dataset in Brinkhoff line format (class/speed fields are
    synthesised as zero; next-position fields repeat the position)."""
    with open(path, "w") as handle:
        for trajectory in dataset:
            last = len(trajectory.fixes) - 1
            for seq, fix in enumerate(trajectory.fixes):
                kind = "newpoint" if seq == 0 else (
                    "disappearpoint" if seq == last else "point"
                )
                tick = round(fix.time_h / tick_h)
                handle.write(
                    f"{kind} {trajectory.object_id} {seq} 0 {tick} "
                    f"{fix.point.x} {fix.point.y} 0 {fix.point.x} {fix.point.y}\n"
                )


def read_plt(
    path: str | Path,
    object_id: int = 0,
    projection: LocalProjection | None = None,
) -> Trajectory:
    """Parse one Geolife ``.plt`` file.

    ``days`` (field 5) is the fractional-day timestamp Geolife uses; it is
    converted to hours relative to the trajectory's first fix so that the
    result plugs into the day-0-relative simulation clock.
    """
    rows: list[tuple[float, GeoPoint]] = []
    with open(path) as handle:
        lines = handle.read().splitlines()
    for line_no, line in enumerate(lines[6:], start=7):  # six header lines
        line = line.strip()
        if not line:
            continue
        parts = line.split(",")
        if len(parts) < 7:
            raise ValueError(f"{path}:{line_no}: truncated PLT row")
        lat, lon = float(parts[0]), float(parts[1])
        days = float(parts[4])
        rows.append((days * 24.0, GeoPoint(lat, lon)))
    if not rows:
        raise ValueError(f"{path}: no fixes found")
    rows.sort(key=lambda r: r[0])
    if projection is None:
        projection = LocalProjection(rows[0][1])
    t0 = rows[0][0]
    fixes = tuple(
        TrajectoryPoint(time_h - t0, projection.to_plane(geo)) for time_h, geo in rows
    )
    return Trajectory(object_id, fixes)


CSV_FIELDS = ("object_id", "time_h", "x", "y")


def write_trajectories_csv(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write every trajectory's fixes as flat CSV rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for trajectory in dataset:
            for fix in trajectory:
                writer.writerow(
                    {
                        "object_id": trajectory.object_id,
                        "time_h": fix.time_h,
                        "x": fix.point.x,
                        "y": fix.point.y,
                    }
                )


def read_trajectories_csv(path: str | Path, name: str | None = None) -> TrajectoryDataset:
    """Rebuild a dataset from :func:`write_trajectories_csv` output."""
    fixes: dict[int, list[TrajectoryPoint]] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"{path}: missing CSV columns {sorted(missing)}")
        for row in reader:
            fixes.setdefault(int(row["object_id"]), []).append(
                TrajectoryPoint(float(row["time_h"]), Point(float(row["x"]), float(row["y"])))
            )
    trajectories = [
        Trajectory(object_id, tuple(sorted(points, key=lambda f: f.time_h)))
        for object_id, points in sorted(fixes.items())
    ]
    if not trajectories:
        raise ValueError(f"{path}: no trajectories found")
    return TrajectoryDataset(name if name is not None else Path(path).stem, tuple(trajectories))
