"""Dataset I/O: the real evaluation datasets' file formats plus JSON/CSV
round-trips for every synthetic substrate."""

from .charger_io import (
    chargers_from_json,
    chargers_to_json,
    load_chargers_json,
    read_chargers_csv,
    save_chargers_json,
    write_chargers_csv,
)
from .network_io import (
    load_network_json,
    network_from_json,
    network_to_json,
    read_cnode_cedge,
    save_network_json,
    write_cnode_cedge,
)
from .geojson_io import (
    network_to_geojson,
    offerings_to_geojson,
    trajectory_to_geojson,
    trip_to_geojson,
    write_geojson,
)
from .solar_io import read_solar_csv, write_solar_csv
from .trajectory_io import (
    read_brinkhoff,
    read_plt,
    read_trajectories_csv,
    write_brinkhoff,
    write_trajectories_csv,
)

__all__ = [
    "chargers_from_json",
    "chargers_to_json",
    "load_chargers_json",
    "load_network_json",
    "network_from_json",
    "network_to_geojson",
    "network_to_json",
    "offerings_to_geojson",
    "read_brinkhoff",
    "read_chargers_csv",
    "read_cnode_cedge",
    "read_plt",
    "read_solar_csv",
    "read_trajectories_csv",
    "save_chargers_json",
    "save_network_json",
    "trajectory_to_geojson",
    "trip_to_geojson",
    "write_brinkhoff",
    "write_chargers_csv",
    "write_cnode_cedge",
    "write_geojson",
    "write_solar_csv",
    "write_trajectories_csv",
]
