"""Battery charging-curve model (CC-CV taper).

Lithium packs accept full power only up to ~80 % state of charge, then the
battery management system tapers toward a trickle near 100 %.  The session
simulator uses this curve so that "hoard one hour of solar" translates
into realistic energy figures for nearly-full batteries — without it, the
last 20 % of a pack would absorb solar at implausible rates.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default knee of the CC-CV curve: full power below this SoC.
DEFAULT_TAPER_START_SOC = 0.8

#: Acceptance floor at 100 % SoC as a fraction of rated power.
DEFAULT_FLOOR_FRACTION = 0.05


@dataclass(frozen=True, slots=True)
class ChargingCurve:
    """Piecewise-linear acceptance curve.

    Below ``taper_start_soc`` the battery accepts full offered power
    (constant-current region); above it, acceptance falls linearly to
    ``floor_fraction`` of the offered power at 100 % (constant-voltage
    approximation).
    """

    taper_start_soc: float = DEFAULT_TAPER_START_SOC
    floor_fraction: float = DEFAULT_FLOOR_FRACTION

    def __post_init__(self) -> None:
        if not 0.0 < self.taper_start_soc < 1.0:
            raise ValueError("taper_start_soc must be in (0, 1)")
        if not 0.0 <= self.floor_fraction <= 1.0:
            raise ValueError("floor_fraction must be in [0, 1]")

    def acceptance_fraction(self, soc: float) -> float:
        """Fraction of offered power the pack accepts at ``soc``."""
        if not 0.0 <= soc <= 1.0:
            raise ValueError("state of charge must be in [0, 1]")
        if soc <= self.taper_start_soc:
            return 1.0
        span = 1.0 - self.taper_start_soc
        progress = (soc - self.taper_start_soc) / span
        return 1.0 - progress * (1.0 - self.floor_fraction)

    def accepted_kw(self, offered_kw: float, soc: float) -> float:
        """Power actually flowing into the pack."""
        if offered_kw < 0:
            raise ValueError("offered power must be non-negative")
        return offered_kw * self.acceptance_fraction(soc)


#: Shared default curve used when a vehicle does not specify one.
DEFAULT_CURVE = ChargingCurve()
