"""Solar photovoltaic production curves.

Substitute for the "California Distributed Generation Statistics" dataset
(15-minute solar generation, 2016-2018) the paper feeds its simulator: a
parametric clear-sky diurnal bell attenuated by weather, sampled on the
same 15-minute lattice.  The shape is what the ``L`` component consumes —
production ramps after sunrise, peaks at solar noon, and dies at dusk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: CDGS records production every 15 minutes.
SAMPLES_PER_HOUR = 4
HOURS_PER_DAY = 24


@dataclass(frozen=True, slots=True)
class SolarProfile:
    """Parametric clear-sky production model for one site.

    ``sunrise_h``/``sunset_h`` bound the production window;
    ``peak_fraction`` is the fraction of nameplate capacity achieved at
    solar noon under clear sky (accounts for tilt/temperature losses).
    """

    capacity_kw: float
    sunrise_h: float = 6.0
    sunset_h: float = 20.0
    peak_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_kw < 0:
            raise ValueError("capacity must be non-negative")
        if not 0.0 <= self.sunrise_h < self.sunset_h <= 24.0:
            raise ValueError("need 0 <= sunrise < sunset <= 24")
        if not 0.0 < self.peak_fraction <= 1.0:
            raise ValueError("peak_fraction must be in (0, 1]")

    def clear_sky_kw(self, time_h: float) -> float:
        """Clear-sky production at clock time ``time_h`` (hours, any day).

        Zero outside the daylight window; a squared half-sine inside, which
        matches the flattened bell of measured PV output.
        """
        hour = time_h % HOURS_PER_DAY
        if hour <= self.sunrise_h or hour >= self.sunset_h:
            return 0.0
        phase = (hour - self.sunrise_h) / (self.sunset_h - self.sunrise_h)
        return self.capacity_kw * self.peak_fraction * math.sin(math.pi * phase) ** 2

    def daily_energy_kwh(self) -> float:
        """Clear-sky energy over one day, by quadrature on the 15-min grid."""
        step = 1.0 / SAMPLES_PER_HOUR
        hours = np.arange(0.0, HOURS_PER_DAY, step)
        return float(sum(self.clear_sky_kw(h) for h in hours) * step)


@dataclass(frozen=True, slots=True)
class SolarSeries:
    """A concrete production time series on the 15-minute lattice.

    ``values_kw[i]`` is the average production during the i-th quarter-hour
    since ``start_h``.  This mirrors the CDGS file layout and is what the
    trace-replay tests feed through the ``L`` estimator.
    """

    start_h: float
    values_kw: tuple[float, ...]

    def __post_init__(self) -> None:
        if any(v < 0 for v in self.values_kw):
            raise ValueError("production values must be non-negative")

    @property
    def end_h(self) -> float:
        return self.start_h + len(self.values_kw) / SAMPLES_PER_HOUR

    def at(self, time_h: float) -> float:
        """Production at ``time_h``; zero outside the recorded window."""
        if time_h < self.start_h or time_h >= self.end_h:
            return 0.0
        index = int((time_h - self.start_h) * SAMPLES_PER_HOUR)
        return self.values_kw[min(index, len(self.values_kw) - 1)]

    def window_max(self, start_h: float, end_h: float) -> float:
        """Peak production within ``[start_h, end_h)``."""
        if end_h <= start_h:
            return 0.0
        lo = max(0, int((start_h - self.start_h) * SAMPLES_PER_HOUR))
        hi = min(len(self.values_kw), math.ceil((end_h - self.start_h) * SAMPLES_PER_HOUR))
        if hi <= lo:
            return 0.0
        return max(self.values_kw[lo:hi])

    def window_energy_kwh(self, start_h: float, end_h: float) -> float:
        """Energy produced within ``[start_h, end_h)``."""
        if end_h <= start_h:
            return 0.0
        step = 1.0 / SAMPLES_PER_HOUR
        lo = max(0, int((start_h - self.start_h) * SAMPLES_PER_HOUR))
        hi = min(len(self.values_kw), math.ceil((end_h - self.start_h) * SAMPLES_PER_HOUR))
        return float(sum(self.values_kw[lo:hi]) * step)


def generate_solar_series(
    profile: SolarProfile,
    days: int = 1,
    cloud_attenuation: float = 0.0,
    noise_std: float = 0.02,
    seed: int = 0,
) -> SolarSeries:
    """Generate a CDGS-style series from a profile.

    ``cloud_attenuation`` in [0, 1] scales the whole series down (0 = clear
    sky); ``noise_std`` adds multiplicative measurement noise so replay
    tests do not see an analytically perfect curve.
    """
    if days < 1:
        raise ValueError("days must be at least 1")
    if not 0.0 <= cloud_attenuation <= 1.0:
        raise ValueError("cloud_attenuation must be in [0, 1]")
    rng = np.random.default_rng(seed)
    step = 1.0 / SAMPLES_PER_HOUR
    count = days * HOURS_PER_DAY * SAMPLES_PER_HOUR
    values = []
    for i in range(count):
        base = profile.clear_sky_kw(i * step) * (1.0 - cloud_attenuation)
        noisy = base * max(0.0, 1.0 + rng.normal(0.0, noise_std)) if base > 0 else 0.0
        values.append(min(noisy, profile.capacity_kw))
    return SolarSeries(start_h=0.0, values_kw=tuple(values))
