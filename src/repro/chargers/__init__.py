"""Charger substrate: charger/vehicle models, solar curves, registries."""

from .battery import DEFAULT_CURVE, ChargingCurve
from .charger import (
    RATE_CLASSES_KW,
    Charger,
    PlugType,
    RenewableSource,
    Vehicle,
)
from .plugshare import CatalogSpec, generate_catalog
from .registry import ChargerRegistry
from .session import ChargingSessionSimulator, SessionResult
from .solar import (
    HOURS_PER_DAY,
    SAMPLES_PER_HOUR,
    SolarProfile,
    SolarSeries,
    generate_solar_series,
)

__all__ = [
    "CatalogSpec",
    "Charger",
    "ChargerRegistry",
    "ChargingCurve",
    "ChargingSessionSimulator",
    "DEFAULT_CURVE",
    "HOURS_PER_DAY",
    "PlugType",
    "RATE_CLASSES_KW",
    "RenewableSource",
    "SAMPLES_PER_HOUR",
    "SessionResult",
    "SolarProfile",
    "SolarSeries",
    "Vehicle",
    "generate_catalog",
    "generate_solar_series",
]
