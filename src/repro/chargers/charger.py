"""EV charger model.

A charger ``b`` in the paper's set ``B``: a charging point on the road
network, linked to a nearby renewable energy source (locally attached
solar, or virtually net-metered from a remote farm), with a rated power
and a number of plugs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..spatial.geometry import Point


class PlugType(enum.Enum):
    """Common charging plug standards and their usual power class."""

    AC_TYPE2 = "ac_type2"
    CCS = "ccs"
    CHADEMO = "chademo"


class RenewableSource(enum.Enum):
    """How the charger's clean energy is provisioned (Section II-A)."""

    LOCAL_SOLAR = "local_solar"
    NET_METERED_FARM = "net_metered_farm"


#: Typical rated powers (kW) per plug type, used by the synthetic catalog.
RATE_CLASSES_KW: dict[PlugType, tuple[float, ...]] = {
    PlugType.AC_TYPE2: (3.7, 11.0, 22.0),
    PlugType.CCS: (50.0, 150.0),
    PlugType.CHADEMO: (50.0,),
}


@dataclass(frozen=True, slots=True)
class Charger:
    """A public EV charging point linked to a renewable source."""

    charger_id: int
    point: Point
    node_id: int
    rate_kw: float
    plug_type: PlugType = PlugType.AC_TYPE2
    plugs: int = 2
    solar_capacity_kw: float = 20.0
    source: RenewableSource = RenewableSource.LOCAL_SOLAR

    def __post_init__(self) -> None:
        if self.rate_kw <= 0:
            raise ValueError("charger rate must be positive")
        if self.plugs < 1:
            raise ValueError("charger needs at least one plug")
        if self.solar_capacity_kw < 0:
            raise ValueError("solar capacity must be non-negative")

    @property
    def is_dc_fast(self) -> bool:
        return self.plug_type in (PlugType.CCS, PlugType.CHADEMO)

    def deliverable_kw(self, vehicle_max_ac_kw: float, vehicle_max_dc_kw: float) -> float:
        """Power the charger can actually push into a given vehicle."""
        ceiling = vehicle_max_dc_kw if self.is_dc_fast else vehicle_max_ac_kw
        return min(self.rate_kw, ceiling)


@dataclass(frozen=True, slots=True)
class Vehicle:
    """The subset of EV state the ranking needs (Section II-A's ``m``)."""

    vehicle_id: int
    battery_kwh: float = 60.0
    state_of_charge: float = 0.6
    max_ac_kw: float = 11.0
    max_dc_kw: float = 100.0
    consumption_kwh_per_km: float = 0.18

    def __post_init__(self) -> None:
        if self.battery_kwh <= 0:
            raise ValueError("battery capacity must be positive")
        if not 0.0 <= self.state_of_charge <= 1.0:
            raise ValueError("state of charge must be in [0, 1]")
        if self.max_ac_kw <= 0 or self.max_dc_kw <= 0:
            raise ValueError("charging limits must be positive")
        if self.consumption_kwh_per_km <= 0:
            raise ValueError("consumption must be positive")

    @property
    def headroom_kwh(self) -> float:
        """Energy the battery can still absorb."""
        return self.battery_kwh * (1.0 - self.state_of_charge)

    @property
    def range_km(self) -> float:
        """Remaining driving range at the rated consumption."""
        return self.battery_kwh * self.state_of_charge / self.consumption_kwh_per_km
