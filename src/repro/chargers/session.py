"""Charging-session simulation.

Closes the loop the ranking opens: once a driver accepts an Offering-Table
entry, what actually happens at the charger?  The simulator integrates the
ground-truth solar production over the idle window (15-minute steps, like
the CDGS data), caps by charger rate, plug standard, and the vehicle's
remaining headroom, and reports the hoarded clean energy and avoided CO2 —
the quantities the paper's motivation promises ("reduce the carbon
footprint of their daily routine").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..estimation.sustainable import SustainableChargingEstimator
from ..network.graph import DEFAULT_CO2_KG_PER_KWH
from .battery import DEFAULT_CURVE, ChargingCurve
from .charger import Charger, Vehicle

#: Simulation step matching the CDGS 15-minute lattice.
STEP_H = 0.25

#: Grid carbon intensity displaced by charging from solar excess instead.
GRID_CO2_KG_PER_KWH = DEFAULT_CO2_KG_PER_KWH


@dataclass(frozen=True, slots=True)
class SessionResult:
    """Outcome of one simulated charging session."""

    charger_id: int
    start_h: float
    end_h: float
    energy_kwh: float
    final_soc: float
    co2_avoided_kg: float
    curtailed_kwh: float

    @property
    def duration_h(self) -> float:
        return self.end_h - self.start_h

    @property
    def average_kw(self) -> float:
        return self.energy_kwh / self.duration_h if self.duration_h > 0 else 0.0


class ChargingSessionSimulator:
    """Integrates true solar production into battery state of charge."""

    def __init__(
        self,
        sustainable: SustainableChargingEstimator,
        curve: ChargingCurve = DEFAULT_CURVE,
    ):
        self._sustainable = sustainable
        self._curve = curve

    def simulate(
        self,
        charger: Charger,
        vehicle: Vehicle,
        start_h: float,
        duration_h: float,
    ) -> SessionResult:
        """Simulate charging ``vehicle`` at ``charger`` for ``duration_h``.

        Per 15-minute step the delivered power is
        ``min(solar production, charger rate, vehicle plug limit)`` scaled
        by the CC-CV acceptance curve at the running state of charge;
        charging stops early when the battery is full.  ``curtailed_kwh``
        is solar excess the session could not absorb (production above the
        acceptance ceiling or after the battery filled) — the quantity
        stationary grid batteries would otherwise have to soak up, which
        renewable hoarding exists to reduce.
        """
        if duration_h <= 0:
            raise ValueError("duration must be positive")
        plug_limit = charger.deliverable_kw(vehicle.max_ac_kw, vehicle.max_dc_kw)
        soc_kwh = vehicle.battery_kwh * vehicle.state_of_charge
        delivered = 0.0
        curtailed = 0.0
        clock = start_h
        end = start_h + duration_h
        while clock < end - 1e-12:
            step = min(STEP_H, end - clock)
            produced_kw = self._sustainable.true_power_kw(charger, clock)
            soc = min(1.0, soc_kwh / vehicle.battery_kwh)
            deliverable_kw = self._curve.accepted_kw(
                min(produced_kw, plug_limit), soc
            )
            headroom = vehicle.battery_kwh - soc_kwh
            taken = min(deliverable_kw * step, headroom)
            delivered += taken
            soc_kwh += taken
            curtailed += max(0.0, produced_kw * step - taken)
            clock += step
            if headroom - taken <= 1e-12:
                break  # battery full
        return SessionResult(
            charger_id=charger.charger_id,
            start_h=start_h,
            end_h=clock,
            energy_kwh=delivered,
            final_soc=min(1.0, soc_kwh / vehicle.battery_kwh),
            co2_avoided_kg=delivered * GRID_CO2_KG_PER_KWH,
            curtailed_kwh=curtailed,
        )
