"""Synthetic PlugShare-style charger catalog generator.

PlugShare supplies the paper with charger locations and rates; offline we
generate a catalog with the same statistical fingerprints: chargers sit on
the road network (parking lots adjoin roads), cluster around a handful of
commercial hot spots, and mix slow AC destination chargers with a minority
of DC fast chargers.  Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.graph import RoadNetwork
from ..spatial.geometry import Point
from .charger import RATE_CLASSES_KW, Charger, PlugType, RenewableSource
from .registry import ChargerRegistry


@dataclass(frozen=True, slots=True)
class CatalogSpec:
    """Parameters for :func:`generate_catalog`.

    ``hotspots`` commercial centres attract ``hotspot_share`` of chargers
    within a Gaussian of ``hotspot_sigma_km``; the rest scatter uniformly
    over the network's nodes.  ``dc_share`` is the fraction of DC fast
    chargers (PlugShare catalogs are AC-dominated).
    """

    charger_count: int = 1000
    hotspots: int = 5
    hotspot_share: float = 0.6
    hotspot_sigma_km: float = 2.0
    dc_share: float = 0.15
    net_metered_share: float = 0.3
    seed: int = 11

    def __post_init__(self) -> None:
        if self.charger_count < 1:
            raise ValueError("charger_count must be positive")
        if self.hotspots < 0:
            raise ValueError("hotspots must be non-negative")
        if not 0.0 <= self.hotspot_share <= 1.0:
            raise ValueError("hotspot_share must be in [0, 1]")
        if not 0.0 <= self.dc_share <= 1.0:
            raise ValueError("dc_share must be in [0, 1]")
        if not 0.0 <= self.net_metered_share <= 1.0:
            raise ValueError("net_metered_share must be in [0, 1]")


def generate_catalog(network: RoadNetwork, spec: CatalogSpec) -> ChargerRegistry:
    """Generate a charger registry over ``network`` according to ``spec``."""
    rng = np.random.default_rng(spec.seed)
    nodes = list(network.nodes())
    if not nodes:
        raise ValueError("network has no nodes to place chargers on")
    node_points = np.array([[n.point.x, n.point.y] for n in nodes])

    hotspot_centres = (
        node_points[rng.choice(len(nodes), size=min(spec.hotspots, len(nodes)), replace=False)]
        if spec.hotspots
        else np.empty((0, 2))
    )

    chargers: list[Charger] = []
    for charger_id in range(spec.charger_count):
        anchor = _sample_anchor(rng, node_points, hotspot_centres, spec)
        # Snap to the nearest road node: chargers live on parking lots
        # adjoining the network; the node is what routing queries use.
        node_index = int(np.argmin(np.sum((node_points - anchor) ** 2, axis=1)))
        node = nodes[node_index]
        # Small off-road offset so charger points are not exactly node
        # points (matters for the spatial-index code paths).
        offset = rng.normal(0.0, 0.05, size=2)
        point = Point(node.point.x + float(offset[0]), node.point.y + float(offset[1]))

        plug_type = _sample_plug_type(rng, spec.dc_share)
        rate_kw = float(rng.choice(RATE_CLASSES_KW[plug_type]))
        source = (
            RenewableSource.NET_METERED_FARM
            if rng.uniform() < spec.net_metered_share
            else RenewableSource.LOCAL_SOLAR
        )
        # Carport solar arrays are sized by the parking lot, not by the
        # charger electronics: capacities vary independently of rate, so
        # some slow chargers sit under big arrays (the sustainable gems
        # EcoCharge is meant to surface) and some fast ones under small.
        solar_capacity = float(rng.uniform(5.0, 50.0))
        chargers.append(
            Charger(
                charger_id=charger_id,
                point=point,
                node_id=node.node_id,
                rate_kw=rate_kw,
                plug_type=plug_type,
                plugs=int(rng.integers(1, 3)),
                solar_capacity_kw=solar_capacity,
                source=source,
            )
        )
    return ChargerRegistry(chargers, bounds=network.bounds().expanded(1.0))


def _sample_anchor(
    rng: np.random.Generator,
    node_points: np.ndarray,
    hotspot_centres: np.ndarray,
    spec: CatalogSpec,
) -> np.ndarray:
    near_hotspot = len(hotspot_centres) > 0 and rng.uniform() < spec.hotspot_share
    if near_hotspot:
        centre = hotspot_centres[rng.integers(len(hotspot_centres))]
        return centre + rng.normal(0.0, spec.hotspot_sigma_km, size=2)
    return node_points[rng.integers(len(node_points))]


def _sample_plug_type(rng: np.random.Generator, dc_share: float) -> PlugType:
    if rng.uniform() < dc_share:
        return PlugType.CCS if rng.uniform() < 0.8 else PlugType.CHADEMO
    return PlugType.AC_TYPE2
