"""Spatially indexed registry of the charger set ``B``."""

from __future__ import annotations

from typing import Iterable, Iterator, Literal

from ..spatial.bbox import BoundingBox
from ..spatial.geometry import Point
from ..spatial.grid import GridIndex
from ..spatial.kdtree import KDTree
from ..spatial.knn import SpatialIndex
from ..spatial.quadtree import QuadTree
from .charger import Charger

IndexKind = Literal["quadtree", "kdtree", "grid"]


class ChargerRegistry:
    """The set ``B`` of all chargers, with pluggable spatial indexing.

    The registry is the single source of truth the baselines differ over:
    Brute-Force scans :meth:`all`, Index-Quadtree asks the quadtree, and
    EcoCharge uses radius queries bounded by the user radius ``R``.
    """

    def __init__(self, chargers: Iterable[Charger], bounds: BoundingBox | None = None):
        self._chargers: dict[int, Charger] = {}
        for charger in chargers:
            if charger.charger_id in self._chargers:
                raise ValueError(f"duplicate charger id {charger.charger_id}")
            self._chargers[charger.charger_id] = charger
        if not self._chargers:
            raise ValueError("a registry needs at least one charger")
        if bounds is None:
            bounds = BoundingBox.from_points(
                c.point for c in self._chargers.values()
            ).expanded(1.0)
        self.bounds = bounds
        self._indexes: dict[IndexKind, SpatialIndex[Charger]] = {}

    def __len__(self) -> int:
        return len(self._chargers)

    def __iter__(self) -> Iterator[Charger]:
        yield from self._chargers.values()

    def __contains__(self, charger_id: int) -> bool:
        return charger_id in self._chargers

    def get(self, charger_id: int) -> Charger:
        """The charger with ``charger_id`` (KeyError if absent)."""
        return self._chargers[charger_id]

    def all(self) -> list[Charger]:
        """Every charger — the brute-force search space."""
        return list(self._chargers.values())

    # -- mutation ------------------------------------------------------------

    def add(self, charger: Charger) -> None:
        """Register a new charger (e.g., a site coming online mid-day).

        Spatial indexes are invalidated and rebuilt lazily; solution
        caches held by rankers are *not* — their TTL bounds the staleness,
        mirroring how the production system learns of new sites on the
        next catalog refresh.
        """
        if charger.charger_id in self._chargers:
            raise ValueError(f"duplicate charger id {charger.charger_id}")
        if not self.bounds.contains(charger.point):
            raise ValueError(
                f"charger {charger.charger_id} at {charger.point} lies outside "
                f"the registry bounds {self.bounds}"
            )
        self._chargers[charger.charger_id] = charger
        self._indexes.clear()

    def remove(self, charger_id: int) -> Charger:
        """Deregister a charger (site offline); returns the removed entry."""
        if len(self._chargers) <= 1:
            raise ValueError("a registry must keep at least one charger")
        try:
            charger = self._chargers.pop(charger_id)
        except KeyError:
            raise KeyError(f"no charger with id {charger_id}") from None
        self._indexes.clear()
        return charger

    def index(self, kind: IndexKind = "quadtree") -> SpatialIndex[Charger]:
        """Lazily built spatial index over the registry."""
        if kind not in self._indexes:
            self._indexes[kind] = self._build_index(kind)
        return self._indexes[kind]

    def _build_index(self, kind: IndexKind) -> SpatialIndex[Charger]:
        entries = [(c.point, c) for c in self._chargers.values()]
        if kind == "quadtree":
            tree: QuadTree[Charger] = QuadTree(self.bounds)
            for point, charger in entries:
                tree.insert(point, charger)
            return tree
        if kind == "kdtree":
            return KDTree(entries)
        if kind == "grid":
            cell = max(0.5, min(self.bounds.width, self.bounds.height) / 32.0)
            grid: GridIndex[Charger] = GridIndex(self.bounds, cell)
            for point, charger in entries:
                grid.insert(point, charger)
            return grid
        raise ValueError(f"unknown index kind: {kind!r}")

    def within_radius(
        self, center: Point, radius_km: float, kind: IndexKind = "quadtree"
    ) -> list[Charger]:
        """Chargers within ``radius_km`` of ``center``, nearest first."""
        hits = self.index(kind).query_radius(center, radius_km)
        hits.sort(key=lambda pair: pair[0].squared_distance_to(center))
        return [charger for __, charger in hits]

    def nearest(
        self, center: Point, k: int = 1, kind: IndexKind = "quadtree"
    ) -> list[Charger]:
        """The ``k`` nearest chargers to ``center``."""
        return [charger for __, __, charger in self.index(kind).nearest(center, k)]

    def max_rate_kw(self) -> float:
        """Environment maximum charging rate, used to normalise ``L``."""
        return max(c.rate_kw for c in self._chargers.values())

    def max_solar_capacity_kw(self) -> float:
        """Largest attached solar array in the registry (kW)."""
        return max(c.solar_capacity_kw for c in self._chargers.values())
