"""EcoCharge reproduction — Continuous kNN ranking of EV chargers with
Estimated Components (ICDE 2024).

Public API tour::

    from repro import (
        # build a world
        build_city_network, NetworkSpec, generate_catalog, CatalogSpec,
        ChargingEnvironment, Trip,
        # run the framework
        EcoCharge, EcoChargeConfig, Weights,
        # compare against the paper's baselines
        BruteForceRanker, QuadtreeRanker, RandomRanker, run_over_trip,
    )

See ``examples/quickstart.py`` for the end-to-end flow and
``repro.experiments`` for the figure-regeneration drivers.
"""

from .chargers import (
    CatalogSpec,
    Charger,
    ChargerRegistry,
    PlugType,
    SolarProfile,
    Vehicle,
    generate_catalog,
)
from .core import (
    ABLATION_CONFIGS,
    BruteForceRanker,
    ChargingEnvironment,
    EcoCharge,
    EcoChargeConfig,
    EcoChargeRanker,
    Interval,
    OfferingEntry,
    OfferingTable,
    QuadtreeRanker,
    RandomRanker,
    RankingRun,
    Weights,
    run_over_trip,
)
from .estimation import (
    AvailabilityEstimator,
    DeroutingEstimator,
    EtaEstimator,
    SustainableChargingEstimator,
    TrafficModel,
    WeatherModel,
)
from .network import (
    EdgeWeight,
    NetworkSpec,
    RoadNetwork,
    Trip,
    TripSegment,
    build_city_network,
    build_grid_network,
)
from .simulation import FleetReport, FleetSimulation, SimulationConfig
from .spatial import BoundingBox, GridIndex, KDTree, Point, QuadTree
from .trajectories import (
    DATASET_ORDER,
    PROFILES,
    Trajectory,
    TrajectoryDataset,
    Workload,
    load_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ABLATION_CONFIGS",
    "AvailabilityEstimator",
    "BoundingBox",
    "BruteForceRanker",
    "CatalogSpec",
    "Charger",
    "ChargerRegistry",
    "ChargingEnvironment",
    "DATASET_ORDER",
    "DeroutingEstimator",
    "EcoCharge",
    "EcoChargeConfig",
    "EcoChargeRanker",
    "EdgeWeight",
    "EtaEstimator",
    "FleetReport",
    "FleetSimulation",
    "GridIndex",
    "Interval",
    "KDTree",
    "NetworkSpec",
    "OfferingEntry",
    "OfferingTable",
    "PROFILES",
    "PlugType",
    "Point",
    "QuadTree",
    "QuadtreeRanker",
    "RandomRanker",
    "RankingRun",
    "RoadNetwork",
    "SimulationConfig",
    "SolarProfile",
    "SustainableChargingEstimator",
    "TrafficModel",
    "Trajectory",
    "TrajectoryDataset",
    "Trip",
    "TripSegment",
    "Vehicle",
    "WeatherModel",
    "Weights",
    "Workload",
    "__version__",
    "build_city_network",
    "build_grid_network",
    "generate_catalog",
    "load_workload",
    "run_over_trip",
]
