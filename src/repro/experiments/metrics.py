"""Evaluation metrics (Section V-A).

* ``F_t`` — CPU execution time per ranking call, measured with the
  injected monotonic clock around exactly the work the paper times (the
  weighted-sum optimisation producing one Offering Table).
* ``SC`` — Sustainability Score of the *selection*, graded against ground
  truth: the oracle component values of the chosen chargers, combined with
  the experiment weights, averaged over the table.  Reported as a
  percentage of the Brute-Force reference (Brute Force = 100 %).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.environment import ChargingEnvironment, TrueComponents
from ..observability.clock import SYSTEM_CLOCK, Clock
from ..core.offering import OfferingTable
from ..core.scoring import Weights, sc_exact
from ..network.path import TripSegment


@dataclass(frozen=True, slots=True)
class MeanStd:
    """Mean and standard deviation of a sample."""

    mean: float
    std: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "MeanStd":
        if not values:
            return cls(math.nan, math.nan, 0)
        n = len(values)
        mean = sum(values) / n
        if n == 1:
            return cls(mean, 0.0, 1)
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        return cls(mean, math.sqrt(var), n)

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.std:.2f} (n={self.count})"


class Stopwatch:
    """Accumulating monotonic stopwatch; one lap per timed call.

    The clock is injected (default: the real system clock) so harness
    tests can drive laps deterministically with a ``SimulatedClock``.
    """

    def __init__(self, clock: Clock = SYSTEM_CLOCK) -> None:
        self.laps_ms: list[float] = []
        self._clock = clock

    @contextmanager
    def lap(self) -> Iterator[None]:
        """Context manager timing one lap into ``laps_ms``."""
        start = self._clock.monotonic()
        try:
            yield
        finally:
            self.laps_ms.append((self._clock.monotonic() - start) * 1000.0)

    @property
    def total_ms(self) -> float:
        return sum(self.laps_ms)

    def summary(self) -> MeanStd:
        """Mean/std/count over the recorded laps."""
        return MeanStd.of(self.laps_ms)


def true_sc_of_selection(
    truths: Mapping[int, TrueComponents],
    charger_ids: Iterable[int],
    weights: Weights,
) -> float:
    """Mean ground-truth SC over a selected charger set.

    Missing chargers (outside every truth pool — cannot happen when truths
    were computed for the union of selections) raise, loudly.
    """
    ids = list(charger_ids)
    if not ids:
        return 0.0
    total = 0.0
    for charger_id in ids:
        truth = truths[charger_id]
        total += sc_exact(truth.sustainable, truth.availability, truth.derouting, weights)
    return total / len(ids)


def oracle_truths_for_tables(
    environment: ChargingEnvironment,
    segment: TripSegment,
    tables: Iterable[OfferingTable],
    time_h: float,
    next_segment: TripSegment | None = None,
) -> dict[int, TrueComponents]:
    """Ground-truth components for the union of all tables' selections.

    One batched oracle pass per segment, shared by every method under
    comparison — keeps the grading cost independent of method count.
    """
    union_ids: set[int] = set()
    for table in tables:
        union_ids.update(table.charger_ids())
    chargers = [environment.registry.get(cid) for cid in sorted(union_ids)]
    return environment.true_components_pool(segment, chargers, time_h, next_segment)


def sc_percent(method_sc: float, reference_sc: float) -> float:
    """SC as a percentage of the Brute-Force reference."""
    if reference_sc <= 0:
        return 0.0 if method_sc <= 0 else math.inf
    return 100.0 * method_sc / reference_sc


def component_contributions(
    truths: Mapping[int, TrueComponents],
    charger_ids: Iterable[int],
) -> tuple[float, float, float]:
    """Achieved per-objective contribution shares of a selection.

    Decomposes the mean true SC of the selection into its three weighted
    terms and normalises them to fractions summing to 1 — the quantities
    Figure 9 reports as achieved ``w1/w2/w3`` percentages.  The
    decomposition always uses *equal* weights so that configurations are
    comparable (the paper grades every ablation against the same SC).
    """
    ids = list(charger_ids)
    if not ids:
        return (0.0, 0.0, 0.0)
    equal = 1.0 / 3.0
    terms = [0.0, 0.0, 0.0]
    for charger_id in ids:
        truth = truths[charger_id]
        terms[0] += truth.sustainable * equal
        terms[1] += truth.availability * equal
        terms[2] += (1.0 - truth.derouting) * equal
    total = sum(terms)
    if total <= 0:
        return (0.0, 0.0, 0.0)
    return (terms[0] / total, terms[1] / total, terms[2] / total)
