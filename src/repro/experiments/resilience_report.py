"""Ranking quality versus upstream fault rate (robustness experiment).

Not a figure in the paper, which assumes providers always answer; this
driver quantifies the serving story's missing half: as transient provider
failures climb from 0 % to 50 %, the EIS keeps completing every
continuous query through the degradation ladder, the delivered Offering
Tables stay *interval-sound* (the oracle component value lies inside
every served interval — the whole point of widening instead of guessing),
and the ground-truth SC of the selections decays gracefully instead of
collapsing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.ecocharge import EcoChargeConfig
from ..core.scoring import Weights
from ..resilience import FaultInjector, FaultProfile
from ..server.eis import EcoChargeInformationServer
from ..trajectories.datasets import DATASET_ORDER
from .harness import HarnessConfig, load_workloads
from .metrics import oracle_truths_for_tables, sc_percent, true_sc_of_selection

#: Transient per-call failure probabilities swept by the experiment.
DEFAULT_ERROR_RATES: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.5)


@dataclass(frozen=True)
class ResilienceRow:
    """One (dataset, fault-rate) cell of the sweep."""

    dataset: str
    error_rate: float
    tables: int
    failed_segments: int
    degraded_share: float
    breaker_openings: int
    mean_true_sc: float
    sc_vs_clean: float
    interval_soundness: float
    accounting_ok: bool


def _grade_run(
    environment, run, trip, segment_km: float, grading: Weights
) -> tuple[list[float], int, int]:
    """(per-table true SC, sound component intervals, total intervals)."""
    segments = run.trip.segments(segment_km)
    etas = environment.eta.segment_etas(trip, segment_km=segment_km)
    by_index = {segment.index: i for i, segment in enumerate(segments)}
    sc_samples: list[float] = []
    sound = 0
    total = 0
    for table in run.tables:
        i = by_index[table.segment_index]
        segment = segments[i]
        next_segment = segments[i + 1] if i + 1 < len(segments) else None
        eta_h = etas[i].expected_h
        truths = oracle_truths_for_tables(
            environment, segment, [table], eta_h, next_segment
        )
        sc_samples.append(true_sc_of_selection(truths, table.charger_ids(), grading))
        if table.is_adapted:
            # Adapted tables reuse intervals computed for an earlier
            # segment (Section IV-C's precision-for-reuse trade), so
            # containment at *this* segment is not a claim they make —
            # soundness is graded on freshly generated tables only.
            continue
        for entry in table.entries:
            truth = truths[entry.charger_id]
            for interval, value in (
                (entry.sustainable, truth.sustainable),
                (entry.availability, truth.availability),
                (entry.derouting, truth.derouting),
            ):
                total += 1
                sound += int(value in interval)
    return sc_samples, sound, total


def run_resilience(
    config: HarnessConfig | None = None,
    datasets: Sequence[str] = DATASET_ORDER,
    error_rates: Sequence[float] = DEFAULT_ERROR_RATES,
) -> list[ResilienceRow]:
    """Sweep fault rates; grade every delivered table against the oracle."""
    config = config if config is not None else HarnessConfig()
    eco = EcoChargeConfig(k=config.k)
    grading = Weights.equal()
    workloads = load_workloads(datasets, config)

    rows: list[ResilienceRow] = []
    for name in datasets:
        workload = workloads[name]
        environment = workload.environment
        trips = workload.trips[: config.trips_per_dataset]
        clean_sc: float | None = None
        for rate in error_rates:
            injector = FaultInjector(
                seed=config.seed, default=FaultProfile(error_rate=rate)
            )
            server = EcoChargeInformationServer(environment, injector=injector)
            sc_samples: list[float] = []
            sound = 0
            total = 0
            tables = 0
            failed = 0
            for trip in trips:
                run = server.rank_trip(trip, eco)
                tables += len(run.tables)
                failed += len(run.failed_segments)
                trip_sc, trip_sound, trip_total = _grade_run(
                    environment, run, trip, eco.segment_km, grading
                )
                sc_samples.extend(trip_sc)
                sound += trip_sound
                total += trip_total
            mean_sc = sum(sc_samples) / len(sc_samples) if sc_samples else 0.0
            if clean_sc is None:
                clean_sc = mean_sc
            health = server.health
            rows.append(
                ResilienceRow(
                    dataset=name,
                    error_rate=rate,
                    tables=tables,
                    failed_segments=failed,
                    degraded_share=(
                        health.total_degraded / health.total_calls
                        if health.total_calls
                        else 0.0
                    ),
                    breaker_openings=sum(
                        endpoint.breaker.times_opened
                        for endpoint in server.gateway.endpoints.values()
                    ),
                    mean_true_sc=mean_sc,
                    sc_vs_clean=sc_percent(mean_sc, clean_sc),
                    interval_soundness=sound / total if total else 1.0,
                    accounting_ok=server.gateway.accounting_ok(),
                )
            )
    return rows


def main(config: HarnessConfig | None = None) -> str:
    rows = run_resilience(config)
    lines = [
        "Resilience — ranking quality vs. upstream fault rate "
        "(graceful degradation, Section IV architecture under stress)",
        "=" * 98,
        (
            f"{'dataset':<12}{'fault %':>8}{'tables':>8}{'failed':>8}"
            f"{'degraded %':>12}{'breaker':>9}{'true SC':>9}{'SC vs clean %':>15}"
            f"{'sound %':>9}{'books ok':>10}"
        ),
        "-" * 98,
    ]
    for row in rows:
        lines.append(
            f"{row.dataset:<12}{row.error_rate * 100:>7.0f}%{row.tables:>8}"
            f"{row.failed_segments:>8}{row.degraded_share * 100:>11.1f}%"
            f"{row.breaker_openings:>9}{row.mean_true_sc:>9.3f}"
            f"{row.sc_vs_clean:>14.1f}%{row.interval_soundness * 100:>8.1f}%"
            f"{'yes' if row.accounting_ok else 'NO':>10}"
        )
    lines.append("-" * 98)
    lines.append(
        "sound % = oracle component value inside the served interval, over "
        "freshly generated tables (adapted tables reuse earlier-segment "
        "intervals by design); the ladder widens intervals instead of "
        "guessing, so degraded answers stay correct — just less precise."
    )
    text = "\n".join(lines)
    print(text)
    return text
