"""Deployment-mode experiment (Section IV's architecture claims).

Not a numbered figure in the paper, but the architecture section claims
EcoCharge sustains "continuous recomputation on the edge devices"; this
driver quantifies it: per-segment end-to-end latency for Mode 1
(embedded), Mode 2 (server) and Mode 3 (edge) across the datasets, plus
the EIS response-cache benefit when a second vehicle follows the same
corridor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.ecocharge import EcoChargeConfig
from ..server.client import EcoChargeClient
from ..server.eis import EcoChargeInformationServer
from ..server.modes import DeploymentMode, compare_modes
from ..trajectories.datasets import DATASET_ORDER
from .harness import HarnessConfig, load_workloads
from .metrics import MeanStd


@dataclass(frozen=True)
class ModeRow:
    dataset: str
    mode: DeploymentMode
    per_segment_ms: MeanStd


def run_modes(
    config: HarnessConfig | None = None,
    datasets: Sequence[str] = DATASET_ORDER,
) -> tuple[list[ModeRow], dict[str, float]]:
    """Per-mode latency rows plus per-dataset EIS cache benefit."""
    config = config if config is not None else HarnessConfig()
    eco = EcoChargeConfig(k=config.k)
    workloads = load_workloads(datasets, config)

    rows: list[ModeRow] = []
    cache_benefit: dict[str, float] = {}
    for name in datasets:
        workload = workloads[name]
        trips = workload.trips[: config.trips_per_dataset]
        per_mode: dict[DeploymentMode, list[float]] = {
            mode: [] for mode in DeploymentMode
        }
        for trip in trips:
            for mode, report in compare_modes(workload.environment, trip, eco).items():
                per_mode[mode].append(report.per_segment_ms)
        for mode, samples in per_mode.items():
            rows.append(
                ModeRow(dataset=name, mode=mode, per_segment_ms=MeanStd.of(samples))
            )
        # Cache benefit: a second client over the first trip.
        server = EcoChargeInformationServer(workload.environment)
        first = EcoChargeClient(server, eco)
        first.plan_trip(trips[0])
        upstream_after_first = server.usage.total
        second = EcoChargeClient(server, eco)
        second.plan_trip(trips[0])
        newly = server.usage.total - upstream_after_first
        cache_benefit[name] = 1.0 - (newly / max(1, upstream_after_first))
    return rows, cache_benefit


def main(config: HarnessConfig | None = None) -> str:
    rows, cache_benefit = run_modes(config)
    lines = [
        "Deployment modes — per-segment end-to-end latency (simulated network "
        "+ measured compute)",
        "=" * 80,
        f"{'dataset':<12}{'mode':<18}{'per segment (ms)':>22}",
        "-" * 80,
    ]
    for row in rows:
        lines.append(
            f"{row.dataset:<12}{row.mode.value:<18}"
            f"{row.per_segment_ms.mean:>14.1f} ± {row.per_segment_ms.std:<6.1f}"
        )
    lines.append("")
    lines.append("EIS response-cache benefit (upstream calls avoided for a "
                 "second vehicle on the same corridor):")
    for name, benefit in cache_benefit.items():
        lines.append(f"  {name:<12} {benefit:6.0%}")
    report = "\n".join(lines)
    print(report)
    return report


if __name__ == "__main__":
    main()
