"""Row/series formatting for the experiment drivers.

Prints the same quantities the paper's figures plot: per method/dataset
CPU execution time (ms) and Sustainability Score (% of Brute Force), plus
the ablation's achieved contribution shares.
"""

from __future__ import annotations

from typing import Sequence

from .harness import MethodResult


def format_results_table(results: Sequence[MethodResult], title: str) -> str:
    """Aligned text table over MethodResult rows."""
    header = ["dataset", "method", "F_t (ms)", "SC (%)"]
    rows = [header]
    for result in results:
        rows.append(
            [
                result.dataset,
                result.method,
                f"{result.ft_ms.mean:8.2f} ± {result.ft_ms.std:6.2f}",
                f"{result.sc_pct.mean:6.1f} ± {result.sc_pct.std:4.1f}",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(header) - 1)))
    return "\n".join(lines)


def format_ablation_table(results: Sequence[MethodResult], title: str) -> str:
    """Figure-9-style table with achieved contribution shares."""
    header = ["dataset", "config", "w1:L (%)", "w2:A (%)", "w3:D (%)", "SC (%)"]
    rows = [header]
    for result in results:
        w1, w2, w3 = result.contributions
        rows.append(
            [
                result.dataset,
                result.method,
                f"{100 * w1:5.1f}",
                f"{100 * w2:5.1f}",
                f"{100 * w3:5.1f}",
                f"{result.sc_pct.mean:6.1f} ± {result.sc_pct.std:4.1f}",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(header) - 1)))
    return "\n".join(lines)
