"""Figure 9 — Ablation study of weight parameters.

EcoCharge under the four distance functions of Section V-E:

* **AWE** — all weights equal (the default),
* **OSC** — only Sustainable Charging Level (w1 = 1),
* **OA** — only Availability (w2 = 1),
* **ODC** — only Derouting Cost (w3 = 1).

Every configuration is *graded* with equal weights against the
equal-weight Brute Force optimum, so the numbers show what optimising one
objective costs the others: the paper finds AWE dominating with SC
~97.5-99 % and the single-objective variants trading their own share up
for a lower total (OA falling hardest, to ~64-75 %).
"""

from __future__ import annotations

from typing import Sequence

from ..core.baselines import BruteForceRanker
from ..core.scoring import ABLATION_CONFIGS, Weights
from ..trajectories.datasets import DATASET_ORDER
from .harness import (
    HarnessConfig,
    MethodResult,
    compare_methods,
    ecocharge_factory,
    load_workloads,
)
from .report import format_ablation_table

RADIUS_KM = 50.0
RANGE_KM = 5.0


def run_figure9(
    config: HarnessConfig | None = None,
    datasets: Sequence[str] = DATASET_ORDER,
) -> list[MethodResult]:
    """The four weight configurations; graded with equal weights."""
    config = config if config is not None else HarnessConfig()
    equal = Weights.equal()
    factories = {
        "brute-force": lambda env: BruteForceRanker(env, k=config.k, weights=equal)
    }
    for label, weights in ABLATION_CONFIGS.items():
        factories[label] = ecocharge_factory(
            k=config.k, weights=weights, radius_km=RADIUS_KM, range_km=RANGE_KM
        )
    workloads = load_workloads(datasets, config)
    results: list[MethodResult] = []
    for name in datasets:
        rows = compare_methods(
            workloads[name], factories, config, grading_weights=equal
        )
        results.extend(r for r in rows if r.method != "brute-force")
    return results


def main(config: HarnessConfig | None = None) -> str:
    results = run_figure9(config)
    report = format_ablation_table(
        results,
        "Figure 9 — Weight ablation (achieved contribution shares; SC graded "
        "with equal weights vs Brute Force)",
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
