"""Figure 6 — Performance Evaluation.

CPU execution time ``F_t`` and Sustainability Score ``SC`` for the four
methods (Brute-Force, Index-Quadtree, Random, EcoCharge with R = 50 km,
Q = 5 km) across the four datasets, equal weights w1 = w2 = w3 = 1/3.

Expected shape (paper): Brute Force is slowest with SC = 100 %; the
quadtree baseline runs at a fraction of the cost with SC ~ 80-85 %; Random
is fastest but SC ~ 35-40 %; EcoCharge beats the quadtree on time while
holding SC ~ 97.5-99 %.
"""

from __future__ import annotations

from typing import Sequence

from ..core.scoring import Weights
from ..trajectories.datasets import DATASET_ORDER
from .harness import HarnessConfig, MethodResult, compare_methods, default_rankers, load_workloads
from .report import format_results_table

#: EcoCharge's best configuration per the paper (Section V-B).
BEST_RADIUS_KM = 50.0
BEST_RANGE_KM = 5.0


def run_figure6(
    config: HarnessConfig | None = None,
    datasets: Sequence[str] = DATASET_ORDER,
) -> list[MethodResult]:
    """All methods on all datasets; returns one row per (dataset, method)."""
    config = config if config is not None else HarnessConfig()
    weights = Weights.equal()
    factories = default_rankers(
        k=config.k, weights=weights, radius_km=BEST_RADIUS_KM, range_km=BEST_RANGE_KM
    )
    workloads = load_workloads(datasets, config)
    results: list[MethodResult] = []
    for name in datasets:
        results.extend(compare_methods(workloads[name], factories, config))
    return results


def main(config: HarnessConfig | None = None) -> str:
    results = run_figure6(config)
    report = format_results_table(
        results, "Figure 6 — Performance Evaluation (SC relative to Brute Force)"
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
