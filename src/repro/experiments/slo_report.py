"""SLO storm drill — burn-rate alerting exercised end to end.

Replays a seeded overload + fault + incident storm against the sharded
scheduler on a ``SimulatedClock`` and grades the whole observability
chain built on top of it:

* the :class:`~repro.observability.WindowedAggregator` samples the
  registry once per simulated second;
* the :class:`~repro.observability.SLOEngine` evaluates the serving
  objectives (availability of served-fresh, p99-style latency buckets,
  zero unsound tables) with multi-window multi-burn-rate pairs scaled
  down from the SRE-workbook defaults so the storm measured in
  simulated *seconds* walks the same machinery as an hours-long page;
* the :class:`~repro.observability.AlertManager` walks each alert
  through pending → firing → resolved and the scheduler consumes the
  firing set as a brownout floor (``alert_driven_brownout=True``);
* the :class:`~repro.observability.TailSampler` decides trace
  retention, and the drill asserts every error / deadline-shed /
  degraded-serve trace survived the storm.

The storm has three phases — calm, storm (4x burst + a slow shard +
live-graph incidents), recovery over a fresh trip pool — and the run is
executed **twice**; the artifact is only written after the two payloads
canonicalise byte-identically.  A mid-storm *soundness drill* injects
three synthetic ``ecocharge_unsound_tables_total`` events (clearly
labelled in the payload) so the zero-budget objective demonstrably
pages and resolves; the *real* interval-soundness audit over every
served table must find zero violations.

Artifacts: ``OBS_slo.json`` (deterministic, no timestamps) and a
regenerated ``OBS_metrics.prom`` exposition that must round-trip
through :func:`~repro.observability.parse_prometheus`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from ..core.ecocharge import EcoChargeConfig
from ..core.environment import ChargingEnvironment
from ..network.epochs import GraphEpochManager, IncidentStream
from ..observability import (
    MUST_KEEP_REASONS,
    OVERFLOW_COUNTER,
    TENANT_LABEL_LIMIT,
    AlertManager,
    BurnWindowPair,
    SamplingPolicy,
    SLOEngine,
    TailSampler,
    Telemetry,
    WindowedAggregator,
    canonical_json,
    collect_exemplars,
    default_serving_slos,
    mirror_scheduler_stats,
    parse_prometheus,
    reconcile,
    render_prometheus,
    retained_trace_ids,
    trip_correlation_id,
)
from ..observability.clock import SimulatedClock
from ..observability.sampling import REASON_ATTRIBUTE
from ..resilience import FaultInjector, OverloadChaos
from ..server.scheduling import (
    Outcome,
    Priority,
    SchedulerConfig,
    ShardedScheduler,
)
from ..trajectories.datasets import load_workload
from .harness import HarnessConfig

REPORT = "OBS_slo.json"
METRICS_EXPORT = "OBS_metrics.prom"
DATASET = "oldenburg"

#: Burn-window pairs scaled from hours to simulated seconds (the
#: SRE-workbook 1h/5m\@14.4 page and 6h/30m\@6 ticket shapes, compressed
#: ~300x so the 75 s drill spans several long windows).
DRILL_PAIRS = (
    BurnWindowPair(severity="page", long_s=12.0, short_s=4.0, threshold=6.0, for_s=2.0),
    BurnWindowPair(severity="ticket", long_s=36.0, short_s=12.0, threshold=3.0, for_s=6.0),
)

#: Evaluation ticks (1/s) at which the soundness drill injects one
#: synthetic unsound-table event each.
DRILL_TICKS = frozenset({22, 23, 24})

#: Number of distinct surge tenants the storm introduces on top of the
#: four steady fleet tenants — 12 total, so the ``tenant`` label guard
#: (limit 8) demonstrably trips and buckets the tail into ``__other__``.
SURGE_TENANTS = 8
FLEET_TENANTS = 4


@dataclass(frozen=True, slots=True)
class StormPhase:
    """One stretch of the drill's arrival process."""

    name: str
    duration_s: float
    #: Base Poisson arrival rate; the injector's burst window multiplies
    #: the storm phase up to its headline rate.
    arrival_rate_per_s: float
    #: Whether arrivals draw from the surge tenant pool and the
    #: storm-side trip pool.
    surge: bool


PHASES = (
    StormPhase("calm", duration_s=15.0, arrival_rate_per_s=2.0, surge=False),
    StormPhase("storm", duration_s=15.0, arrival_rate_per_s=4.0, surge=True),
    StormPhase("recovery", duration_s=45.0, arrival_rate_per_s=2.0, surge=False),
)

SERVICE_INTERVAL_S = 0.5
EVAL_INTERVAL_S = 1.0
#: Absolute simulated-time ceiling for the post-phase drain (queues must
#: empty and every fired alert must resolve well before this).
DRAIN_DEADLINE_S = 150.0


def _tenant_for(rng: random.Random, phase: StormPhase) -> str:
    if phase.surge and rng.random() < 0.75:
        return f"surge-{rng.randrange(SURGE_TENANTS):02d}"
    return f"fleet-{rng.randrange(FLEET_TENANTS):02d}"


def _priority_for(rng: random.Random) -> Priority:
    draw = rng.random()
    if draw < 0.1:
        return Priority.BACKGROUND
    if draw < 0.4:
        return Priority.REFRESH
    return Priority.INTERACTIVE


def _split_trips(trips) -> tuple[list, list]:
    """Calm/storm trips vs recovery trips.

    The recovery pool is disjoint from the storm pool so post-storm
    traffic misses the response cache: under the alert-driven brownout
    floor the tier computes *fresh* answers, the availability burn
    decays, and the alerts genuinely resolve instead of feeding back
    (stale serves count against served-fresh availability).
    """
    if len(trips) < 2:
        raise SystemExit("slo: the drill needs at least two workload trips")
    half = max(1, len(trips) // 2)
    return list(trips[:half]), list(trips[half:])


def _storm_scheduler(
    workload, telemetry: Telemetry, config: HarnessConfig
) -> tuple[ShardedScheduler, GraphEpochManager]:
    network, registry, seed = workload.network, workload.registry, config.seed

    def factory() -> ChargingEnvironment:
        return ChargingEnvironment(network, registry, seed=seed)

    epochs = GraphEpochManager(network)
    injector = FaultInjector(
        seed=config.seed,
        overload=OverloadChaos(
            burst_multiplier=4.0,
            burst_start_s=PHASES[0].duration_s,
            burst_duration_s=PHASES[1].duration_s,
            slow_shard=1,
            slow_delay_s=0.2,
        ),
    )
    scheduler = ShardedScheduler(
        factory,
        SchedulerConfig(
            shards=2,
            queue_capacity=8,
            deadline_budget_s=2.0,
            tenant_rate_per_s=8.0,
            tenant_burst=12.0,
            alert_driven_brownout=True,
        ),
        EcoChargeConfig(k=config.k, segment_km=6.0),
        clock=telemetry.clock,
        telemetry=telemetry,
        injector=injector,
        epochs=epochs,
    )
    return scheduler, epochs


def _run_storm(workload, config: HarnessConfig) -> dict:
    """One full drill on a fresh scheduler; returns the (deterministic)
    payload the artifact is built from."""
    sampler = TailSampler(SamplingPolicy(slow_k=3, slow_window_s=5.0, sample_rate=0.15))
    telemetry = Telemetry(
        SimulatedClock(0.0, 0.0), enabled=True, max_traces=48, sampler=sampler
    )
    clock = telemetry.clock
    scheduler, epochs = _storm_scheduler(workload, telemetry, config)
    windows = WindowedAggregator(telemetry.registry, clock, horizon_s=600.0)
    engine = SLOEngine(
        windows,
        default_serving_slos(
            availability_target=0.95,
            latency_threshold_s=1.0,
            latency_target=0.95,
            pairs=DRILL_PAIRS,
            soundness_pairs=(DRILL_PAIRS[0],),
        ),
    )
    alerts = AlertManager(clock, registry=telemetry.registry)
    storm_trips, recovery_trips = _split_trips(workload.trips)
    rng = random.Random(config.seed)
    incidents = IncidentStream(workload.network, seed=config.seed)

    timeline: list[dict] = []
    floor_history: list[int] = []
    eval_tick = 0
    next_service_s = SERVICE_INTERVAL_S
    next_eval_s = EVAL_INTERVAL_S
    incidents_applied = 0

    def advance_to(target_s: float) -> None:
        delta = target_s - clock.monotonic()
        if delta > 0:
            clock.advance(delta)

    def evaluate_once() -> None:
        nonlocal eval_tick
        eval_tick += 1
        if eval_tick in DRILL_TICKS:
            telemetry.inc("ecocharge_unsound_tables_total")
        windows.sample()
        signals = engine.evaluate()
        alerts.update(signals)
        floor = scheduler.apply_alert_state(alerts)
        floor_history.append(int(floor))
        firing = sorted(name for name, _severity in alerts.firing())
        if not timeline or timeline[-1]["firing"] != firing or timeline[-1]["floor"] != int(floor):
            timeline.append(
                {
                    "tick": eval_tick,
                    "t": round(clock.monotonic(), 6),
                    "firing": firing,
                    "floor": int(floor),
                    "pending": scheduler.pending,
                }
            )

    def pump(now_s: float) -> None:
        """Fire every service/eval tick due at-or-before ``now_s`` in
        time order (service wins ties so the eval sees its results)."""
        nonlocal next_service_s, next_eval_s
        while min(next_service_s, next_eval_s) <= now_s:
            if next_service_s <= next_eval_s:
                advance_to(next_service_s)
                for shard_id in range(len(scheduler.shards)):
                    scheduler.run_one(shard_id)
                next_service_s += SERVICE_INTERVAL_S
            else:
                advance_to(next_eval_s)
                evaluate_once()
                next_eval_s += EVAL_INTERVAL_S

    phase_end_s = 0.0
    for phase in PHASES:
        phase_end_s += phase.duration_s
        if phase.name == "storm":
            # The live graph moves at storm onset: one incident batch
            # bumps the epoch so in-flight admission-epoch answers serve
            # epoch-degraded (widened) rather than silently stale.
            batch = incidents.next_batch(3)
            epochs.apply(batch)
            incidents_applied += len(batch)
        trips = storm_trips if phase.surge else recovery_trips
        if phase.name == "calm":
            trips = storm_trips
        while True:
            now_s = clock.monotonic()
            if now_s >= phase_end_s:
                break
            rate = phase.arrival_rate_per_s
            if scheduler.injector is not None:
                rate *= scheduler.injector.burst_factor(now_s)
            gap_s = rng.expovariate(rate)
            if now_s + gap_s >= phase_end_s:
                pump(phase_end_s)
                advance_to(phase_end_s)
                break
            pump(now_s + gap_s)
            advance_to(now_s + gap_s)
            scheduler.submit(
                tenant=_tenant_for(rng, phase),
                trip=trips[rng.randrange(len(trips))],
                priority=_priority_for(rng),
            )

    # Drain the queues, then keep evaluating until every alert that
    # fired has resolved (bounded by the drain deadline).
    while scheduler.pending and clock.monotonic() < DRAIN_DEADLINE_S:
        pump(min(next_service_s, next_eval_s))
    while clock.monotonic() < DRAIN_DEADLINE_S and any(
        status.state in ("pending", "firing") for status in alerts.statuses()
    ):
        pump(min(next_service_s, next_eval_s))

    responses = scheduler.drain_responses()
    return _grade(
        scheduler,
        telemetry,
        sampler,
        alerts,
        responses,
        timeline,
        floor_history,
        incidents_applied,
    )


def _audit_soundness(responses) -> tuple[int, int]:
    """Real interval-soundness audit: every served table's component
    intervals must be valid sub-intervals of [0, 1]."""
    audited = 0
    violations = 0
    for response in responses:
        for table in response.tables:
            audited += 1
            for entry in table.entries:
                ok = (
                    entry.sustainable.within_bounds(0.0, 1.0)
                    and entry.availability.within_bounds(0.0, 1.0)
                    and entry.derouting.within_bounds(0.0, 1.0)
                )
                if not ok:
                    violations += 1
                    break
    return audited, violations


def _must_keep_correlation_ids(responses) -> set[str]:
    """Correlation IDs of every *executed* response the tail sampler is
    contractually required to retain (error, deadline shed at a
    checkpoint, or any degraded serve)."""
    ids: set[str] = set()
    for response in responses:
        executed_deadline = (
            response.outcome is Outcome.SHED_DEADLINE and response.detail != ""
        )
        degraded_serve = response.outcome.is_served and (
            response.outcome is Outcome.STALE
            or response.widened
            or response.epoch_degraded
            or response.brownout > 0
        )
        if response.outcome is Outcome.FAILED or executed_deadline or degraded_serve:
            ids.add(trip_correlation_id(response.request.trip))
    return ids


def _grade(
    scheduler: ShardedScheduler,
    telemetry: Telemetry,
    sampler: TailSampler,
    alerts: AlertManager,
    responses,
    timeline: list[dict],
    floor_history: list[int],
    incidents_applied: int,
) -> dict:
    registry = telemetry.registry
    problems: list[str] = []

    # -- accounting reconciliation (same bar as the serving report) -----
    outcomes: dict[str, int] = {}
    for response in responses:
        outcomes[response.outcome.value] = outcomes.get(response.outcome.value, 0) + 1
    mirror_scheduler_stats(registry, scheduler.stats)
    problems.extend(reconcile(registry, scheduler_stats=scheduler.stats))
    for outcome in Outcome:
        native = registry.sample_value(
            "ecocharge_scheduler_requests_total", {"outcome": outcome.value}
        )
        if (native or 0.0) != float(outcomes.get(outcome.value, 0)):
            problems.append(f"native outcome counter drifted for {outcome.value}")
    if not scheduler.accounting_ok():
        problems.append("scheduler accounting not exact")

    # -- alert lifecycle ------------------------------------------------
    states = alerts.states()
    fired = sorted(
        status.name for status in alerts.statuses() if status.ever_fired
    )
    unresolved = sorted(
        status.name
        for status in alerts.statuses()
        if status.state in ("pending", "firing")
    )
    for required in (
        "serving-availability:page",
        "serving-availability:ticket",
        "serving-latency:page",
        "interval-soundness:page",
    ):
        if required not in fired:
            problems.append(f"alert {required} never fired during the storm")
    if unresolved:
        problems.append(f"alerts still active after recovery: {unresolved}")
    storm_start = PHASES[0].duration_s
    storm_end = storm_start + PHASES[1].duration_s
    fire_ts: dict[str, float] = {}
    for entry in alerts.transitions:
        if entry["to"] == "firing" and entry["alert"] not in fire_ts:
            fire_ts[entry["alert"]] = entry["t"]
    availability_fired_t = fire_ts.get("serving-availability:page")
    if availability_fired_t is None or not (
        storm_start <= availability_fired_t <= storm_end + DRILL_PAIRS[0].short_s
    ):
        problems.append(
            f"availability page fired at {availability_fired_t}, outside the storm"
        )
    resolve_ts = [
        entry["t"]
        for entry in alerts.transitions
        if entry["to"] == "resolved" and entry["alert"] == "serving-availability:page"
    ]
    if not resolve_ts or resolve_ts[0] <= storm_end:
        problems.append("availability page did not resolve after the storm")

    # -- alert-driven brownout floor ------------------------------------
    if max(floor_history, default=0) < 1:
        problems.append("firing pages never raised the brownout floor")
    if floor_history and floor_history[-1] != 0:
        problems.append("brownout floor did not return to NORMAL")

    # -- tail-sampling retention invariants -----------------------------
    retained = retained_trace_ids(telemetry.tracer.traces)
    must_ids = _must_keep_correlation_ids(responses)
    missing = sorted(must_ids - retained)
    if missing:
        problems.append(f"must-keep traces evicted or dropped: {missing[:5]}")
    ring_must_keep = sum(
        1
        for trace in telemetry.tracer.traces
        if trace.attributes.get(REASON_ATTRIBUTE) in MUST_KEEP_REASONS
    )
    if ring_must_keep != sampler.stats.must_keep_total():
        problems.append(
            f"must-keep accounting drifted: ring={ring_must_keep} "
            f"stats={sampler.stats.must_keep_total()}"
        )

    # -- exemplars ------------------------------------------------------
    exemplars = collect_exemplars(registry, retained)
    if not exemplars:
        problems.append("no histogram exemplar points at a retained trace")

    # -- tenant-label cardinality guard ---------------------------------
    family = registry.get("ecocharge_tenant_requests_total")
    admitted = sorted(family.admitted_values("tenant")) if family else []
    expected_admitted: list[str] = []
    expected_overflow = 0
    for response in responses:
        tenant = response.request.tenant
        if tenant in expected_admitted:
            continue
        if len(expected_admitted) < TENANT_LABEL_LIMIT:
            expected_admitted.append(tenant)
        else:
            expected_overflow += 1
    overflow = registry.sample_value(
        OVERFLOW_COUNTER,
        {"label": "tenant", "metric": "ecocharge_tenant_requests_total"},
    )
    if admitted != sorted(expected_admitted):
        problems.append(
            f"tenant guard admitted {admitted}, expected {sorted(expected_admitted)}"
        )
    if (overflow or 0.0) != float(expected_overflow):
        problems.append(
            f"tenant overflow counted {overflow}, expected {expected_overflow}"
        )
    tenant_total = 0.0
    if family is not None:
        for _key, child in family.children():
            tenant_total += child.value
    if tenant_total != float(len(responses)):
        problems.append(
            f"tenant family total {tenant_total} != responses {len(responses)}"
        )

    # -- interval-soundness audit (the real one) ------------------------
    audited, violations = _audit_soundness(responses)
    if violations:
        problems.append(f"{violations} served tables failed the soundness audit")
    drill_events = registry.sample_value("ecocharge_unsound_tables_total", {}) or 0.0
    if drill_events != float(len(DRILL_TICKS)):
        problems.append(
            f"soundness drill injected {drill_events}, expected {len(DRILL_TICKS)}"
        )

    retained_summary = [
        {
            "trace_id": trace.trace_id,
            "reason": trace.attributes.get(REASON_ATTRIBUTE, ""),
            "duration_s": round(trace.duration_s, 6),
        }
        for trace in telemetry.tracer.traces
    ]
    return {
        "alerts": {
            "fired": fired,
            "final_states": dict(sorted(states.items())),
            "transitions": [
                {**entry, "t": round(entry["t"], 6)} for entry in alerts.transitions
            ],
        },
        "timeline": timeline,
        "brownout_floor": {
            "peak": max(floor_history, default=0),
            "final": floor_history[-1] if floor_history else 0,
        },
        "outcomes": dict(sorted(outcomes.items())),
        "requests": len(responses),
        "incidents_applied": incidents_applied,
        "sampling": {
            **sampler.stats.as_dict(),
            "retained": retained_summary,
            "ring_size": len(telemetry.tracer.traces),
            "ring_bound": 48,
        },
        "exemplars": {
            "count": len(exemplars),
            "metrics": sorted({e["metric"] for e in exemplars}),
        },
        "cardinality": {
            "limit": TENANT_LABEL_LIMIT,
            "admitted": admitted,
            "overflow": int(overflow or 0),
        },
        "soundness": {
            "audited_tables": audited,
            "violations": violations,
            "drill": {"ticks": sorted(DRILL_TICKS), "events": int(drill_events)},
        },
        "problems": problems,
        "_registry": registry,
    }


def run_slo(config: HarnessConfig | None = None) -> dict:
    """Run the drill twice, assert bit-determinism, write the artifacts."""
    config = config if config is not None else HarnessConfig()
    smoke = config.dataset_scale < 1.0
    workload = load_workload(
        DATASET,
        scale=min(config.dataset_scale, 0.5),
        environment_seed=config.seed,
    )
    first = _run_storm(workload, config)
    second = _run_storm(workload, config)
    registry = first.pop("_registry")
    second.pop("_registry")
    first_json = canonical_json(first)
    second_json = canonical_json(second)
    deterministic = first_json == second_json
    if not deterministic:
        raise SystemExit("slo: two same-seed storm runs produced different payloads")
    if first["problems"]:
        raise SystemExit("slo: " + "; ".join(first["problems"]))

    exposition = render_prometheus(registry)
    parsed = parse_prometheus(exposition)
    Path.cwd().joinpath(METRICS_EXPORT).write_text(exposition)

    report = {
        "report": "slo",
        "smoke": smoke,
        "dataset": DATASET,
        "phases": [
            {
                "name": phase.name,
                "duration_s": phase.duration_s,
                "arrival_rate_per_s": phase.arrival_rate_per_s,
            }
            for phase in PHASES
        ],
        "pairs": [
            {
                "severity": pair.severity,
                "long_s": pair.long_s,
                "short_s": pair.short_s,
                "threshold": pair.threshold,
                "for_s": pair.for_s,
            }
            for pair in DRILL_PAIRS
        ],
        "determinism": {"identical": deterministic},
        "exposition": {"families": len(parsed), "round_trip": True},
        **first,
    }
    Path.cwd().joinpath(REPORT).write_text(canonical_json(report) + "\n")
    return report


def _format_report(report: dict) -> str:
    alerts = report["alerts"]
    lines = [
        "SLO storm drill — burn-rate alerts over the sharded scheduler",
        f"  requests {report['requests']}, outcomes {report['outcomes']}",
        f"  fired: {', '.join(alerts['fired'])}",
        f"  transitions: {len(alerts['transitions'])}, "
        f"floor peak {report['brownout_floor']['peak']}, "
        f"final {report['brownout_floor']['final']}",
        f"  sampling: kept {report['sampling']['kept']}, "
        f"dropped {report['sampling']['dropped']}, "
        f"evicted {report['sampling']['evicted']}, "
        f"ring {report['sampling']['ring_size']}/{report['sampling']['ring_bound']}",
        f"  cardinality: admitted {len(report['cardinality']['admitted'])}"
        f"/{report['cardinality']['limit']}, "
        f"overflow {report['cardinality']['overflow']}",
        f"  soundness: {report['soundness']['audited_tables']} tables audited, "
        f"{report['soundness']['violations']} violations "
        f"(drill events {report['soundness']['drill']['events']})",
        f"  determinism: double-run identical = "
        f"{report['determinism']['identical']}",
    ]
    return "\n".join(lines)


def main(config: HarnessConfig | None = None) -> str:
    report = run_slo(config)
    text = _format_report(report)
    print(text)
    return text


if __name__ == "__main__":
    main()
