"""Experiment harness reproducing the paper's evaluation (Section V)."""

from .harness import (
    HarnessConfig,
    MethodResult,
    compare_methods,
    default_rankers,
    ecocharge_factory,
    load_workloads,
)
from .metrics import (
    MeanStd,
    Stopwatch,
    component_contributions,
    oracle_truths_for_tables,
    sc_percent,
    true_sc_of_selection,
)
from .records import (
    ShapeViolation,
    check_figure6_shape,
    compare_runs,
    load_results,
    save_results,
)
from .report import format_ablation_table, format_results_table

__all__ = [
    "HarnessConfig",
    "MeanStd",
    "MethodResult",
    "ShapeViolation",
    "Stopwatch",
    "check_figure6_shape",
    "compare_methods",
    "compare_runs",
    "component_contributions",
    "default_rankers",
    "ecocharge_factory",
    "format_ablation_table",
    "format_results_table",
    "load_results",
    "load_workloads",
    "oracle_truths_for_tables",
    "save_results",
    "sc_percent",
    "true_sc_of_selection",
]
