"""Observability report: one traced trip, both exporters, overhead check.

``python -m repro.experiments observability`` runs a durable ranking
session with telemetry enabled and validates the whole pipeline
end-to-end:

1. a single trace tree spans all six serving tiers (server, gateway,
   ranker, engine, cache, journal) under one content-hashed trip
   correlation ID,
2. the metrics registry reconciles *exactly* against the legacy
   counters (``CacheStats`` / ``EngineStats`` / ``ApiUsage`` /
   ``JournalCacheAccounting``),
3. the Prometheus exposition parses and the canonical-JSON snapshot
   round-trips byte-identically, and
4. the telemetry-disabled fast path stays within the documented
   overhead budget (measured here, reported in the output).

Artifacts are written next to the other persistent reports:
``OBS_metrics.prom`` and ``OBS_snapshot.json`` in the working
directory.  Any validation failure raises ``SystemExit`` so the CI
smoke job fails loudly.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any

from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
from ..core.ranking import run_over_trip
from ..observability import (
    SYSTEM_CLOCK,
    Telemetry,
    json_round_trips,
    mirror_all,
    parse_prometheus,
    reconcile,
    render_json,
    render_prometheus,
)
from ..observability.tracing import trip_correlation_id
from ..server.eis import EcoChargeInformationServer
from ..server.sessions import DurableSessionService
from ..trajectories.datasets import load_workload
from .harness import HarnessConfig

#: The tiers one fully-telemetered durable trip must touch.
REQUIRED_TIERS = frozenset(
    {"server", "gateway", "ranker", "engine", "cache", "journal"}
)

METRICS_ARTIFACT = "OBS_metrics.prom"
SNAPSHOT_ARTIFACT = "OBS_snapshot.json"

#: Dataset used for the report (small enough for the CI smoke job).
DATASET = "oldenburg"


def run_traced_trip(config: HarnessConfig) -> dict[str, Any]:
    """Run one durable session under simulated-clock telemetry.

    Returns everything the report needs: the telemetry recorder, the
    trace roots, the reconciliation verdict, and both rendered exports.
    """
    workload = load_workload(
        DATASET, scale=config.dataset_scale, environment_seed=config.seed
    )
    telemetry = Telemetry.simulated(tick_s=0.0005)
    workload.environment.set_telemetry(telemetry)
    server = EcoChargeInformationServer(workload.environment)
    root = Path(tempfile.mkdtemp(prefix="observability-"))
    service = DurableSessionService(server, root)

    trip = workload.trips[0]
    eco = EcoChargeConfig(k=config.k, telemetry=True)
    # Open/run/close explicitly (rather than ``rank_trip_durably``) so the
    # session object — and with it the ranker's cache stats and the journal
    # accounting — stays in hand for reconciliation after sealing.
    with telemetry.span(
        "server.rank_trip_durably",
        tier="server",
        trace_id=trip_correlation_id(trip),
        session_id="obs-report",
    ):
        session = service.open("obs-report", trip, eco)
        try:
            run = session.run()
        finally:
            service.close(session)

    tracer = telemetry.tracer
    traces = list(tracer.traces)  # type: ignore[union-attr]
    trace_ids = sorted({root_span.trace_id for root_span in traces})
    tiers: set[str] = set()
    for root_span in traces:
        tiers |= root_span.tiers()

    cache_stats = session.ranker.cache_stats
    engine_stats = workload.environment.engine.stats
    mirror_all(
        telemetry.registry,
        cache_stats=cache_stats,
        engine_stats=engine_stats,
        api_usage=server.usage,
        health=server.health,
        breaker_states=server.gateway.breaker_states(),
        journal_accounting=session.accounting,
    )
    mismatches = reconcile(
        telemetry.registry,
        cache_stats=cache_stats,
        engine_stats=engine_stats,
        api_usage=server.usage,
        journal_accounting=session.accounting,
    )

    exposition = render_prometheus(telemetry.registry)
    snapshot = render_json(
        telemetry.registry,
        traces=traces,
        extra={"report": "observability", "dataset": DATASET},
    )
    return {
        "telemetry": telemetry,
        "tables": len(run.tables),
        "traces": traces,
        "trace_ids": trace_ids,
        "tiers": tiers,
        "mismatches": mismatches,
        "exposition": exposition,
        "snapshot": snapshot,
    }


def measure_overhead(config: HarnessConfig, repetitions: int = 3) -> dict[str, float]:
    """Wall-clock per-segment cost with telemetry off vs on.

    The disabled number is the production default (``NOOP_TELEMETRY``
    guards on every hot path); the enabled number shows what the full
    span/metric pipeline costs when switched on.
    """

    def time_once(enabled: bool) -> float:
        workload = load_workload(
            DATASET, scale=config.dataset_scale, environment_seed=config.seed
        )
        if enabled:
            workload.environment.set_telemetry(Telemetry.live())
        trip = workload.trips[0]
        ranker = EcoChargeRanker(workload.environment, EcoChargeConfig(k=config.k))
        start = SYSTEM_CLOCK.monotonic()
        run = run_over_trip(ranker, workload.environment, trip)
        elapsed = SYSTEM_CLOCK.monotonic() - start
        return elapsed / max(1, len(run.tables))

    disabled = min(time_once(False) for _ in range(repetitions))
    enabled = min(time_once(True) for _ in range(repetitions))
    return {
        "disabled_ms": disabled * 1000.0,
        "enabled_ms": enabled * 1000.0,
        "enabled_over_disabled": enabled / disabled if disabled > 0 else 1.0,
    }


def _format_report(result: dict[str, Any], overhead: dict[str, float]) -> str:
    telemetry: Telemetry = result["telemetry"]
    lines = [
        "Observability — trace coverage, metric reconciliation, exporters",
        "=" * 72,
        f"  segments ranked: {result['tables']}",
        f"  traces recorded: {len(result['traces'])} "
        f"(ids: {', '.join(result['trace_ids'])})",
        f"  tiers covered: {', '.join(sorted(result['tiers']))}",
        f"  reconciliation: "
        + ("exact" if not result["mismatches"] else "MISMATCH"),
        "",
        "Trace tree (first trace):",
    ]
    tracer = telemetry.tracer
    if result["traces"]:
        lines.append(tracer.render_trace(result["traces"][0]))
    lines.append("Hot spans (self time):")
    for row in tracer.hot_spans(5):
        lines.append(
            f"  {row['name']:<24} {row['count']:>5}x  {row['self_time_s']*1000:>8.2f} ms"
        )
    lines += [
        "",
        "Overhead (per segment, best of runs):",
        f"  telemetry disabled: {overhead['disabled_ms']:.2f} ms",
        f"  telemetry enabled:  {overhead['enabled_ms']:.2f} ms "
        f"({overhead['enabled_over_disabled']:.2f}x)",
        "",
        f"Artifacts: {METRICS_ARTIFACT} "
        f"({len(parse_prometheus(result['exposition']))} families), "
        f"{SNAPSHOT_ARTIFACT} (canonical JSON)",
    ]
    return "\n".join(lines)


def main(config: HarnessConfig | None = None) -> str:
    config = config if config is not None else HarnessConfig()
    result = run_traced_trip(config)

    failures: list[str] = []
    missing = REQUIRED_TIERS - result["tiers"]
    if missing:
        failures.append(f"trace tree missing tiers: {sorted(missing)}")
    if len(result["trace_ids"]) != 1:
        failures.append(f"expected one trip correlation ID, got {result['trace_ids']}")
    failures.extend(result["mismatches"])
    try:
        parse_prometheus(result["exposition"])
    except ValueError as error:
        failures.append(f"Prometheus exposition invalid: {error}")
    if not json_round_trips(result["snapshot"]):
        failures.append("JSON snapshot is not canonical (round-trip failed)")

    Path.cwd().joinpath(METRICS_ARTIFACT).write_text(result["exposition"])
    Path.cwd().joinpath(SNAPSHOT_ARTIFACT).write_text(result["snapshot"] + "\n")

    overhead = measure_overhead(config)
    report = _format_report(result, overhead)
    print(report)
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        raise SystemExit(1)
    return report


if __name__ == "__main__":
    main()
