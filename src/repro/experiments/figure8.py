"""Figure 8 — Q-opt Evaluation.

EcoCharge under different range-distance values Q in {5, 10, 15} km
(R fixed at 50 km): a longer Q lets cached Offering Tables survive more
vehicle movement — fewer regenerations, faster — but adapted solutions
drift from the optimum, so SC drops.
"""

from __future__ import annotations

from typing import Sequence

from ..core.baselines import BruteForceRanker
from ..core.scoring import Weights
from ..trajectories.datasets import DATASET_ORDER
from .harness import (
    HarnessConfig,
    MethodResult,
    compare_methods,
    ecocharge_factory,
    load_workloads,
)
from .report import format_results_table

RANGES_KM = (5.0, 10.0, 15.0)
RADIUS_KM = 50.0


def run_figure8(
    config: HarnessConfig | None = None,
    datasets: Sequence[str] = DATASET_ORDER,
    ranges_km: Sequence[float] = RANGES_KM,
) -> list[MethodResult]:
    """EcoCharge Q sweep; Brute Force runs as the hidden 100 % reference."""
    config = config if config is not None else HarnessConfig()
    weights = Weights.equal()
    factories = {
        "brute-force": lambda env: BruteForceRanker(env, k=config.k, weights=weights)
    }
    for range_km in ranges_km:
        factories[f"ecocharge Q={range_km:g}km"] = ecocharge_factory(
            k=config.k, weights=weights, radius_km=RADIUS_KM, range_km=range_km
        )
    workloads = load_workloads(datasets, config)
    results: list[MethodResult] = []
    for name in datasets:
        rows = compare_methods(workloads[name], factories, config)
        results.extend(r for r in rows if r.method != "brute-force")
    return results


def main(config: HarnessConfig | None = None) -> str:
    results = run_figure8(config)
    report = format_results_table(
        results, "Figure 8 — Q-opt Evaluation (EcoCharge, R = 50 km)"
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
