"""Live-graph incidents experiment: epoch-fenced serving under storms.

Not a figure in the paper, which assumes a static road network; this
driver grades the live-graph subsystem's guarantees.  For every dataset
it runs the seeded incident-chaos scenario
(:func:`~repro.simulation.scenarios.run_incident_chaos`) on both
distance-engine backends and demands:

* 100% interval soundness — every epoch-degraded Offering Table's
  derouting interval contains the fresh-epoch recompute;
* zero fresh-labelled stale serves — every serve not flagged degraded
  is bitwise identical to a cold recompute on the live graph;
* free no-op bumps — bitwise-identical tables, zero cache invalidations;
* bitwise backend agreement on the final epoch;
* exact scheduler/epoch stats reconciliation.

It also wall-clock-times the **epoch swap** — the incremental CH
re-customization sweep after an incident fences the engine — and appends
the measurement to the ``BENCH_serving.json`` history, alongside the
serving benchmark's scaling headline.

The driver exits non-zero on any violation, which is what the
``incident-chaos`` CI job keys off.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..core.ecocharge import EcoChargeConfig
from ..core.environment import ChargingEnvironment
from ..network.epochs import GraphEpochManager, IncidentStream
from ..observability.clock import SYSTEM_CLOCK, Clock, iso_utc
from ..observability.recorder import Telemetry
from ..server.eis import EcoChargeInformationServer
from ..simulation.scenarios import IncidentChaosReport, IncidentChaosSpec, run_incident_chaos
from ..trajectories.datasets import DATASET_ORDER
from .harness import HarnessConfig, load_workloads
from .serving_report import HISTORY_LIMIT, REPORT_FULL


def measure_epoch_swap(
    workload, config: HarnessConfig, clock: Clock = SYSTEM_CLOCK
) -> float:
    """Mean wall-clock seconds of the post-incident re-customization sweep.

    Warm a CH customisation, land a real incident batch, and re-rank: the
    first customisation sweep after the fence is the epoch swap, and the
    engine reports its latency (``last_recustomize_s``).
    """
    samples: list[float] = []
    eco = EcoChargeConfig(k=config.k, engine="ch")
    trip = workload.trips[0]
    for rep in range(config.repetitions):
        telemetry = Telemetry(clock)
        environment = ChargingEnvironment(
            workload.network, workload.registry, seed=config.seed
        )
        environment.set_telemetry(telemetry)
        manager = GraphEpochManager(workload.network)
        environment.set_epochs(manager)
        server = EcoChargeInformationServer(environment)
        server.rank_trip(trip, eco)  # warm: builds + customises the CH
        stream = IncidentStream(workload.network, seed=config.seed + rep)
        manager.apply(stream.next_batch(3))
        server.rank_trip(trip, eco)  # fenced: incremental re-customization
        samples.append(environment.engine.last_recustomize_s or 0.0)
    return sum(samples) / len(samples)


def record_epoch_swap_history(
    epoch_swap_s: float, clock: Clock = SYSTEM_CLOCK, path: Path | None = None
) -> Path:
    """Append the epoch-swap measurement to ``BENCH_serving.json``'s history.

    The serving benchmark owns the file; this driver only merges one more
    history entry (same ``at``/``at_iso`` shape, capped at the same
    :data:`~repro.experiments.serving_report.HISTORY_LIMIT`), so trend
    tooling sees swap latency next to the scaling headline.
    """
    path = path if path is not None else Path.cwd() / REPORT_FULL
    report: dict = {}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError):
            report = {}
    if not isinstance(report, dict):
        report = {}
    history = [h for h in report.get("history", []) if isinstance(h, dict)]
    now_s = clock.now()
    history.append(
        {"at": now_s, "at_iso": iso_utc(now_s), "epoch_swap_s": round(epoch_swap_s, 6)}
    )
    report["history"] = history[-HISTORY_LIMIT:]
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def run_incidents(
    config: HarnessConfig | None = None,
    datasets: Sequence[str] = DATASET_ORDER,
) -> list[tuple[str, IncidentChaosReport]]:
    """Incident-chaos every dataset (both backends inside each run)."""
    config = config if config is not None else HarnessConfig()
    workloads = load_workloads(datasets, config)
    rows: list[tuple[str, IncidentChaosReport]] = []
    for name in datasets:
        spec = IncidentChaosSpec(
            fleet_size=min(2, config.trips_per_dataset),
            k=config.k,
            seed=config.seed,
        )
        rows.append((name, run_incident_chaos(workloads[name], spec)))
    return rows


def main(config: HarnessConfig | None = None) -> str:
    config = config if config is not None else HarnessConfig()
    rows = run_incidents(config)
    lines = [
        "Live-graph incidents — epoch-fenced serving through seeded storms "
        "(both engine backends)",
        "=" * 100,
        (
            f"{'dataset':<12}{'epochs':>7}{'weight':>7}{'noop':>5}"
            f"{'incidents':>10}{'served':>7}{'degraded':>9}{'contain':>8}"
            f"{'fresh':>6}{'books':>7}{'sound':>7}{'clean':>7}"
        ),
        "-" * 100,
    ]
    violations = 0
    swap_s = measure_epoch_swap(load_workloads([DATASET_ORDER[0]], config)[DATASET_ORDER[0]], config)
    for name, report in rows:
        if not report.completed_cleanly:
            violations += 1
        lines.append(
            f"{name:<12}{report.epochs_applied:>7}{report.weight_epochs:>7}"
            f"{report.noop_epochs:>5}{report.incidents_applied:>10}"
            f"{report.served:>7}{report.epoch_degraded_served:>9}"
            f"{report.containment_checks - report.containment_violations:>4}"
            f"/{report.containment_checks:<3}"
            f"{report.fresh_checks - report.fresh_divergences:>3}"
            f"/{report.fresh_checks:<2}"
            f"{'ok' if report.accounting_failures == 0 and not report.reconciliation else 'NO':>7}"
            f"{'yes' if report.sound else 'NO':>7}"
            f"{'yes' if report.completed_cleanly else 'NO':>7}"
        )
    lines.append("-" * 100)
    path = record_epoch_swap_history(swap_s)
    lines.append(
        f"epoch swap (post-incident CH re-customization): {swap_s * 1e3:.1f} ms "
        f"mean over {config.repetitions} reps — appended to {path.name} history"
    )
    lines.append(
        "contain = epoch-degraded derouting intervals containing the "
        "fresh-epoch recompute; fresh = unwidened serves bitwise-equal to a "
        "cold recompute on the live graph; clean additionally demands free "
        "no-op bumps, bitwise backend agreement, and exact reconciliation."
    )
    text = "\n".join(lines)
    print(text)
    if violations:
        raise SystemExit(f"incidents: {violations} dataset(s) failed the storm proof")
    return text


if __name__ == "__main__":
    main()
