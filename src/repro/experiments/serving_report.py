"""Serving under overload — the concurrent-tier benchmark.

Drives the :class:`~repro.server.scheduling.ShardedScheduler` with the
:mod:`~repro.simulation.load` generator over a real workload's trips and
writes ``BENCH_serving.json`` (CI smoke: ``BENCH_serving_smoke.json``).

Two measurements:

* **Deterministic matrix** — load levels x fault scenarios on a
  ``SimulatedClock``.  Every cell reports p50/p99 latency, throughput,
  and the outcome composition (completed / stale / shed / rejected),
  and every cell must reconcile its accounting exactly: requests in ==
  responses out, stats == registry.  This is where the overload story
  is graded — under a 4x burst the tier sheds and degrades instead of
  queueing without bound.
* **Scaling headline** — the same overload stream served at ``shards=1``
  vs ``shards=N`` in deterministic mode; the headline is the measured
  served-throughput ratio.  Sharding multiplies *service capacity* (one
  request per shard per service tick, each shard owning its own engine
  and caches), so the single-shard tier saturates, sheds, and stretches
  its p99 where the sharded tier keeps serving — that capacity ratio is
  what the report gates on.  A wall-clock threaded run rides along as a
  liveness/contention check: CPython's GIL serialises the pure-Python
  ranking work, so its numbers validate thread-safety (every request
  resolves, accounting stays exact under real races), not CPU scaling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..core.ecocharge import EcoChargeConfig
from ..core.environment import ChargingEnvironment
from ..observability.clock import SYSTEM_CLOCK, Clock, iso_utc
from ..observability.recorder import Telemetry
from ..resilience import FaultInjector, OverloadChaos
from ..server.scheduling import SchedulerConfig, ShardedScheduler
from ..simulation.load import LoadProfile, LoadReport, run_load, run_load_threaded
from ..trajectories.datasets import load_workload
from .harness import HarnessConfig

#: Most recent runs kept in the persistent report.
HISTORY_LIMIT = 20

REPORT_FULL = "BENCH_serving.json"
REPORT_SMOKE = "BENCH_serving_smoke.json"

DATASET = "oldenburg"


@dataclass(frozen=True, slots=True)
class LoadLevel:
    """One column of the matrix: how hard the tenants push."""

    name: str
    arrival_rate_per_s: float
    requests: int


@dataclass(frozen=True, slots=True)
class FaultScenario:
    """One row of the matrix: what the injector does to the tier."""

    name: str
    overload: OverloadChaos | None


def load_levels(smoke: bool) -> list[LoadLevel]:
    # The 4-shard tier's service capacity is one request per shard per
    # 0.15 s tick (~26.7/s): "overload" alone saturates it, and the 4x
    # burst window on top is the headline chaos condition.
    if smoke:
        return [LoadLevel("overload", arrival_rate_per_s=48.0, requests=32)]
    return [
        LoadLevel("nominal", arrival_rate_per_s=4.0, requests=80),
        LoadLevel("overload", arrival_rate_per_s=48.0, requests=96),
    ]


def fault_scenarios(smoke: bool) -> list[FaultScenario]:
    burst = OverloadChaos(
        burst_multiplier=4.0, burst_start_s=0.2, burst_duration_s=6.0
    )
    chaos = OverloadChaos(
        burst_multiplier=4.0,
        burst_start_s=0.2,
        burst_duration_s=6.0,
        slow_shard=1,
        slow_delay_s=0.3,
        stuck_shard=2,
        stuck_after=3,
    )
    if smoke:
        return [FaultScenario("none", None), FaultScenario("burst", burst)]
    return [
        FaultScenario("none", None),
        FaultScenario("burst", burst),
        FaultScenario("chaos", chaos),
    ]


def _scheduler(
    workload,
    shards: int,
    telemetry: Telemetry,
    injector: FaultInjector | None,
    config: HarnessConfig,
    scheduler_config: SchedulerConfig | None = None,
) -> ShardedScheduler:
    network, registry, seed = workload.network, workload.registry, config.seed

    def factory() -> ChargingEnvironment:
        return ChargingEnvironment(network, registry, seed=seed)

    return ShardedScheduler(
        factory,
        scheduler_config
        if scheduler_config is not None
        else SchedulerConfig(
            shards=shards,
            queue_capacity=8,
            deadline_budget_s=3.0,
            tenant_rate_per_s=8.0,
            tenant_burst=12.0,
        ),
        EcoChargeConfig(k=config.k, segment_km=6.0),
        clock=telemetry.clock,
        telemetry=telemetry,
        injector=injector,
    )


def run_matrix(workload, config: HarnessConfig, smoke: bool) -> dict[str, dict]:
    """The deterministic load x fault grid (one fresh scheduler per cell)."""
    cells: dict[str, dict] = {}
    for level in load_levels(smoke):
        for fault in fault_scenarios(smoke):
            telemetry = Telemetry.simulated(tick_s=0.0)
            injector = (
                FaultInjector(seed=config.seed, overload=fault.overload)
                if fault.overload is not None
                else None
            )
            scheduler = _scheduler(workload, shards=4, telemetry=telemetry,
                                   injector=injector, config=config)
            report = run_load(
                scheduler,
                workload.trips,
                LoadProfile(
                    requests=level.requests,
                    arrival_rate_per_s=level.arrival_rate_per_s,
                    seed=config.seed,
                ),
            )
            if report.reconciliation or not report.accounting_exact:
                raise SystemExit(
                    f"serving: cell {level.name}/{fault.name} failed to "
                    f"reconcile: {report.reconciliation}"
                )
            cells[f"{level.name}/{fault.name}"] = report.as_dict()
    return cells


def run_scaling(workload, config: HarnessConfig, smoke: bool) -> dict:
    """Deterministic capacity scaling: shards=1 vs shards=4 on the same
    saturating stream (identical seed, arrivals, and service cadence)."""
    level = load_levels(smoke)[-1]
    shard_counts = (1, 4)
    runs: dict[str, LoadReport] = {}
    for shards in shard_counts:
        telemetry = Telemetry.simulated(tick_s=0.0)
        scheduler = _scheduler(
            workload, shards=shards, telemetry=telemetry, injector=None, config=config
        )
        runs[f"shards_{shards}"] = run_load(
            scheduler,
            workload.trips,
            LoadProfile(
                requests=level.requests,
                arrival_rate_per_s=level.arrival_rate_per_s,
                seed=config.seed,
            ),
        )
    base = runs[f"shards_{shard_counts[0]}"].served_per_s
    top = runs[f"shards_{shard_counts[-1]}"].served_per_s
    return {
        "requests": level.requests,
        "runs": {name: run.as_dict() for name, run in runs.items()},
        "speedup": round(top / base, 3) if base > 0 else None,
    }


def run_threaded_check(
    workload, config: HarnessConfig, smoke: bool, clock: Clock = SYSTEM_CLOCK
) -> dict:
    """Wall-clock threaded liveness check (GIL-bound, not a scaling claim).

    Capacity knobs are opened wide so every request is admitted; what is
    asserted is that under real thread races every request resolves and
    the accounting stays exact.
    """
    requests = 12 if smoke else 32
    scheduler = _scheduler(
        workload,
        shards=4,
        # A disabled recorder with its *own* registry (never the shared
        # no-op singleton) so threaded workers stay off the lock-free
        # metrics path entirely.
        telemetry=Telemetry(clock, enabled=False),
        injector=None,
        config=config,
        scheduler_config=SchedulerConfig(
            shards=4,
            queue_capacity=max(16, requests),
            max_inflight=4 * requests,
            deadline_budget_s=300.0,
            tenant_rate_per_s=10_000.0,
            tenant_burst=4.0 * requests,
        ),
    )
    report = run_load_threaded(
        scheduler, workload.trips, LoadProfile(requests=requests, seed=config.seed)
    )
    if not report.accounting_exact or report.reconciliation:
        raise SystemExit(
            f"serving: threaded run failed to reconcile: {report.reconciliation}"
        )
    return report.as_dict()


def _merge_history(path: Path, headline: float | None, clock: Clock) -> list[dict]:
    history: list[dict] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = {}
        history = [h for h in previous.get("history", []) if isinstance(h, dict)]
    now_s = clock.now()
    history.append({"at": now_s, "at_iso": iso_utc(now_s), "scaling": headline})
    return history[-HISTORY_LIMIT:]


def run_serving(
    config: HarnessConfig | None = None, clock: Clock = SYSTEM_CLOCK
) -> dict:
    """Run matrix + scaling and write the persistent JSON report."""
    config = config if config is not None else HarnessConfig()
    smoke = config.dataset_scale < 1.0
    workload = load_workload(
        DATASET,
        scale=min(config.dataset_scale, 0.5),
        environment_seed=config.seed,
    )
    matrix = run_matrix(workload, config, smoke)
    scaling = run_scaling(workload, config, smoke)
    threaded = run_threaded_check(workload, config, smoke, clock=clock)
    headline = scaling["speedup"]
    path = Path.cwd() / (REPORT_SMOKE if smoke else REPORT_FULL)
    report = {
        "report": "serving",
        "smoke": smoke,
        "dataset": DATASET,
        "matrix": matrix,
        "scaling": scaling,
        "threaded": threaded,
        "headline_scaling": headline,
        "history": _merge_history(path, headline, clock),
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def _format_report(report: dict) -> str:
    lines = [
        "Serving under overload — sharded scheduler, admission + brownout",
        (
            f"  headline: shards=4 vs shards=1 throughput x"
            f"{report['headline_scaling']:.2f}"
            if report["headline_scaling"]
            else "  headline: scaling not measured"
        ),
        f"  {'cell':<20} {'p50':>8} {'p99':>8} {'served':>7} "
        f"{'stale':>6} {'shed':>5} {'widened':>8}",
    ]
    for name, cell in sorted(report["matrix"].items()):
        lines.append(
            f"  {name:<20} {cell['p50_latency_s']*1000:>6.0f}ms "
            f"{cell['p99_latency_s']*1000:>6.0f}ms {cell['served']:>7} "
            f"{cell['outcomes'].get('stale', 0):>6} {cell['shed']:>5} "
            f"{cell['widened']:>8}"
        )
    for name, run in sorted(report["scaling"]["runs"].items()):
        lines.append(
            f"  scaling {name:<12} {run['served_per_s']:>8.1f} served/s "
            f"(p99 {run['p99_latency_s']*1000:.0f}ms, shed {run['shed']})"
        )
    threaded = report["threaded"]
    lines.append(
        f"  threaded check      {threaded['served_per_s']:>8.1f} served/s "
        f"wall-clock, accounting exact={threaded['accounting_exact']}"
    )
    return "\n".join(lines)


def main(config: HarnessConfig | None = None) -> str:
    report = run_serving(config)
    text = _format_report(report)
    print(text)
    return text


if __name__ == "__main__":
    main()
