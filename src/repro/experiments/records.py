"""Experiment result persistence and regression checks.

Figures are only reproducible if their numbers survive the session:
this module serialises :class:`~repro.experiments.harness.MethodResult`
rows to JSON, reloads them, and — the part that keeps the reproduction
honest over time — verifies that a run still satisfies the paper's shape
invariants (who wins, who loses, and that the reference sits at 100 %).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .harness import MethodResult
from .metrics import MeanStd

FORMAT_MARKER = "repro-experiment-results"


def results_to_json(results: Sequence[MethodResult], experiment: str) -> dict:
    return {
        "format": FORMAT_MARKER,
        "version": 1,
        "experiment": experiment,
        "rows": [
            {
                "dataset": r.dataset,
                "method": r.method,
                "ft_ms": {"mean": r.ft_ms.mean, "std": r.ft_ms.std, "count": r.ft_ms.count},
                "sc_pct": {
                    "mean": r.sc_pct.mean,
                    "std": r.sc_pct.std,
                    "count": r.sc_pct.count,
                },
                "contributions": list(r.contributions),
            }
            for r in results
        ],
    }


def results_from_json(payload: dict) -> tuple[str, list[MethodResult]]:
    if payload.get("format") != FORMAT_MARKER:
        raise ValueError("not a repro experiment-results document")
    rows = [
        MethodResult(
            method=row["method"],
            dataset=row["dataset"],
            ft_ms=MeanStd(**row["ft_ms"]),
            sc_pct=MeanStd(**row["sc_pct"]),
            contributions=tuple(row["contributions"]),
        )
        for row in payload["rows"]
    ]
    return payload["experiment"], rows


def save_results(results: Sequence[MethodResult], experiment: str, path: str | Path) -> None:
    """Write results to ``path`` as a versioned JSON document."""
    Path(path).write_text(json.dumps(results_to_json(results, experiment), indent=2))


def load_results(path: str | Path) -> tuple[str, list[MethodResult]]:
    """Read ``(experiment, results)`` back from ``path``."""
    return results_from_json(json.loads(Path(path).read_text()))


@dataclass(frozen=True, slots=True)
class ShapeViolation:
    """One broken invariant in a result set."""

    dataset: str
    description: str


def check_figure6_shape(
    results: Sequence[MethodResult],
    reference: str = "brute-force",
    sc_tolerance: float = 2.0,
) -> list[ShapeViolation]:
    """Verify a Figure-6-style run against the paper's claims.

    Per dataset: the reference scores 100 %, EcoCharge lands within a few
    points of it and above the quadtree, the quadtree beats Random on SC,
    Random is the fastest, and the reference is the slowest accurate
    method.  Returns the violations (empty list = shape holds).
    """
    violations: list[ShapeViolation] = []
    datasets = {r.dataset for r in results}
    for dataset in sorted(datasets):
        rows = {r.method: r for r in results if r.dataset == dataset}
        required = {reference, "index-quadtree", "random", "ecocharge"}
        missing = required - set(rows)
        if missing:
            violations.append(
                ShapeViolation(dataset, f"missing methods: {sorted(missing)}")
            )
            continue
        ref, quad = rows[reference], rows["index-quadtree"]
        rand, eco = rows["random"], rows["ecocharge"]
        if abs(ref.sc_pct.mean - 100.0) > 1e-6:
            violations.append(
                ShapeViolation(dataset, f"reference SC is {ref.sc_pct.mean}, not 100")
            )
        if eco.sc_pct.mean < 100.0 - 5.0:
            violations.append(
                ShapeViolation(dataset, f"ecocharge SC {eco.sc_pct.mean:.1f} < 95")
            )
        if not eco.sc_pct.mean > quad.sc_pct.mean + sc_tolerance:
            violations.append(
                ShapeViolation(
                    dataset,
                    f"ecocharge SC {eco.sc_pct.mean:.1f} does not clearly beat "
                    f"quadtree {quad.sc_pct.mean:.1f}",
                )
            )
        if not quad.sc_pct.mean > rand.sc_pct.mean + sc_tolerance:
            violations.append(
                ShapeViolation(
                    dataset,
                    f"quadtree SC {quad.sc_pct.mean:.1f} does not clearly beat "
                    f"random {rand.sc_pct.mean:.1f}",
                )
            )
        if rand.ft_ms.mean >= min(ref.ft_ms.mean, quad.ft_ms.mean, eco.ft_ms.mean):
            violations.append(ShapeViolation(dataset, "random is not the fastest"))
        if ref.ft_ms.mean <= max(quad.ft_ms.mean, eco.ft_ms.mean):
            violations.append(
                ShapeViolation(dataset, "brute force is not the slowest")
            )
    return violations


def compare_runs(
    old: Sequence[MethodResult],
    new: Sequence[MethodResult],
    sc_regression_pts: float = 3.0,
) -> list[ShapeViolation]:
    """Flag SC regressions between two runs of the same experiment.

    Timing is machine-dependent, so only quality (SC) is compared: a drop
    larger than ``sc_regression_pts`` points for any (dataset, method)
    pair is flagged.
    """
    old_by_key = {(r.dataset, r.method): r for r in old}
    violations: list[ShapeViolation] = []
    for row in new:
        previous = old_by_key.get((row.dataset, row.method))
        if previous is None:
            continue
        drop = previous.sc_pct.mean - row.sc_pct.mean
        if drop > sc_regression_pts:
            violations.append(
                ShapeViolation(
                    row.dataset,
                    f"{row.method}: SC dropped {drop:.1f} points "
                    f"({previous.sc_pct.mean:.1f} → {row.sc_pct.mean:.1f})",
                )
            )
    return violations
