"""Experiment harness: repetition management and method comparison.

Reproduces the paper's measurement protocol: for every query point (trip
segment), each method produces an Offering Table while its CPU time is
measured; selections are graded against ground truth, with Brute Force
defining 100 % SC; means and standard deviations are taken over ~10
repetitions (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.baselines import BruteForceRanker, QuadtreeRanker, RandomRanker
from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
from ..core.environment import ChargingEnvironment
from ..core.offering import OfferingTable
from ..core.ranking import SegmentRanker
from ..core.scoring import Weights
from ..network.path import Trip
from ..trajectories.datasets import Workload, load_workload
from .metrics import (
    MeanStd,
    Stopwatch,
    component_contributions,
    oracle_truths_for_tables,
    sc_percent,
    true_sc_of_selection,
)


@dataclass(frozen=True, slots=True)
class HarnessConfig:
    """Scale knobs for an experiment run.

    Defaults are sized for interactive runs; the committed EXPERIMENTS.md
    numbers use ``repetitions=10`` to match the paper's protocol.
    """

    trips_per_dataset: int = 4
    repetitions: int = 3
    k: int = 5
    segment_km: float = 4.0
    dataset_scale: float = 1.0
    seed: int = 0
    #: Run the perf driver's extra profiled warm pass and print the top
    #: self-time spans per scenario (``--profile``).  Ignored by the
    #: other drivers.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.trips_per_dataset < 1:
            raise ValueError("trips_per_dataset must be positive")
        if self.repetitions < 1:
            raise ValueError("repetitions must be positive")
        if self.k < 1:
            raise ValueError("k must be positive")


@dataclass
class MethodResult:
    """Aggregated outcome of one method on one workload."""

    method: str
    dataset: str
    ft_ms: MeanStd
    sc_pct: MeanStd
    contributions: tuple[float, float, float] = (0.0, 0.0, 0.0)
    extra: dict[str, float] = field(default_factory=dict)


RankerFactory = Callable[[ChargingEnvironment], SegmentRanker]


def default_rankers(
    k: int, weights: Weights, radius_km: float = 50.0, range_km: float = 5.0
) -> dict[str, RankerFactory]:
    """The paper's four methods (Figure 6), ready to instantiate."""
    return {
        "brute-force": lambda env: BruteForceRanker(env, k=k, weights=weights),
        "index-quadtree": lambda env: QuadtreeRanker(env, k=k, weights=weights),
        "random": lambda env: RandomRanker(env, k=k, radius_km=radius_km),
        "ecocharge": lambda env: EcoChargeRanker(
            env,
            EcoChargeConfig(
                k=k, radius_km=radius_km, range_km=range_km, weights=weights
            ),
        ),
    }


def ecocharge_factory(
    k: int, weights: Weights, radius_km: float, range_km: float
) -> RankerFactory:
    """An EcoCharge variant for the R-opt / Q-opt sweeps."""
    return lambda env: EcoChargeRanker(
        env,
        EcoChargeConfig(k=k, radius_km=radius_km, range_km=range_km, weights=weights),
    )


@dataclass
class _TripObservation:
    """Raw per-trip measurements before aggregation."""

    ft_ms: list[float] = field(default_factory=list)
    true_sc: list[float] = field(default_factory=list)
    contributions: list[tuple[float, float, float]] = field(default_factory=list)


def compare_methods(
    workload: Workload,
    factories: dict[str, RankerFactory],
    config: HarnessConfig,
    grading_weights: Weights | None = None,
    reference: str = "brute-force",
) -> list[MethodResult]:
    """Run every method over the workload's trips and grade them.

    ``grading_weights`` is the weight vector used for the ground-truth SC
    (the ablation grades every configuration with equal weights);
    ``reference`` names the method whose SC defines 100 % — it must be one
    of the factories.  Per repetition and per trip, each segment yields
    one timed ranking call per method.
    """
    if reference not in factories:
        raise ValueError(f"reference method {reference!r} not among factories")
    grading = grading_weights if grading_weights is not None else Weights.equal()
    environment = workload.environment
    trips = _select_trips(workload, config)

    observations: dict[str, _TripObservation] = {
        name: _TripObservation() for name in factories
    }

    for __ in range(config.repetitions):
        rankers = {name: factory(environment) for name, factory in factories.items()}
        for trip in trips:
            _observe_trip(environment, trip, rankers, config, grading, observations, reference)

    results = []
    for name in factories:
        obs = observations[name]
        ref_obs = observations[reference]
        pct = [
            sc_percent(sc, ref)
            for sc, ref in zip(obs.true_sc, ref_obs.true_sc)
            if ref > 0
        ]
        contributions = _mean_contributions(obs.contributions)
        results.append(
            MethodResult(
                method=name,
                dataset=workload.name,
                ft_ms=MeanStd.of(obs.ft_ms),
                sc_pct=MeanStd.of(pct),
                contributions=contributions,
            )
        )
    return results


def _select_trips(workload: Workload, config: HarnessConfig) -> list[Trip]:
    import numpy as np

    trips = workload.trips
    if len(trips) <= config.trips_per_dataset:
        return list(trips)
    rng = np.random.default_rng(config.seed)
    picks = sorted(rng.choice(len(trips), size=config.trips_per_dataset, replace=False))
    return [trips[i] for i in picks]


def _observe_trip(
    environment: ChargingEnvironment,
    trip: Trip,
    rankers: dict[str, SegmentRanker],
    config: HarnessConfig,
    grading: Weights,
    observations: dict[str, _TripObservation],
    reference: str,
) -> None:
    segments = trip.segments(config.segment_km)
    etas = environment.eta.segment_etas(trip, segment_km=config.segment_km)
    for ranker in rankers.values():
        ranker.reset()

    for i, segment in enumerate(segments):
        next_segment = segments[i + 1] if i + 1 < len(segments) else None
        eta_h = etas[i].expected_h
        tables: dict[str, OfferingTable] = {}
        for name, ranker in rankers.items():
            watch = Stopwatch()
            with watch.lap():
                table = ranker.rank_segment(
                    trip, segment, eta_h=eta_h, now_h=trip.departure_time_h,
                    next_segment=next_segment,
                )
            tables[name] = table
            observations[name].ft_ms.append(watch.laps_ms[0])

        truths = oracle_truths_for_tables(
            environment, segment, tables.values(), eta_h, next_segment
        )
        for name, table in tables.items():
            obs = observations[name]
            obs.true_sc.append(
                true_sc_of_selection(truths, table.charger_ids(), grading)
            )
            obs.contributions.append(
                component_contributions(truths, table.charger_ids())
            )


def _mean_contributions(
    rows: Sequence[tuple[float, float, float]],
) -> tuple[float, float, float]:
    if not rows:
        return (0.0, 0.0, 0.0)
    n = len(rows)
    return (
        sum(r[0] for r in rows) / n,
        sum(r[1] for r in rows) / n,
        sum(r[2] for r in rows) / n,
    )


def load_workloads(
    names: Sequence[str], config: HarnessConfig
) -> dict[str, Workload]:
    """Materialise the requested datasets at the configured scale."""
    return {
        name: load_workload(name, scale=config.dataset_scale, environment_seed=config.seed)
        for name in names
    }
