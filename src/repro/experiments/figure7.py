"""Figure 7 — R-opt Evaluation.

EcoCharge under different user-configured radius values R in
{25, 50, 75} km (Q fixed at 5 km): smaller R means a smaller candidate
pool and faster tables but lower SC; larger R approaches the exhaustive
search in quality at higher cost.
"""

from __future__ import annotations

from typing import Sequence

from ..core.baselines import BruteForceRanker
from ..core.scoring import Weights
from ..trajectories.datasets import DATASET_ORDER
from .harness import (
    HarnessConfig,
    MethodResult,
    compare_methods,
    ecocharge_factory,
    load_workloads,
)
from .report import format_results_table

RADII_KM = (25.0, 50.0, 75.0)
RANGE_KM = 5.0


def run_figure7(
    config: HarnessConfig | None = None,
    datasets: Sequence[str] = DATASET_ORDER,
    radii_km: Sequence[float] = RADII_KM,
) -> list[MethodResult]:
    """EcoCharge R sweep; Brute Force runs as the hidden 100 % reference."""
    config = config if config is not None else HarnessConfig()
    weights = Weights.equal()
    factories = {
        "brute-force": lambda env: BruteForceRanker(env, k=config.k, weights=weights)
    }
    for radius in radii_km:
        factories[f"ecocharge R={radius:g}km"] = ecocharge_factory(
            k=config.k, weights=weights, radius_km=radius, range_km=RANGE_KM
        )
    workloads = load_workloads(datasets, config)
    results: list[MethodResult] = []
    for name in datasets:
        rows = compare_methods(workloads[name], factories, config)
        results.extend(r for r in rows if r.method != "brute-force")
    return results


def main(config: HarnessConfig | None = None) -> str:
    results = run_figure7(config)
    report = format_results_table(
        results, "Figure 7 — R-opt Evaluation (EcoCharge, Q = 5 km)"
    )
    print(report)
    return report


if __name__ == "__main__":
    main()
