"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments figure6 [--trips N] [--reps N] [--scale F]
    python -m repro.experiments all --reps 10        # the full protocol
    ecocharge-experiments figure9                    # installed script
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import (
    durability_report,
    figure6,
    figure7,
    figure8,
    figure9,
    incident_report,
    modes_report,
    observability_report,
    perf_trajectory,
    resilience_report,
    serving_report,
    slo_report,
)
from .harness import HarnessConfig

_DRIVERS: dict[str, Callable[[HarnessConfig], str]] = {
    "durability": durability_report.main,
    "figure6": figure6.main,
    "figure7": figure7.main,
    "figure8": figure8.main,
    "figure9": figure9.main,
    "incidents": incident_report.main,
    "modes": modes_report.main,
    "observability": observability_report.main,
    "perf": perf_trajectory.main,
    "resilience": resilience_report.main,
    "serving": serving_report.main,
    "slo": slo_report.main,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the EcoCharge paper's evaluation figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_DRIVERS) + ["all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--trips", type=int, default=4, help="trips sampled per dataset (default 4)"
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="repetitions; the paper uses ~10 (default 3)"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor for charger/trajectory counts (default 1.0)",
    )
    parser.add_argument("--k", type=int, default=5, help="top-k table size (default 5)")
    parser.add_argument("--seed", type=int, default=0, help="harness seed (default 0)")
    parser.add_argument(
        "--profile",
        action="store_true",
        help="perf driver: re-serve each scenario's warm pass under a live "
        "span tracer and print the top self-time spans",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    config = HarnessConfig(
        trips_per_dataset=args.trips,
        repetitions=args.reps,
        k=args.k,
        dataset_scale=args.scale,
        seed=args.seed,
        profile=args.profile,
    )
    names = sorted(_DRIVERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _DRIVERS[name](config)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
