"""Durability experiment: recovery latency versus cold restart.

Not a figure in the paper, which assumes the serving process never dies;
this driver quantifies the durability tier's value proposition.  For
every dataset and both distance-engine backends it (a) runs the
crash-chaos scenario — every named crash point, bitwise replay check,
accounting reconciliation — and (b) times how long a crashed session
takes to *resume* (snapshot load + journal replay + remaining segments)
against a *cold restart* (re-ranking the whole trip from scratch).

The driver exits non-zero on any replay divergence or accounting
failure, which is what the ``recovery-chaos`` CI job keys off.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..core.ecocharge import EcoChargeConfig
from ..durability import DurabilityConfig
from ..observability.clock import SYSTEM_CLOCK, Clock
from ..resilience import CrashPoint, FaultInjector, SessionCrash
from ..server.eis import EcoChargeInformationServer
from ..server.sessions import DurableSessionService
from ..simulation.scenarios import CrashChaosSpec, run_crash_chaos
from ..trajectories.datasets import DATASET_ORDER
from .harness import HarnessConfig, load_workloads

#: Both shortest-path backends must satisfy the replay guarantee.
ENGINES: tuple[str, ...] = ("dijkstra", "ch")


@dataclass(frozen=True)
class DurabilityRow:
    """One (dataset, engine) cell of the durability report."""

    dataset: str
    engine: str
    sessions_crashed: int
    sessions_recovered: int
    torn_lines_discarded: int
    snapshots_loaded: int
    records_replayed: int
    replay_divergences: int
    accounting_failures: int
    resume_ms: float
    cold_restart_ms: float

    @property
    def speedup(self) -> float:
        """Cold-restart time over resume time (higher is better)."""
        return self.cold_restart_ms / self.resume_ms if self.resume_ms else 0.0


def _time_recovery(
    workload,
    trip,
    config: EcoChargeConfig,
    root: Path,
    reps: int,
    clock: Clock = SYSTEM_CLOCK,
) -> tuple[float, float]:
    """(mean resume ms, mean cold-restart ms) for one crashed trip."""
    durability = DurabilityConfig(snapshot_every=2, fsync=False)
    resume_samples: list[float] = []
    cold_samples: list[float] = []
    # Crash three quarters of the way through the trip: the realistic
    # long-trip scenario where recovery has real work to save.
    n_segments = len(trip.segments(config.segment_km))
    crash_at = max(2, (3 * n_segments) // 4)
    for rep in range(reps):
        session_id = f"latency-{config.engine or 'default'}-{rep}"
        injector = FaultInjector(
            seed=rep, crash_plan=[CrashPoint("mid-segment", at_occurrence=crash_at)]
        )
        server = EcoChargeInformationServer(workload.environment, injector=injector)
        service = DurableSessionService(server, root, durability)
        session = service.open(session_id, trip, config)
        crash: SessionCrash | None = None
        try:
            session.run()
        except SessionCrash as fired:
            crash = fired
        assert crash is not None, "crash plan must fire before the trip ends"
        # Warm path: restore snapshot + journal tail, finish the trip.
        server2 = EcoChargeInformationServer(workload.environment)
        service2 = DurableSessionService(server2, root, durability)
        start = clock.monotonic()
        run = service2.resume_and_finish(session_id)
        resume_samples.append((clock.monotonic() - start) * 1e3)
        # Cold path: a restart that lost the journal re-ranks the whole
        # trip (still durably — same guarantee, none of the saved work).
        server3 = EcoChargeInformationServer(workload.environment)
        service3 = DurableSessionService(server3, root, durability)
        start = clock.monotonic()
        cold = service3.rank_trip_durably(f"{session_id}-cold", trip, config)
        cold_samples.append((clock.monotonic() - start) * 1e3)
        assert len(run.tables) == len(cold.tables)
    return (
        sum(resume_samples) / len(resume_samples),
        sum(cold_samples) / len(cold_samples),
    )


def run_durability(
    config: HarnessConfig | None = None,
    datasets: Sequence[str] = DATASET_ORDER,
    engines: Sequence[str] = ENGINES,
) -> list[DurabilityRow]:
    """Crash-chaos every dataset on every engine; time recovery paths."""
    config = config if config is not None else HarnessConfig()
    workloads = load_workloads(datasets, config)
    rows: list[DurabilityRow] = []
    for name in datasets:
        workload = workloads[name]
        trip = workload.trips[0]
        for engine in engines:
            eco = EcoChargeConfig(k=config.k, engine=engine)
            root = Path(tempfile.mkdtemp(prefix=f"durability-{name}-{engine}-"))
            spec = CrashChaosSpec(
                fleet_size=min(2, config.trips_per_dataset),
                k=config.k,
                engine=engine,
                seed=config.seed,
            )
            chaos = run_crash_chaos(workload, spec, root=root / "chaos")
            resume_ms, cold_ms = _time_recovery(
                workload, trip, eco, root / "latency", reps=config.repetitions
            )
            rows.append(
                DurabilityRow(
                    dataset=name,
                    engine=engine,
                    sessions_crashed=chaos.sessions_crashed,
                    sessions_recovered=chaos.sessions_recovered,
                    torn_lines_discarded=chaos.torn_lines_discarded,
                    snapshots_loaded=chaos.snapshots_loaded,
                    records_replayed=chaos.records_replayed,
                    replay_divergences=chaos.replay_divergences,
                    accounting_failures=chaos.accounting_failures,
                    resume_ms=resume_ms,
                    cold_restart_ms=cold_ms,
                )
            )
    return rows


def main(config: HarnessConfig | None = None) -> str:
    rows = run_durability(config)
    lines = [
        "Durability — crash-chaos replay fidelity and recovery latency "
        "(journal + snapshot vs cold restart)",
        "=" * 100,
        (
            f"{'dataset':<12}{'engine':>9}{'crashed':>9}{'recovered':>10}"
            f"{'torn':>6}{'snap':>6}{'replayed':>9}{'diverged':>9}"
            f"{'books':>7}{'resume ms':>11}{'cold ms':>9}{'speedup':>9}"
        ),
        "-" * 100,
    ]
    divergences = 0
    accounting_failures = 0
    for row in rows:
        divergences += row.replay_divergences
        accounting_failures += row.accounting_failures
        lines.append(
            f"{row.dataset:<12}{row.engine:>9}{row.sessions_crashed:>9}"
            f"{row.sessions_recovered:>10}{row.torn_lines_discarded:>6}"
            f"{row.snapshots_loaded:>6}{row.records_replayed:>9}"
            f"{row.replay_divergences:>9}"
            f"{'ok' if row.accounting_failures == 0 else 'NO':>7}"
            f"{row.resume_ms:>11.1f}{row.cold_restart_ms:>9.1f}"
            f"{row.speedup:>8.1f}x"
        )
    lines.append("-" * 100)
    lines.append(
        "diverged = recovered runs whose Offering Tables were not bitwise "
        "identical to an uninterrupted baseline; torn = checksummed journal "
        "lines detected and discarded at recovery.  Resume restores a "
        "snapshot and replays the journal tail, so it only re-ranks the "
        "segments the crash actually lost."
    )
    text = "\n".join(lines)
    print(text)
    if divergences or accounting_failures:
        raise SystemExit(
            f"durability: {divergences} replay divergence(s), "
            f"{accounting_failures} accounting failure(s)"
        )
    return text
