"""Performance trajectory — Dijkstra vs contraction-hierarchy serving.

A routing-dominated serving workload (continuous EcoCharge ranking over
several trips sharing one :class:`~repro.network.distance_engine.DistanceEngine`)
is priced under both engine backends and the speedup is recorded to
``BENCH_perf.json`` at the working directory, together with a bounded
history of previous runs so the trajectory of the number across commits
stays visible.

The two backends must agree *bitwise* on every delivered offering-table
interval (the :mod:`~repro.network.distance_engine` quantisation
contract); any disagreement aborts the run with a non-zero exit, so the
benchmark doubles as an end-to-end equivalence check (the CI
``perf-smoke`` job runs it at a reduced scale).

Timing protocol: the CH topology is preprocessed once per scenario
(metric-independent, reported as ``preprocess_s``); each repetition then
serves every trip cold (fresh engine caches, all customisations paid)
and again warm (same engine, caches hot).  The headline ``speedup`` is
cold Dijkstra time over cold CH time on the best scenario — the
steady-state serving comparison, with preprocessing reported alongside.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..observability.clock import SYSTEM_CLOCK, Clock, iso_utc

from ..chargers.plugshare import CatalogSpec, generate_catalog
from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
from ..core.environment import ChargingEnvironment
from ..core.ranking import run_over_trip
from ..network.builders import build_grid_network, build_radial_network
from ..network.contraction import ContractionHierarchy
from ..network.distance_engine import BACKENDS, DistanceEngine
from ..network.graph import RoadNetwork
from ..network.path import Trip
from .harness import HarnessConfig

#: Most recent runs kept in the persistent report.
HISTORY_LIMIT = 20

REPORT_FULL = "BENCH_perf.json"
REPORT_SMOKE = "BENCH_perf_smoke.json"


@dataclass(frozen=True, slots=True)
class PerfScenario:
    """One network + charger + trip workload shape."""

    name: str
    build: Callable[[], RoadNetwork]
    charger_count: int
    trip_count: int
    segment_km: float = 3.0
    radius_km: float = 60.0
    k: int = 5


def _grid(cols: int, rows: int) -> Callable[[], RoadNetwork]:
    return lambda: build_grid_network(cols, rows, block_km=1.0, speed_kmh=50.0)


def _radial(rings: int, spokes: int) -> Callable[[], RoadNetwork]:
    return lambda: build_radial_network(
        rings=rings, spokes=spokes, ring_gap_km=1.0, speed_kmh=50.0
    )


def full_scenarios() -> list[PerfScenario]:
    """The committed-report workloads, headline first."""
    return [
        PerfScenario("grid30-sparse", _grid(30, 30), charger_count=6, trip_count=6),
        PerfScenario("grid30-dense", _grid(30, 30), charger_count=12, trip_count=4),
        PerfScenario("radial16x48", _radial(16, 48), charger_count=8, trip_count=4),
    ]


def smoke_scenarios() -> list[PerfScenario]:
    """Tiny variants for CI: exercises both backends end to end."""
    return [
        PerfScenario("grid10-smoke", _grid(10, 10), charger_count=4, trip_count=2),
    ]


def _trips(network: RoadNetwork, count: int, segment_km: float) -> list[Trip]:
    """Deterministic far-apart origin/destination pairs across the network."""
    nodes = sorted(network.node_ids())
    n = len(nodes)
    pairs = [
        (nodes[0], nodes[-1]),
        (nodes[n // 4], nodes[3 * n // 4]),
        (nodes[n // 2], nodes[-1]),
        (nodes[0], nodes[2 * n // 3]),
        (nodes[n // 3], nodes[-1]),
        (nodes[n // 5], nodes[4 * n // 5]),
    ]
    trips = []
    for i, (src, dst) in enumerate(pairs[:count]):
        trips.append(Trip.route(network, src, dst, departure_time_h=8.0 + 0.35 * i))
    return trips


def _serve(
    environment: ChargingEnvironment,
    trips: list[Trip],
    scenario: PerfScenario,
) -> int:
    """One pass of the serving workload; returns segments ranked."""
    config = EcoChargeConfig(
        k=scenario.k,
        radius_km=scenario.radius_km,
        range_km=1.0,
        segment_km=scenario.segment_km,
    )
    ranker = EcoChargeRanker(environment, config)
    segments = 0
    for trip in trips:
        run_over_trip(ranker, environment, trip, segment_km=scenario.segment_km)
        segments += len(trip.segments(scenario.segment_km))
    return segments


def _measure_backend(
    scenario: PerfScenario,
    backend: str,
    repetitions: int,
    seed: int,
    hierarchy: ContractionHierarchy | None,
    clock: Clock = SYSTEM_CLOCK,
) -> dict:
    """Min-over-repetitions cold and warm serving times for one backend."""
    network = scenario.build()
    registry = generate_catalog(
        network, CatalogSpec(charger_count=scenario.charger_count, seed=7)
    )
    trips = _trips(network, scenario.trip_count, scenario.segment_km)
    cold_s = math.inf
    warm_s = math.inf
    segments = 0
    stats: dict[str, float] = {}
    for __ in range(max(1, repetitions)):
        engine = DistanceEngine(network, backend=backend, hierarchy=hierarchy)
        environment = ChargingEnvironment(network, registry, seed=seed, engine=engine)
        start = clock.monotonic()
        segments = _serve(environment, trips, scenario)
        cold_s = min(cold_s, clock.monotonic() - start)
        start = clock.monotonic()
        _serve(environment, trips, scenario)
        warm_s = min(warm_s, clock.monotonic() - start)
        stats = engine.stats.as_dict()
    return {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "segments": segments,
        "engine_stats": stats,
    }


def _check_backends_agree(scenario: PerfScenario, seed: int) -> None:
    """Abort (exit 1) unless both backends produce identical intervals."""
    network = scenario.build()
    registry = generate_catalog(
        network, CatalogSpec(charger_count=scenario.charger_count, seed=7)
    )
    trip = _trips(network, 1, scenario.segment_km)[0]
    segments = trip.segments(scenario.segment_km)
    probes = [segments[0], segments[len(segments) // 2]]
    estimates = {}
    for backend in BACKENDS:
        environment = ChargingEnvironment(network, registry, seed=seed, engine=backend)
        rows = []
        for i, segment in enumerate(probes):
            costs = environment.derouting.batch_estimate(
                segment,
                registry.all(),
                time_h=trip.departure_time_h + 0.2 * (i + 1),
                now_h=trip.departure_time_h,
            )
            rows.append(
                {
                    cid: (cost.hours.lo, cost.hours.hi, cost.normalised)
                    for cid, cost in costs.items()
                }
            )
        estimates[backend] = rows
    if estimates["dijkstra"] != estimates["ch"]:
        raise SystemExit(
            f"perf: backend mismatch on scenario {scenario.name!r} — "
            "'ch' and 'dijkstra' derouting intervals differ"
        )


def run_scenario(
    scenario: PerfScenario, repetitions: int, seed: int, clock: Clock = SYSTEM_CLOCK
) -> dict:
    """Measure one scenario under every backend and cross-check them."""
    _check_backends_agree(scenario, seed)
    network = scenario.build()
    start = clock.monotonic()
    hierarchy = ContractionHierarchy.build(network)
    preprocess_s = clock.monotonic() - start
    ch_stats = hierarchy.stats
    backends = {
        "dijkstra": _measure_backend(
            scenario, "dijkstra", repetitions, seed, None, clock=clock
        ),
        "ch": _measure_backend(scenario, "ch", repetitions, seed, hierarchy, clock=clock),
    }
    backends["ch"]["preprocess_s"] = round(preprocess_s, 4)
    dijkstra_cold = backends["dijkstra"]["cold_s"]
    ch_cold = backends["ch"]["cold_s"]
    return {
        "name": scenario.name,
        "nodes": network.node_count,
        "edges": network.edge_count,
        "chargers": scenario.charger_count,
        "trips": scenario.trip_count,
        "ch_shortcut_arcs": ch_stats.shortcut_arcs,
        "ch_triangles": ch_stats.triangles,
        "backends": backends,
        "speedup_cold": round(dijkstra_cold / ch_cold, 3) if ch_cold > 0 else None,
        "speedup_warm": (
            round(backends["dijkstra"]["warm_s"] / backends["ch"]["warm_s"], 3)
            if backends["ch"]["warm_s"] > 0
            else None
        ),
        "backends_agree": True,
    }


def _merge_history(
    path: Path, headline: float | None, clock: Clock = SYSTEM_CLOCK
) -> list[dict]:
    """Previous runs' headline numbers, oldest dropped past the limit.

    Entries are stamped from the injected clock — both as raw epoch
    seconds (``at``) and as an ISO-8601 UTC string (``at_iso``) so the
    committed history is human-readable and the stamping is testable
    with a :class:`~repro.observability.clock.SimulatedClock`.
    """
    history: list[dict] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = {}
        history = [h for h in previous.get("history", []) if isinstance(h, dict)]
    now_s = clock.now()
    history.append({"at": now_s, "at_iso": iso_utc(now_s), "speedup": headline})
    return history[-HISTORY_LIMIT:]


def run_perf(config: HarnessConfig | None = None, clock: Clock = SYSTEM_CLOCK) -> dict:
    """Run the benchmark suite and write the persistent JSON report."""
    config = config if config is not None else HarnessConfig()
    smoke = config.dataset_scale < 1.0
    scenarios = smoke_scenarios() if smoke else full_scenarios()
    rows = [
        run_scenario(scenario, repetitions=config.repetitions, seed=config.seed, clock=clock)
        for scenario in scenarios
    ]
    speedups = [row["speedup_cold"] for row in rows if row["speedup_cold"]]
    headline = max(speedups) if speedups else None
    path = Path.cwd() / (REPORT_SMOKE if smoke else REPORT_FULL)
    report = {
        "report": "perf",
        "smoke": smoke,
        "repetitions": config.repetitions,
        "speedup": headline,
        "scenarios": {row["name"]: row for row in rows},
        "history": _merge_history(path, headline, clock=clock),
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def _format_report(report: dict) -> str:
    lines = [
        "Perf trajectory — engine backends on routing-dominated serving",
        f"  headline speedup (cold, best scenario): "
        f"{report['speedup']:.2f}x" if report["speedup"] else "  no speedup measured",
    ]
    header = (
        f"  {'scenario':<16} {'nodes':>6} {'dijkstra':>10} {'ch':>10} "
        f"{'prep':>7} {'cold x':>7} {'warm x':>7}"
    )
    lines.append(header)
    for name, row in sorted(report["scenarios"].items()):
        dijkstra = row["backends"]["dijkstra"]
        ch = row["backends"]["ch"]
        lines.append(
            f"  {name:<16} {row['nodes']:>6} {dijkstra['cold_s']*1000:>8.0f}ms "
            f"{ch['cold_s']*1000:>8.0f}ms {ch['preprocess_s']*1000:>5.0f}ms "
            f"{row['speedup_cold']:>6.2f}x {row['speedup_warm']:>6.2f}x"
        )
    return "\n".join(lines)


def main(config: HarnessConfig | None = None) -> str:
    report = run_perf(config)
    text = _format_report(report)
    print(text)
    return text


if __name__ == "__main__":
    main()
