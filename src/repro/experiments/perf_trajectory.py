"""Performance trajectory — Dijkstra vs contraction-hierarchy serving.

A routing-dominated serving workload (continuous EcoCharge ranking over
several trips sharing one :class:`~repro.network.distance_engine.DistanceEngine`)
is priced under both engine backends and the speedup is recorded to
``BENCH_perf.json`` at the working directory, together with a bounded
history of previous runs so the trajectory of the number across commits
stays visible.

The two backends must agree *bitwise* on every delivered offering-table
interval (the :mod:`~repro.network.distance_engine` quantisation
contract); any disagreement aborts the run with a non-zero exit, so the
benchmark doubles as an end-to-end equivalence check (the CI
``perf-smoke`` job runs it at a reduced scale).

Timing protocol: the CH topology is preprocessed once per scenario
(metric-independent, reported as ``preprocess_s``); each repetition then
serves every trip cold (fresh engine caches, all customisations paid)
and again warm (same engine, caches hot).  The headline ``speedup`` is
cold Dijkstra time over cold CH time on the best scenario — the
steady-state serving comparison, with preprocessing reported alongside.

The warm ratio is a first-class headline too: ``speedup_warm`` (the
*worst* scenario's warm ratio — a floor, not a best case) is recorded in
the bounded history next to the cold number, and the run exits non-zero
when any scenario's warm ratio falls below :data:`WARM_FLOOR` — CH must
never lose the warm path again (the regression this guards against was
``speedup_warm = 0.069``).  Engine statistics are reported *per phase*:
cold counters are snapshotted after the cold pass and the warm pass
reports deltas, so warm-path cache behaviour is visible instead of being
averaged into a meaningless cold+warm aggregate (the old 0.5 hit rate).

``--profile`` re-serves each scenario's warm pass once more under a live
span tracer (untimed, after measurement) and prints the top self-time
spans per scenario — the same view that located the warm-path repair.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..observability.clock import SYSTEM_CLOCK, Clock, iso_utc
from ..observability.recorder import NOOP_TELEMETRY, Telemetry

from ..chargers.plugshare import CatalogSpec, generate_catalog
from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
from ..core.environment import ChargingEnvironment
from ..core.ranking import run_over_trip
from ..network.builders import build_grid_network, build_radial_network
from ..network.contraction import ContractionHierarchy
from ..network.distance_engine import BACKENDS, DistanceEngine, EngineStats
from ..network.graph import RoadNetwork
from ..network.path import Trip
from .harness import HarnessConfig

#: Most recent runs kept in the persistent report.
HISTORY_LIMIT = 20

REPORT_FULL = "BENCH_perf.json"
REPORT_SMOKE = "BENCH_perf_smoke.json"

#: Minimum acceptable warm ratio (Dijkstra warm over CH warm) on every
#: full-scale scenario: warm CH serving must not be slower than warm
#: Dijkstra.  The smoke variant keeps a looser floor — its workload is a
#: 10x10 grid served in ~1 ms, where timer noise swamps the ratio — but
#: still catches an order-of-magnitude warm-path collapse.
WARM_FLOOR = 1.0
WARM_FLOOR_SMOKE = 0.33

#: Spans printed per scenario under ``--profile``.
PROFILE_TOP_K = 8


@dataclass(frozen=True, slots=True)
class PerfScenario:
    """One network + charger + trip workload shape."""

    name: str
    build: Callable[[], RoadNetwork]
    charger_count: int
    trip_count: int
    segment_km: float = 3.0
    radius_km: float = 60.0
    k: int = 5


def _grid(cols: int, rows: int) -> Callable[[], RoadNetwork]:
    return lambda: build_grid_network(cols, rows, block_km=1.0, speed_kmh=50.0)


def _radial(rings: int, spokes: int) -> Callable[[], RoadNetwork]:
    return lambda: build_radial_network(
        rings=rings, spokes=spokes, ring_gap_km=1.0, speed_kmh=50.0
    )


def full_scenarios() -> list[PerfScenario]:
    """The committed-report workloads, headline first."""
    return [
        PerfScenario("grid30-sparse", _grid(30, 30), charger_count=6, trip_count=6),
        PerfScenario("grid30-dense", _grid(30, 30), charger_count=12, trip_count=4),
        PerfScenario("radial16x48", _radial(16, 48), charger_count=8, trip_count=4),
    ]


def smoke_scenarios() -> list[PerfScenario]:
    """Tiny variants for CI: exercises both backends end to end."""
    return [
        PerfScenario("grid10-smoke", _grid(10, 10), charger_count=4, trip_count=2),
    ]


def _trips(network: RoadNetwork, count: int, segment_km: float) -> list[Trip]:
    """Deterministic far-apart origin/destination pairs across the network."""
    nodes = sorted(network.node_ids())
    n = len(nodes)
    pairs = [
        (nodes[0], nodes[-1]),
        (nodes[n // 4], nodes[3 * n // 4]),
        (nodes[n // 2], nodes[-1]),
        (nodes[0], nodes[2 * n // 3]),
        (nodes[n // 3], nodes[-1]),
        (nodes[n // 5], nodes[4 * n // 5]),
    ]
    trips = []
    for i, (src, dst) in enumerate(pairs[:count]):
        trips.append(Trip.route(network, src, dst, departure_time_h=8.0 + 0.35 * i))
    return trips


def _serve(
    environment: ChargingEnvironment,
    trips: list[Trip],
    scenario: PerfScenario,
) -> int:
    """One pass of the serving workload; returns segments ranked."""
    config = EcoChargeConfig(
        k=scenario.k,
        radius_km=scenario.radius_km,
        range_km=1.0,
        segment_km=scenario.segment_km,
    )
    ranker = EcoChargeRanker(environment, config)
    segments = 0
    for trip in trips:
        run_over_trip(ranker, environment, trip, segment_km=scenario.segment_km)
        segments += len(trip.segments(scenario.segment_km))
    return segments


def _phase_stats(counters: dict[str, float]) -> dict[str, float]:
    """Derived rates for one phase's counter deltas (mirrors
    :meth:`EngineStats.as_dict`, but over a single phase)."""
    out = dict(counters)
    hits, misses = counters["cache_hits"], counters["cache_misses"]
    out["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
    pair_hits, pair_misses = counters["pair_hits"], counters["pair_misses"]
    out["pair_hit_rate"] = (
        pair_hits / (pair_hits + pair_misses) if pair_hits + pair_misses else 0.0
    )
    return out


def _measure_backend(
    scenario: PerfScenario,
    backend: str,
    repetitions: int,
    seed: int,
    hierarchy: ContractionHierarchy | None,
    clock: Clock = SYSTEM_CLOCK,
    profile: bool = False,
) -> dict:
    """Min-over-repetitions cold and warm serving times for one backend.

    Engine statistics are split per phase: the cold counters are
    snapshotted after the cold pass and the warm pass reports *deltas*,
    so each phase's hit rate reflects that phase alone.  (Reading the
    counters once after both passes — the old protocol — averaged a
    0%-hit cold pass with a ~100%-hit warm pass into a meaningless 0.5.)
    """
    network = scenario.build()
    registry = generate_catalog(
        network, CatalogSpec(charger_count=scenario.charger_count, seed=7)
    )
    trips = _trips(network, scenario.trip_count, scenario.segment_km)
    cold_s = math.inf
    warm_s = math.inf
    segments = 0
    cold_stats: dict[str, float] = {}
    warm_stats: dict[str, float] = {}
    engine = None
    environment = None
    for __ in range(max(1, repetitions)):
        engine = DistanceEngine(network, backend=backend, hierarchy=hierarchy)
        environment = ChargingEnvironment(network, registry, seed=seed, engine=engine)
        start = clock.monotonic()
        segments = _serve(environment, trips, scenario)
        cold_s = min(cold_s, clock.monotonic() - start)
        cold_counters = {
            name: getattr(engine.stats, name) for name in EngineStats.COUNTER_FIELDS
        }
        start = clock.monotonic()
        _serve(environment, trips, scenario)
        warm_s = min(warm_s, clock.monotonic() - start)
        warm_counters = {
            name: getattr(engine.stats, name) - cold_counters[name]
            for name in EngineStats.COUNTER_FIELDS
        }
        cold_stats = _phase_stats(cold_counters)
        warm_stats = _phase_stats(warm_counters)
    result = {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "segments": segments,
        "engine_stats": {"cold": cold_stats, "warm": warm_stats},
    }
    if profile and environment is not None:
        # One extra warm pass, untimed, under a live tracer — profiling
        # overhead must not contaminate the measured numbers above.
        telemetry = Telemetry.live(max_traces=256)
        environment.set_telemetry(telemetry)
        _serve(environment, trips, scenario)
        result["hot_spans"] = telemetry.tracer.hot_spans(PROFILE_TOP_K)
        environment.set_telemetry(NOOP_TELEMETRY)
    return result


def _check_backends_agree(scenario: PerfScenario, seed: int) -> None:
    """Abort (exit 1) unless both backends produce identical intervals."""
    network = scenario.build()
    registry = generate_catalog(
        network, CatalogSpec(charger_count=scenario.charger_count, seed=7)
    )
    trip = _trips(network, 1, scenario.segment_km)[0]
    segments = trip.segments(scenario.segment_km)
    probes = [segments[0], segments[len(segments) // 2]]
    estimates = {}
    for backend in BACKENDS:
        environment = ChargingEnvironment(network, registry, seed=seed, engine=backend)
        rows = []
        for i, segment in enumerate(probes):
            costs = environment.derouting.batch_estimate(
                segment,
                registry.all(),
                time_h=trip.departure_time_h + 0.2 * (i + 1),
                now_h=trip.departure_time_h,
            )
            rows.append(
                {
                    cid: (cost.hours.lo, cost.hours.hi, cost.normalised)
                    for cid, cost in costs.items()
                }
            )
        estimates[backend] = rows
    if estimates["dijkstra"] != estimates["ch"]:
        raise SystemExit(
            f"perf: backend mismatch on scenario {scenario.name!r} — "
            "'ch' and 'dijkstra' derouting intervals differ"
        )


def _check_scoring_agrees(scenario: PerfScenario, seed: int) -> None:
    """Abort (exit 1) unless the batch and scalar refinement pipelines
    deliver identical Offering Tables over a full trip — the vectorised
    scoring path's bitwise contract, enforced in the driver exactly like
    the backend-equality contract above."""
    network = scenario.build()
    registry = generate_catalog(
        network, CatalogSpec(charger_count=scenario.charger_count, seed=7)
    )
    trip = _trips(network, 1, scenario.segment_km)[0]
    tables = {}
    for scoring in ("scalar", "batch"):
        environment = ChargingEnvironment(network, registry, seed=seed)
        config = EcoChargeConfig(
            k=scenario.k,
            radius_km=scenario.radius_km,
            range_km=1.0,
            segment_km=scenario.segment_km,
            scoring=scoring,
        )
        ranker = EcoChargeRanker(environment, config)
        run = run_over_trip(ranker, environment, trip, segment_km=scenario.segment_km)
        tables[scoring] = run.tables
    if tables["scalar"] != tables["batch"]:
        raise SystemExit(
            f"perf: scoring mismatch on scenario {scenario.name!r} — "
            "'batch' and 'scalar' refinement tables differ"
        )


def run_scenario(
    scenario: PerfScenario,
    repetitions: int,
    seed: int,
    clock: Clock = SYSTEM_CLOCK,
    profile: bool = False,
) -> dict:
    """Measure one scenario under every backend and cross-check them."""
    _check_backends_agree(scenario, seed)
    _check_scoring_agrees(scenario, seed)
    network = scenario.build()
    start = clock.monotonic()
    hierarchy = ContractionHierarchy.build(network)
    preprocess_s = clock.monotonic() - start
    ch_stats = hierarchy.stats
    backends = {
        "dijkstra": _measure_backend(
            scenario, "dijkstra", repetitions, seed, None, clock=clock, profile=profile
        ),
        "ch": _measure_backend(
            scenario, "ch", repetitions, seed, hierarchy, clock=clock, profile=profile
        ),
    }
    backends["ch"]["preprocess_s"] = round(preprocess_s, 4)
    dijkstra_cold = backends["dijkstra"]["cold_s"]
    ch_cold = backends["ch"]["cold_s"]
    return {
        "name": scenario.name,
        "nodes": network.node_count,
        "edges": network.edge_count,
        "chargers": scenario.charger_count,
        "trips": scenario.trip_count,
        "ch_shortcut_arcs": ch_stats.shortcut_arcs,
        "ch_triangles": ch_stats.triangles,
        "backends": backends,
        "speedup_cold": round(dijkstra_cold / ch_cold, 3) if ch_cold > 0 else None,
        "speedup_warm": (
            round(backends["dijkstra"]["warm_s"] / backends["ch"]["warm_s"], 3)
            if backends["ch"]["warm_s"] > 0
            else None
        ),
        "backends_agree": True,
        "scoring_agree": True,
    }


def _merge_history(
    path: Path,
    headline: float | None,
    warm: float | None = None,
    clock: Clock = SYSTEM_CLOCK,
) -> list[dict]:
    """Previous runs' headline numbers, oldest dropped past the limit.

    Each entry records both headlines — ``speedup`` (cold, best
    scenario) and ``speedup_warm`` (warm, *worst* scenario) — so the
    warm trajectory is as visible across commits as the cold one.
    Entries are stamped from the injected clock — both as raw epoch
    seconds (``at``) and as an ISO-8601 UTC string (``at_iso``) so the
    committed history is human-readable and the stamping is testable
    with a :class:`~repro.observability.clock.SimulatedClock`.
    """
    history: list[dict] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = {}
        history = [h for h in previous.get("history", []) if isinstance(h, dict)]
    now_s = clock.now()
    history.append(
        {"at": now_s, "at_iso": iso_utc(now_s), "speedup": headline, "speedup_warm": warm}
    )
    return history[-HISTORY_LIMIT:]


def run_perf(config: HarnessConfig | None = None, clock: Clock = SYSTEM_CLOCK) -> dict:
    """Run the benchmark suite and write the persistent JSON report.

    Raises :class:`SystemExit` (non-zero) when any scenario's warm ratio
    falls below the floor — after writing the report, so the offending
    numbers are on disk for diagnosis.
    """
    config = config if config is not None else HarnessConfig()
    smoke = config.dataset_scale < 1.0
    scenarios = smoke_scenarios() if smoke else full_scenarios()
    rows = [
        run_scenario(
            scenario,
            repetitions=config.repetitions,
            seed=config.seed,
            clock=clock,
            profile=config.profile,
        )
        for scenario in scenarios
    ]
    speedups = [row["speedup_cold"] for row in rows if row["speedup_cold"]]
    headline = max(speedups) if speedups else None
    warms = [row["speedup_warm"] for row in rows if row["speedup_warm"]]
    headline_warm = min(warms) if warms else None
    floor = WARM_FLOOR_SMOKE if smoke else WARM_FLOOR
    path = Path.cwd() / (REPORT_SMOKE if smoke else REPORT_FULL)
    report = {
        "report": "perf",
        "smoke": smoke,
        "repetitions": config.repetitions,
        "speedup": headline,
        "speedup_warm": headline_warm,
        "warm_floor": floor,
        "scenarios": {row["name"]: row for row in rows},
        "history": _merge_history(path, headline, headline_warm, clock=clock),
    }
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    below = [
        (row["name"], row["speedup_warm"])
        for row in rows
        if row["speedup_warm"] is not None and row["speedup_warm"] < floor
    ]
    if below:
        detail = ", ".join(f"{name}: {ratio:.3f}x" for name, ratio in below)
        raise SystemExit(
            f"perf: warm speedup below the {floor:.2f}x floor — {detail} "
            f"(report written to {path.name})"
        )
    return report


def _format_report(report: dict) -> str:
    lines = [
        "Perf trajectory — engine backends on routing-dominated serving",
        f"  headline speedup (cold, best scenario): "
        f"{report['speedup']:.2f}x" if report["speedup"] else "  no speedup measured",
    ]
    if report.get("speedup_warm"):
        lines.append(
            f"  warm speedup (worst scenario): {report['speedup_warm']:.2f}x "
            f"(floor {report['warm_floor']:.2f}x)"
        )
    header = (
        f"  {'scenario':<16} {'nodes':>6} {'dijkstra':>10} {'ch':>10} "
        f"{'prep':>7} {'cold x':>7} {'warm x':>7}"
    )
    lines.append(header)
    for name, row in sorted(report["scenarios"].items()):
        dijkstra = row["backends"]["dijkstra"]
        ch = row["backends"]["ch"]
        lines.append(
            f"  {name:<16} {row['nodes']:>6} {dijkstra['cold_s']*1000:>8.0f}ms "
            f"{ch['cold_s']*1000:>8.0f}ms {ch['preprocess_s']*1000:>5.0f}ms "
            f"{row['speedup_cold']:>6.2f}x {row['speedup_warm']:>6.2f}x"
        )
    for name, row in sorted(report["scenarios"].items()):
        for backend in ("dijkstra", "ch"):
            spans = row["backends"][backend].get("hot_spans")
            if not spans:
                continue
            lines.append(f"  hot spans — {name} / {backend} (warm pass):")
            for span in spans:
                lines.append(
                    f"    {span['name']:<24} {span['count']:>6}x "
                    f"{span['self_time_s']*1000:>8.1f}ms self"
                )
    return "\n".join(lines)


def main(config: HarnessConfig | None = None) -> str:
    report = run_perf(config)
    text = _format_report(report)
    print(text)
    return text


if __name__ == "__main__":
    main()
