"""Top-level CLI: a zero-setup demonstration of the framework.

``python -m repro demo`` builds a workload, runs EcoCharge next to the
baselines on one trip, and prints what the driver would see plus a
shape summary.  ``python -m repro simulate`` runs the fleet simulator.
Figure regeneration lives under ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys

from .core.baselines import BruteForceRanker, QuadtreeRanker, RandomRanker
from .observability.clock import SYSTEM_CLOCK
from .core.ecocharge import EcoChargeConfig, EcoChargeRanker
from .core.ranking import run_over_trip
from .simulation.fleet import FleetSimulation, SimulationConfig
from .trajectories.datasets import DATASET_ORDER, load_workload
from .ui.sparkline import bar_chart
from .ui.table_render import render_offering_table, render_run_summary


def _demo(args: argparse.Namespace) -> int:
    workload = load_workload(args.dataset, scale=args.scale)
    print(f"Workload: {workload.summary()}\n")
    environment = workload.environment
    trip = workload.trips[args.trip % len(workload.trips)]
    print(f"Trip: {trip.length_km:.1f} km, {len(trip.segments())} segments\n")

    rankers = {
        "ecocharge": EcoChargeRanker(
            environment, EcoChargeConfig(k=args.k, radius_km=args.radius)
        ),
        "brute-force": BruteForceRanker(environment, k=args.k),
        "index-quadtree": QuadtreeRanker(environment, k=args.k),
        "random": RandomRanker(environment, k=args.k, radius_km=args.radius),
    }
    timings: dict[str, float] = {}
    runs = {}
    for name, ranker in rankers.items():
        start = SYSTEM_CLOCK.monotonic()
        runs[name] = run_over_trip(ranker, environment, trip)
        elapsed_ms = (SYSTEM_CLOCK.monotonic() - start) * 1000.0
        timings[name] = elapsed_ms / len(runs[name].tables)

    print("EcoCharge Offering Tables along the trip:")
    print(render_run_summary(runs["ecocharge"].tables))
    print()
    print(render_offering_table(runs["ecocharge"].tables[0], "First segment in detail"))
    print("\nPer-segment CPU time by method:")
    print(bar_chart({k: round(v, 2) for k, v in timings.items()}, unit=" ms"))
    return 0


def _simulate(args: argparse.Namespace) -> int:
    workload = load_workload(args.dataset, scale=args.scale)
    print(f"Workload: {workload.summary()}\n")
    config = SimulationConfig(
        ecocharge=EcoChargeConfig(k=args.k, radius_km=args.radius)
    )
    sim = FleetSimulation(workload.environment, workload.trips[: args.vehicles], config)
    report = sim.run()
    print(
        f"Simulated {len(report.outcomes)} vehicles until t={report.simulated_until_h:.2f} h: "
        f"{report.arrived} arrived, {report.total_clean_kwh:.1f} kWh clean energy "
        f"hoarded, {report.total_drive_kwh:.1f} kWh spent driving."
    )
    for outcome in report.outcomes:
        print(
            f"  vehicle {outcome.vehicle_id}: {outcome.phase.value:9s} "
            f"SoC {outcome.final_soc:4.0%}  clean +{outcome.clean_kwh:.1f} kWh  "
            f"offers {outcome.offers_generated}"
        )
    return 0


def _scenarios(args: argparse.Namespace) -> int:
    from .simulation.scenarios import SCENARIOS, run_scenario

    workload = load_workload(args.dataset, scale=args.scale)
    print(f"Workload: {workload.summary()}\n")
    print(f"{'scenario':<16}{'arrived':>8}{'clean kWh':>11}{'drive kWh':>11}{'queued':>8}")
    print("-" * 54)
    from .simulation.events import EventKind

    for name, scenario in SCENARIOS.items():
        report = run_scenario(
            scenario, workload, EcoChargeConfig(k=args.k, radius_km=args.radius)
        )
        print(
            f"{name:<16}{report.arrived:>5}/{len(report.outcomes):<2}"
            f"{report.total_clean_kwh:>11.1f}{report.total_drive_kwh:>11.1f}"
            f"{report.events.count(EventKind.WAITING_FOR_PLUG):>8}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="EcoCharge reproduction demo CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    handlers = (("demo", _demo), ("simulate", _simulate), ("scenarios", _scenarios))
    for name, handler in handlers:
        p = sub.add_parser(name)
        p.add_argument("--dataset", choices=DATASET_ORDER, default="oldenburg")
        p.add_argument("--scale", type=float, default=0.5)
        p.add_argument("--k", type=int, default=3)
        p.add_argument("--radius", type=float, default=25.0)
        p.set_defaults(handler=handler)
    sub.choices["demo"].add_argument("--trip", type=int, default=0)
    sub.choices["simulate"].add_argument("--vehicles", type=int, default=4)
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
