"""Durable continuous queries: journaling, snapshots, recovery, replay.

The durability tier makes a trip-long CkNN-EC session crash-safe:

* :mod:`.journal` — append-only, CRC-checksummed write-ahead log of
  per-segment ranking transactions (torn tails detected and discarded);
* :mod:`.snapshot` — atomic, versioned full-state snapshots that bound
  recovery latency;
* :mod:`.codecs` — explicit pickle-free codecs with hex-float encoding,
  so restored state is **bitwise** identical to what was persisted;
* :mod:`.session` — the ``open / checkpoint / resume / close`` manager
  tying it together, guaranteeing a recovered session ranks the
  remaining segments identically to an uninterrupted run;
* :mod:`.accounting` — reconciliation of journaled cache-event deltas
  against live :class:`~repro.core.caching.CacheStats` counters.

See ``docs/durability.md`` for the journal format and crash-point
matrix.
"""

from .accounting import CacheEventDelta, JournalCacheAccounting
from .codecs import (
    CODEC_VERSIONS,
    CachedSolutionCodec,
    CacheStatsCodec,
    CodecError,
    OfferingTableCodec,
    TripCodec,
    canonical_dumps,
    check_codec_versions,
    decode_float,
    encode_float,
)
from .journal import (
    CRASH_MID_APPEND,
    JOURNAL_VERSION,
    JournalCorruption,
    JournalReadResult,
    JournalRecord,
    SessionJournal,
    read_journal,
)
from .session import (
    CRASH_MID_SEGMENT,
    CRASH_POST_SNAPSHOT,
    CRASH_SEGMENT_START,
    DurabilityConfig,
    RankingSession,
    RecoveryInfo,
    SessionManager,
    SessionStateError,
    decode_config,
    encode_config,
)
from .snapshot import SNAPSHOT_VERSION, SessionSnapshot, load_snapshot, write_snapshot

__all__ = [
    "CODEC_VERSIONS",
    "CRASH_MID_APPEND",
    "CRASH_MID_SEGMENT",
    "CRASH_POST_SNAPSHOT",
    "CRASH_SEGMENT_START",
    "CacheEventDelta",
    "CacheStatsCodec",
    "CachedSolutionCodec",
    "CodecError",
    "DurabilityConfig",
    "JOURNAL_VERSION",
    "JournalCacheAccounting",
    "JournalCorruption",
    "JournalReadResult",
    "JournalRecord",
    "OfferingTableCodec",
    "RankingSession",
    "RecoveryInfo",
    "SNAPSHOT_VERSION",
    "SessionJournal",
    "SessionManager",
    "SessionSnapshot",
    "SessionStateError",
    "TripCodec",
    "canonical_dumps",
    "check_codec_versions",
    "decode_config",
    "decode_float",
    "encode_config",
    "encode_float",
    "load_snapshot",
    "read_journal",
    "write_snapshot",
]
