"""Periodic session snapshots: the fast-recovery half of the WAL pair.

A snapshot is the full durable state of a ranking session at one journal
sequence number: the trip, the config, every Offering Table emitted so
far, the dynamic-cache entry and statistics, and the position of the
next segment to rank.  Recovery loads the newest valid snapshot and
replays only the journal records *after* ``journal_seq`` — the shorter
the tail, the cheaper the restart.

Snapshots are written atomically (temp file + ``os.replace`` + fsync) so
a crash mid-snapshot leaves the previous snapshot intact, and carry the
codec-version map so an incompatible reader refuses them loudly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.caching import CachedSolution, CacheStats
from ..core.offering import OfferingTable
from .codecs import (
    CODEC_VERSIONS,
    CachedSolutionCodec,
    CacheStatsCodec,
    CodecError,
    OfferingTableCodec,
    canonical_dumps,
    check_codec_versions,
)

SNAPSHOT_VERSION = 1


@dataclass(frozen=True, slots=True)
class SessionSnapshot:
    """Everything needed to resume a session without its process memory."""

    session_id: str
    journal_seq: int
    next_position: int
    trip: dict[str, Any]
    config: dict[str, Any]
    tables: tuple[OfferingTable, ...] = ()
    failed_segments: tuple[int, ...] = ()
    cache_entry: CachedSolution | None = None
    cache_stats: CacheStats = field(default_factory=CacheStats)

    def encode(self) -> dict[str, Any]:
        return {
            "version": SNAPSHOT_VERSION,
            "codec_versions": dict(CODEC_VERSIONS),
            "session_id": self.session_id,
            "journal_seq": self.journal_seq,
            "next_position": self.next_position,
            "trip": self.trip,
            "config": self.config,
            "tables": [OfferingTableCodec.encode(table) for table in self.tables],
            "failed_segments": list(self.failed_segments),
            "cache_entry": (
                None
                if self.cache_entry is None
                else CachedSolutionCodec.encode(self.cache_entry)
            ),
            "cache_stats": CacheStatsCodec.encode(self.cache_stats),
        }

    @classmethod
    def decode(cls, payload: Any) -> "SessionSnapshot":
        if not isinstance(payload, dict):
            raise CodecError("snapshot: expected an object")
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise CodecError(
                f"snapshot: version {version!r} unsupported (this build reads "
                f"{SNAPSHOT_VERSION})"
            )
        check_codec_versions(payload.get("codec_versions", {}), "snapshot")
        entry = payload.get("cache_entry")
        tables = payload.get("tables")
        if not isinstance(tables, list):
            raise CodecError("snapshot: 'tables' must be a list")
        return cls(
            session_id=str(payload["session_id"]),
            journal_seq=int(payload["journal_seq"]),
            next_position=int(payload["next_position"]),
            trip=dict(payload["trip"]),
            config=dict(payload["config"]),
            tables=tuple(OfferingTableCodec.decode(table) for table in tables),
            failed_segments=tuple(
                int(index) for index in payload.get("failed_segments", [])
            ),
            cache_entry=None if entry is None else CachedSolutionCodec.decode(entry),
            cache_stats=CacheStatsCodec.decode(payload["cache_stats"]),
        )


def write_snapshot(path: Path | str, snapshot: SessionSnapshot, fsync: bool = True) -> None:
    """Atomically persist ``snapshot`` at ``path``.

    The temp-write + ``os.replace`` pair guarantees readers only ever see
    either the old snapshot or the new one, never a torn mixture — the
    journal tail covers whatever the snapshot does not.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    body = canonical_dumps(snapshot.encode())
    with open(tmp, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(body + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path: Path | str) -> SessionSnapshot | None:
    """The snapshot at ``path``, or None when absent or unreadable.

    An unreadable snapshot (torn before the atomic replace ever ran, or
    hand-corrupted) is treated as absent: recovery falls back to a full
    journal replay rather than trusting partial state.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    try:
        return SessionSnapshot.decode(payload)
    except (CodecError, KeyError, TypeError, ValueError):
        return None


__all__ = [
    "SNAPSHOT_VERSION",
    "SessionSnapshot",
    "load_snapshot",
    "write_snapshot",
]
