"""The write-ahead session journal: append-only, checksummed JSONL.

One line per committed ranking transaction.  Each record is the
canonical JSON of ``{"crc", "payload", "seq", "type"}`` where ``crc`` is
the CRC-32 of the record *without* the crc field — a torn write (the
process died mid-``write``) therefore fails either JSON parsing or the
checksum, and recovery discards the torn tail instead of silently
replaying half a transaction.

Append durability follows the classic WAL discipline: the line is
written, flushed, and fsynced before the transaction is considered
committed.  Truncation (after a snapshot folds a prefix of the journal
into itself) rewrites the file atomically via ``os.replace``; a crash
*between* snapshot and truncate leaves duplicate coverage, which
recovery resolves by skipping records the snapshot already contains
(``seq <= snapshot.journal_seq``).
"""

from __future__ import annotations

import io
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .codecs import CODEC_VERSIONS, canonical_dumps

if TYPE_CHECKING:
    from ..resilience.faults import FaultInjector

#: Format version of the journal container (record framing, not payload
#: codecs — those carry their own versions in the header record).
JOURNAL_VERSION = 1

#: Crash point fired inside :meth:`SessionJournal.append`, after a partial
#: line has reached the file — the torn-write scenario.
CRASH_MID_APPEND = "mid-journal-append"


class JournalCorruption(ValueError):
    """A journal whose *committed* prefix is unreadable (not a torn tail)."""


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One committed transaction line."""

    seq: int
    record_type: str
    payload: dict[str, Any]


@dataclass(frozen=True, slots=True)
class JournalReadResult:
    """The committed prefix of a journal plus torn-tail accounting."""

    records: tuple[JournalRecord, ...]
    torn_lines_discarded: int

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def _crc(body: str) -> str:
    return format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")


def _frame(seq: int, record_type: str, payload: dict[str, Any]) -> str:
    record = {"payload": payload, "seq": seq, "type": record_type}
    record["crc"] = _crc(canonical_dumps(record))
    return canonical_dumps(record)


def _parse_line(line: str) -> JournalRecord | None:
    """The record on ``line``, or None when the line is torn/corrupt."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    if not isinstance(crc, str) or crc != _crc(canonical_dumps(record)):
        return None
    seq = record.get("seq")
    record_type = record.get("type")
    payload = record.get("payload")
    if not isinstance(seq, int) or not isinstance(record_type, str):
        return None
    if not isinstance(payload, dict):
        return None
    return JournalRecord(seq=seq, record_type=record_type, payload=payload)


class SessionJournal:
    """Append-only transaction log for one ranking session.

    ``injector`` wires the deterministic crash plan in: an armed
    ``mid-journal-append`` point makes the *next* append write only half
    its line (flushed and fsynced, like a real torn page) before dying.
    """

    def __init__(
        self,
        path: Path | str,
        injector: "FaultInjector | None" = None,
        fsync: bool = True,
        start_seq: int = 0,
    ) -> None:
        self.path = Path(path)
        self._injector = injector
        self._fsync = fsync
        self._seq = start_seq
        self._file: io.TextIOWrapper | None = None

    @property
    def last_seq(self) -> int:
        return self._seq

    def _handle(self) -> io.TextIOWrapper:
        if self._file is None or self._file.closed:
            self._file = open(self.path, "a", encoding="utf-8", newline="\n")
        return self._file

    def _commit(self, handle: io.TextIOWrapper) -> None:
        handle.flush()
        if self._fsync:
            os.fsync(handle.fileno())

    def append(self, record_type: str, payload: dict[str, Any]) -> int:
        """Write one committed record; the assigned sequence number.

        The record only counts as committed once the full line (with its
        trailing newline) is flushed to disk — a crash before that point
        leaves a torn line that recovery detects and discards.
        """
        seq = self._seq + 1
        line = _frame(seq, record_type, payload)
        handle = self._handle()
        if self._injector is not None and self._injector.crash_next(CRASH_MID_APPEND):
            # Torn write: half the line reaches the disk, then the
            # process dies.  No newline, no full checksum — exactly the
            # state a power cut mid-write leaves behind.
            handle.write(line[: max(1, len(line) // 2)])
            self._commit(handle)
            self._injector.maybe_crash(CRASH_MID_APPEND)
        elif self._injector is not None:
            self._injector.maybe_crash(CRASH_MID_APPEND)
        handle.write(line + "\n")
        self._commit(handle)
        self._seq = seq
        return seq

    def truncate_through(self, seq: int) -> None:
        """Atomically drop every record with ``seq`` at or below ``seq``.

        Called after a snapshot has folded that prefix into itself.  The
        rewrite goes through a temp file + ``os.replace`` so the journal
        is never observable in a half-truncated state.
        """
        self.close()
        result = read_journal(self.path)
        kept = [r for r in result.records if r.seq > seq]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8", newline="\n") as handle:
            for record in kept:
                handle.write(_frame(record.seq, record.record_type, record.payload) + "\n")
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.close()
        self._file = None

    def header_payload(self) -> dict[str, Any]:
        """The standard ``session-open`` header payload (format versions)."""
        return {
            "journal_version": JOURNAL_VERSION,
            "codec_versions": dict(CODEC_VERSIONS),
        }


def read_journal(path: Path | str) -> JournalReadResult:
    """Parse a journal file, discarding the torn tail.

    The first unreadable line (bad JSON, bad checksum, bad framing, or a
    sequence number that does not continue the chain) marks the torn
    point: that line and everything after it are discarded — a torn
    record must never be silently replayed, and nothing after a tear can
    be trusted to have committed in order.
    """
    path = Path(path)
    if not path.exists():
        return JournalReadResult(records=(), torn_lines_discarded=0)
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    records: list[JournalRecord] = []
    expected_seq: int | None = None
    for i, line in enumerate(raw_lines):
        if not line.strip():
            continue
        record = _parse_line(line)
        if record is None:
            return JournalReadResult(
                records=tuple(records), torn_lines_discarded=len(raw_lines) - i
            )
        if expected_seq is not None and record.seq != expected_seq:
            return JournalReadResult(
                records=tuple(records), torn_lines_discarded=len(raw_lines) - i
            )
        records.append(record)
        expected_seq = record.seq + 1
    return JournalReadResult(records=tuple(records), torn_lines_discarded=0)
