"""Durable ranking sessions: open / checkpoint / resume / close.

A trip-long CkNN-EC session accumulates state across segments (the
dynamic cache, the emitted Offering Tables, the trip position).  This
module makes that state survive process death:

* every committed segment is one **journal transaction** (write-ahead,
  checksummed — :mod:`.journal`);
* every ``snapshot_every`` segments the full session state is
  **snapshotted** atomically and the journal prefix truncated
  (:mod:`.snapshot`);
* :meth:`SessionManager.resume` restores snapshot + journal tail and
  continues the trip, and the result is **provably identical**: because
  every estimator is a deterministic function of (seed, time, location)
  and the restored cache state is bitwise-exact (hex-float codecs), the
  recovered session's remaining rankings equal an uninterrupted run's
  bit for bit — asserted by ``tests/test_durability.py`` and the
  ``recovery-chaos`` CI job on both distance-engine backends.

Crash points (injected via
:class:`~repro.resilience.faults.CrashPoint`): ``segment-start``,
``mid-segment`` (ranked but not yet journaled), ``mid-journal-append``
(torn write), ``post-snapshot`` (snapshot written, journal not yet
truncated).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..core.caching import CacheState, CacheStats
from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
from ..core.offering import OfferingTable
from ..core.ranking import RankingRun, SegmentRanker, run_over_trip
from ..network.path import Trip, TripSegment
from ..resilience.errors import UpstreamError
from .accounting import CacheEventDelta, JournalCacheAccounting
from .codecs import (
    CachedSolutionCodec,
    CacheStatsCodec,
    CodecError,
    OfferingTableCodec,
    TripCodec,
    WeightsCodec,
    check_codec_versions,
    decode_float,
    encode_float,
)
from .journal import SessionJournal, read_journal
from .snapshot import SessionSnapshot, load_snapshot, write_snapshot

if TYPE_CHECKING:
    from ..core.environment import ChargingEnvironment
    from ..resilience.faults import FaultInjector

CRASH_SEGMENT_START = "segment-start"
CRASH_MID_SEGMENT = "mid-segment"
CRASH_POST_SNAPSHOT = "post-snapshot"

_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,80}$")


class SessionStateError(RuntimeError):
    """A session that cannot be opened or resumed (bad id, no journal)."""


@dataclass(frozen=True, slots=True)
class DurabilityConfig:
    """Knobs of the durability tier.

    ``snapshot_every`` trades write amplification against recovery
    latency: a snapshot costs one full-state write but caps the journal
    tail a resume must replay.  ``fsync=False`` is for tests only.
    """

    snapshot_every: int = 4
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")


@dataclass(frozen=True, slots=True)
class RecoveryInfo:
    """What :meth:`SessionManager.resume` found and rebuilt."""

    session_id: str
    snapshot_loaded: bool
    journal_records_replayed: int
    torn_lines_discarded: int
    segments_restored: int
    failed_restored: int
    next_position: int
    accounting_ok: bool
    #: The last live-graph epoch the journal proves the session observed
    #: (0 = static network, or no epoch record survived truncation).  A
    #: resumed session re-journals the current epoch on its next segment,
    #: so the audit trail stays complete across the truncation window.
    last_epoch: int = 0


def encode_config(config: EcoChargeConfig) -> dict[str, Any]:
    """Explicit versioned encoding of the user-facing knobs."""
    return {
        "k": config.k,
        "radius_km": encode_float(config.radius_km),
        "range_km": encode_float(config.range_km),
        "weights": WeightsCodec.encode(config.weights),
        "segment_km": encode_float(config.segment_km),
        "cache_ttl_h": encode_float(config.cache_ttl_h),
        "index_kind": config.index_kind,
        "pad_intersection": bool(config.pad_intersection),
        "cache_pool_limit": config.cache_pool_limit,
        "engine": config.engine,
        "telemetry": bool(config.telemetry),
    }


def decode_config(payload: Any) -> EcoChargeConfig:
    if not isinstance(payload, dict):
        raise CodecError("config: expected an object")
    limit = payload.get("cache_pool_limit")
    engine = payload.get("engine")
    return EcoChargeConfig(
        k=int(payload["k"]),
        radius_km=decode_float(payload["radius_km"]),
        range_km=decode_float(payload["range_km"]),
        weights=WeightsCodec.decode(payload["weights"]),
        segment_km=decode_float(payload["segment_km"]),
        cache_ttl_h=decode_float(payload["cache_ttl_h"]),
        index_kind=str(payload["index_kind"]),
        pad_intersection=bool(payload["pad_intersection"]),
        cache_pool_limit=None if limit is None else int(limit),
        engine=None if engine is None else str(engine),
        telemetry=bool(payload.get("telemetry", False)),
    )


class RankingSession:
    """One durable continuous query; implements the core ``SessionLog``.

    Constructed only by :class:`SessionManager` (``open`` or ``resume``);
    drive it with :meth:`run`, which wraps
    :func:`~repro.core.ranking.run_over_trip` around this session's
    transaction hooks.
    """

    def __init__(
        self,
        session_id: str,
        directory: Path,
        environment: "ChargingEnvironment",
        trip: Trip,
        config: EcoChargeConfig,
        durability: DurabilityConfig,
        injector: "FaultInjector | None",
        journal: SessionJournal,
        restored_tables: Sequence[OfferingTable] = (),
        restored_failed: Sequence[int] = (),
        restored_cache: CacheState | None = None,
        next_position: int = 0,
        accounting: JournalCacheAccounting | None = None,
        recovery: RecoveryInfo | None = None,
        last_epoch: int = 0,
    ) -> None:
        self.session_id = session_id
        self.directory = directory
        self.environment = environment
        self.trip = trip
        self.config = config
        self.durability = durability
        self.recovery = recovery
        self._injector = injector
        self._journal = journal
        self._restored_tables = tuple(restored_tables)
        self._restored_failed = tuple(restored_failed)
        self._restored_cache = restored_cache
        self._start_position = next_position
        self._accounting = (
            accounting if accounting is not None else JournalCacheAccounting()
        )
        self.ranker = EcoChargeRanker(environment, config)
        self._run: RankingRun | None = None
        #: The last live-graph epoch journaled for this session; segments
        #: journaled after an epoch bump are preceded by an "epoch" record
        #: so crash/resume replays against the correct graph generation.
        self._journaled_epoch = last_epoch
        self._pre_segment: CacheState | None = None
        self._segments_since_snapshot = 0
        self._next_position = next_position
        self.closed = False
        self.completed = False

    # -- public API ---------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.directory / "snapshot.json"

    @property
    def journal_path(self) -> Path:
        return self._journal.path

    @property
    def accounting(self) -> JournalCacheAccounting:
        return self._accounting

    def accounting_ok(self) -> bool:
        """Journaled cache events reconcile with the live counters."""
        return self._accounting.accounts_for(self.ranker.cache_stats)

    def run(self) -> RankingRun:
        """Execute (or continue) the continuous query durably."""
        if self.closed:
            raise SessionStateError(f"session '{self.session_id}' is closed")
        return run_over_trip(
            self.ranker,
            self.environment,
            self.trip,
            segment_km=self.config.segment_km,
            session=self,
        )

    def close(self) -> None:
        """Seal the session: final snapshot, truncated journal, fsynced."""
        if self.closed:
            return
        self._write_snapshot()
        self._journal.truncate_through(self._journal.last_seq)
        self._journal.close()
        self.closed = True

    # -- SessionLog hooks (called by run_over_trip) -------------------------

    def begin(
        self, ranker: SegmentRanker, trip: Trip, segments: Sequence[TripSegment]
    ) -> tuple[RankingRun, int]:
        if ranker is not self.ranker:
            raise SessionStateError("a session drives exactly its own ranker")
        if self._start_position == 0 and not self._restored_tables:
            self.ranker.reset()
        else:
            # Recovered: per-trip state is what the journal proves it was.
            self.ranker.reset()
            if self._restored_cache is not None:
                self.ranker.restore_state(self._restored_cache)
        self._run = RankingRun(
            ranker_name=self.ranker.name,
            trip=trip,
            tables=list(self._restored_tables),
            failed_segments=list(self._restored_failed),
        )
        self._segments_since_snapshot = 0
        return self._run, self._start_position

    def begin_segment(
        self, position: int, segment: TripSegment, ranker: SegmentRanker
    ) -> None:
        if self._injector is not None:
            self._injector.maybe_crash(CRASH_SEGMENT_START)
        self._journal_epoch_transition()
        if (
            self._segments_since_snapshot >= self.durability.snapshot_every
            and position > self._start_position
        ):
            self.checkpoint()
        self._pre_segment = self.ranker.checkpoint_state()

    def _journal_epoch_transition(self) -> None:
        """Append an "epoch" record when the live graph moved since the
        last journaled epoch, so recovery knows which graph generation
        every subsequent segment was priced on.  A static environment
        (no epoch manager) journals nothing."""
        current_epoch = getattr(self.environment, "current_epoch", None)
        epoch = current_epoch() if callable(current_epoch) else 0
        if epoch == self._journaled_epoch:
            return
        epochs = getattr(self.environment, "epochs", None)
        payload = {
            "epoch": epoch,
            "weights_version": epochs.weights_version if epochs is not None else 0,
        }
        telemetry = self.environment.telemetry
        with telemetry.span("journal.append", tier="journal", record_type="epoch"):
            self._journal.append("epoch", payload)
        telemetry.inc("ecocharge_journal_appends_total", record_type="epoch")
        self._journaled_epoch = epoch

    def record_table(
        self,
        position: int,
        segment: TripSegment,
        table: OfferingTable,
        ranker: SegmentRanker,
    ) -> None:
        if self._injector is not None:
            # The segment is ranked but not yet journaled: dying here must
            # make recovery re-price exactly this segment.
            self._injector.maybe_crash(CRASH_MID_SEGMENT)
        pre = self._pre_segment
        stats = self.ranker.cache_stats
        entry = self.ranker.cache_entry
        stored = 0 if pre is not None and entry is pre.entry else 1
        delta = CacheEventDelta.between(
            pre.stats if pre is not None else CacheStats(), stats, stores=stored
        )
        payload = {
            "position": position,
            "segment_index": segment.index,
            "table": OfferingTableCodec.encode(table),
            "cache_entry": (
                None if entry is None else CachedSolutionCodec.encode(entry)
            ),
            "cache_stats": CacheStatsCodec.encode(stats),
            "events": delta.encode(),
        }
        telemetry = self.environment.telemetry
        with telemetry.span("journal.append", tier="journal", record_type="segment"):
            self._journal.append("segment", payload)
        telemetry.inc("ecocharge_journal_appends_total", record_type="segment")
        self._accounting.apply(delta)
        self._next_position = position + 1
        self._segments_since_snapshot += 1
        self._pre_segment = None

    def record_failure(
        self, position: int, segment: TripSegment, error: UpstreamError
    ) -> None:
        # The ranker state was already rolled back to the pre-segment
        # checkpoint, so this transaction contributes no cache events.
        payload = {
            "position": position,
            "segment_index": segment.index,
            "error": type(error).__name__,
            "endpoint": getattr(error, "endpoint", None),
            "events": CacheEventDelta().encode(),
        }
        telemetry = self.environment.telemetry
        with telemetry.span(
            "journal.append", tier="journal", record_type="segment-failed"
        ):
            self._journal.append("segment-failed", payload)
        telemetry.inc("ecocharge_journal_appends_total", record_type="segment-failed")
        self._next_position = position + 1
        self._segments_since_snapshot += 1
        self._pre_segment = None

    def finish(self, run: RankingRun) -> None:
        telemetry = self.environment.telemetry
        with telemetry.span(
            "journal.append", tier="journal", record_type="session-close"
        ):
            self._journal.append(
                "session-close",
                {
                    "tables": len(run.tables),
                    "failed_segments": list(run.failed_segments),
                    "accounting_ok": self.accounting_ok(),
                },
            )
        telemetry.inc("ecocharge_journal_appends_total", record_type="session-close")
        self.completed = True

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot the session and truncate the covered journal prefix.

        The crash window between the two steps is the classic
        double-coverage hazard: the ``post-snapshot`` crash point lands
        exactly there, and recovery resolves it by skipping journal
        records at or below the snapshot's ``journal_seq``.
        """
        self._write_snapshot()
        if self._injector is not None:
            self._injector.maybe_crash(CRASH_POST_SNAPSHOT)
        self._journal.truncate_through(self._journal.last_seq)
        self._segments_since_snapshot = 0

    def _write_snapshot(self) -> None:
        run = self._run
        tables: tuple[OfferingTable, ...]
        failed: tuple[int, ...]
        if run is not None:
            tables = tuple(run.tables)
            failed = tuple(run.failed_segments)
        else:
            tables = self._restored_tables
            failed = self._restored_failed
        snapshot = SessionSnapshot(
            session_id=self.session_id,
            journal_seq=self._journal.last_seq,
            next_position=self._next_position,
            trip=TripCodec.encode(self.trip),
            config=encode_config(self.config),
            tables=tables,
            failed_segments=failed,
            cache_entry=self.ranker.cache_entry,
            cache_stats=self.ranker.cache_stats,
        )
        telemetry = self.environment.telemetry
        with telemetry.span("journal.snapshot", tier="journal", seq=snapshot.journal_seq):
            write_snapshot(self.snapshot_path, snapshot, fsync=self.durability.fsync)
        telemetry.inc("ecocharge_journal_snapshots_total")


class SessionManager:
    """Factory and registry for durable sessions under one root directory.

    The lifecycle is ``open → run (checkpointing as it goes) → close``;
    after a crash, ``resume`` rebuilds the session from its snapshot and
    journal tail and ``run`` continues where the journal proves the
    session left off.
    """

    def __init__(
        self,
        root: Path | str,
        durability: DurabilityConfig | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.root = Path(root)
        self.durability = durability if durability is not None else DurabilityConfig()
        self.injector = injector
        self.root.mkdir(parents=True, exist_ok=True)

    def session_dir(self, session_id: str) -> Path:
        if not _SESSION_ID_RE.match(session_id):
            raise SessionStateError(
                f"bad session id {session_id!r} (letters, digits, ., _, - only)"
            )
        return self.root / session_id

    def open(
        self,
        session_id: str,
        environment: "ChargingEnvironment",
        trip: Trip,
        config: EcoChargeConfig | None = None,
    ) -> RankingSession:
        """Register a fresh durable session (journal header committed)."""
        config = config if config is not None else EcoChargeConfig()
        directory = self.session_dir(session_id)
        directory.mkdir(parents=True, exist_ok=True)
        journal_path = directory / "journal.jsonl"
        if journal_path.exists() and read_journal(journal_path).records:
            raise SessionStateError(
                f"session '{session_id}' already has a journal — resume it "
                f"instead of re-opening"
            )
        journal = SessionJournal(
            journal_path, injector=self.injector, fsync=self.durability.fsync
        )
        header = journal.header_payload()
        header.update(
            {
                "session_id": session_id,
                "trip": TripCodec.encode(trip),
                "config": encode_config(config),
            }
        )
        journal.append("session-open", header)
        return RankingSession(
            session_id=session_id,
            directory=directory,
            environment=environment,
            trip=trip,
            config=config,
            durability=self.durability,
            injector=self.injector,
            journal=journal,
        )

    def resume(
        self, session_id: str, environment: "ChargingEnvironment"
    ) -> RankingSession:
        """Restore snapshot + journal tail; the session continues the trip.

        Torn trailing journal lines are detected by checksum, counted,
        healed out of the file, and never replayed.  Records already
        folded into the snapshot (a crash between snapshot and truncate)
        are skipped by sequence number.
        """
        directory = self.session_dir(session_id)
        journal_path = directory / "journal.jsonl"
        snapshot = load_snapshot(directory / "snapshot.json")
        read_result = read_journal(journal_path)
        if snapshot is None and not read_result.records:
            raise SessionStateError(
                f"session '{session_id}' has neither snapshot nor journal"
            )

        tables: list[OfferingTable] = []
        failed: list[int] = []
        cache_entry = None
        cache_stats = CacheStats()
        base_seq = 0
        next_position = 0
        trip_payload: dict[str, Any] | None = None
        config_payload: dict[str, Any] | None = None
        if snapshot is not None:
            base_seq = snapshot.journal_seq
            next_position = snapshot.next_position
            tables = list(snapshot.tables)
            failed = list(snapshot.failed_segments)
            cache_entry = snapshot.cache_entry
            cache_stats = snapshot.cache_stats
            trip_payload = snapshot.trip
            config_payload = snapshot.config

        accounting = JournalCacheAccounting.from_base(cache_stats)
        replayed = 0
        last_epoch = 0
        for record in read_result.records:
            if record.seq <= base_seq:
                continue
            if record.record_type == "session-open":
                check_codec_versions(
                    record.payload.get("codec_versions", {}), "journal header"
                )
                if trip_payload is None:
                    trip_payload = record.payload.get("trip")
                    config_payload = record.payload.get("config")
                continue
            if record.record_type == "segment":
                tables.append(OfferingTableCodec.decode(record.payload["table"]))
                entry_payload = record.payload.get("cache_entry")
                cache_entry = (
                    None
                    if entry_payload is None
                    else CachedSolutionCodec.decode(entry_payload)
                )
                cache_stats = CacheStatsCodec.decode(record.payload["cache_stats"])
                accounting.apply(CacheEventDelta.decode(record.payload["events"]))
                next_position = int(record.payload["position"]) + 1
                replayed += 1
            elif record.record_type == "segment-failed":
                failed.append(int(record.payload["segment_index"]))
                accounting.apply(CacheEventDelta.decode(record.payload["events"]))
                next_position = int(record.payload["position"]) + 1
                replayed += 1
            elif record.record_type == "epoch":
                last_epoch = int(record.payload["epoch"])
                replayed += 1
            elif record.record_type == "session-close":
                replayed += 1

        if trip_payload is None or config_payload is None:
            raise SessionStateError(
                f"session '{session_id}' journal has no session-open header "
                f"and no snapshot carries the trip"
            )
        trip = TripCodec.decode(trip_payload, environment.network)
        config = decode_config(config_payload)

        # Reconciliation (the ApiUsage-style identity, extended to the
        # journal): the replayed cache admissions must explain the
        # restored counters exactly.
        accounting_ok = accounting.accounts_for(cache_stats)

        # Heal the file: drop torn tail bytes and snapshot-covered records.
        journal = SessionJournal(
            journal_path, injector=self.injector, fsync=self.durability.fsync
        )
        journal.truncate_through(base_seq)
        healed = read_journal(journal_path)
        journal = SessionJournal(
            journal_path,
            injector=self.injector,
            fsync=self.durability.fsync,
            start_seq=max(base_seq, healed.last_seq, read_result.last_seq),
        )

        recovery = RecoveryInfo(
            session_id=session_id,
            snapshot_loaded=snapshot is not None,
            journal_records_replayed=replayed,
            torn_lines_discarded=read_result.torn_lines_discarded,
            segments_restored=len(tables),
            failed_restored=len(failed),
            next_position=next_position,
            accounting_ok=accounting_ok,
            last_epoch=last_epoch,
        )
        return RankingSession(
            session_id=session_id,
            directory=directory,
            environment=environment,
            trip=trip,
            config=config,
            durability=self.durability,
            injector=self.injector,
            journal=journal,
            restored_tables=tables,
            restored_failed=failed,
            restored_cache=CacheState(entry=cache_entry, stats=cache_stats),
            next_position=next_position,
            accounting=accounting,
            recovery=recovery,
            last_epoch=last_epoch,
        )

    def close(self, session: RankingSession) -> None:
        """Seal ``session`` (idempotent)."""
        session.close()

    def has_session(self, session_id: str) -> bool:
        directory = self.session_dir(session_id)
        return (directory / "journal.jsonl").exists() or (
            directory / "snapshot.json"
        ).exists()
