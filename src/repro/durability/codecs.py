"""Versioned, bitwise-stable codecs for every core dataclass.

The durability tier persists session state — Offering Tables, cached
solutions, cache statistics, moving queries — as JSON, never pickle:
pickle couples the on-disk format to private class layout (one renamed
field corrupts every stored session) and executes arbitrary code on
load.  Each codec here is an explicit, versioned mapping between one
dataclass and a plain JSON dict, so the journal/snapshot format is an
auditable contract rather than an implementation accident.

Two properties the recovery proof depends on:

* **bitwise float stability** — every float is encoded as its
  ``float.hex()`` string (``decode(encode(x))`` is the *same* 64-bit
  pattern, including ``-0.0`` and subnormals), so a recovered session's
  rankings can be compared bit-for-bit against an uninterrupted run;
* **canonical serialisation** — :func:`canonical_dumps` sorts keys and
  strips whitespace, so ``encode → decode → encode`` is byte-stable and
  checksums/snapshots are reproducible across runs and platforms.
"""

from __future__ import annotations

import json
import math
from typing import Any, Mapping

from ..chargers.charger import Charger, PlugType, RenewableSource
from ..core.caching import CachedSolution, CacheStats
from ..core.intervals import Interval
from ..core.moving import MovingQuery
from ..core.offering import OfferingEntry, OfferingTable
from ..core.scoring import ComponentScores, ScScore, Weights
from ..network.path import Trip
from ..spatial.geometry import Point, Segment


class CodecError(ValueError):
    """A payload that cannot be decoded (wrong shape, version, or value)."""


def canonical_dumps(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, ASCII only."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def encode_float(value: float) -> str:
    """``float.hex()`` — the bitwise-exact, locale-free float encoding."""
    if math.isnan(value):
        raise CodecError("NaN is not representable in durable state")
    return float(value).hex()


def decode_float(payload: Any) -> float:
    if not isinstance(payload, str):
        raise CodecError(f"expected a hex float string, got {payload!r}")
    try:
        return float.fromhex(payload)
    except ValueError as error:
        raise CodecError(f"bad hex float {payload!r}") from error


def _expect_mapping(payload: Any, tag: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise CodecError(f"{tag}: expected an object, got {type(payload).__name__}")
    return payload


def _field(payload: Mapping[str, Any], key: str, tag: str) -> Any:
    try:
        return payload[key]
    except KeyError as error:
        raise CodecError(f"{tag}: missing field '{key}'") from error


# ---------------------------------------------------------------------------
# leaf codecs
# ---------------------------------------------------------------------------


class IntervalCodec:
    """``Interval`` ⇄ ``{"lo": hex, "hi": hex}``."""

    tag = "interval"
    version = 1

    @staticmethod
    def encode(value: Interval) -> dict[str, Any]:
        return {"lo": encode_float(value.lo), "hi": encode_float(value.hi)}

    @staticmethod
    def decode(payload: Any) -> Interval:
        data = _expect_mapping(payload, IntervalCodec.tag)
        return Interval(
            decode_float(_field(data, "lo", IntervalCodec.tag)),
            decode_float(_field(data, "hi", IntervalCodec.tag)),
        )


class PointCodec:
    """``Point`` ⇄ ``{"x": hex, "y": hex}``."""

    tag = "point"
    version = 1

    @staticmethod
    def encode(value: Point) -> dict[str, Any]:
        return {"x": encode_float(value.x), "y": encode_float(value.y)}

    @staticmethod
    def decode(payload: Any) -> Point:
        data = _expect_mapping(payload, PointCodec.tag)
        return Point(
            decode_float(_field(data, "x", PointCodec.tag)),
            decode_float(_field(data, "y", PointCodec.tag)),
        )


class SegmentCodec:
    """``Segment`` ⇄ ``{"start": point, "end": point}``."""

    tag = "segment"
    version = 1

    @staticmethod
    def encode(value: Segment) -> dict[str, Any]:
        return {
            "start": PointCodec.encode(value.start),
            "end": PointCodec.encode(value.end),
        }

    @staticmethod
    def decode(payload: Any) -> Segment:
        data = _expect_mapping(payload, SegmentCodec.tag)
        return Segment(
            PointCodec.decode(_field(data, "start", SegmentCodec.tag)),
            PointCodec.decode(_field(data, "end", SegmentCodec.tag)),
        )


class ChargerCodec:
    """``Charger`` ⇄ JSON, enums by their stable string values."""

    tag = "charger"
    version = 1

    @staticmethod
    def encode(value: Charger) -> dict[str, Any]:
        return {
            "charger_id": value.charger_id,
            "point": PointCodec.encode(value.point),
            "node_id": value.node_id,
            "rate_kw": encode_float(value.rate_kw),
            "plug_type": value.plug_type.value,
            "plugs": value.plugs,
            "solar_capacity_kw": encode_float(value.solar_capacity_kw),
            "source": value.source.value,
        }

    @staticmethod
    def decode(payload: Any) -> Charger:
        data = _expect_mapping(payload, ChargerCodec.tag)
        try:
            plug = PlugType(_field(data, "plug_type", ChargerCodec.tag))
            source = RenewableSource(_field(data, "source", ChargerCodec.tag))
        except ValueError as error:
            raise CodecError(f"charger: unknown enum value ({error})") from error
        return Charger(
            charger_id=int(_field(data, "charger_id", ChargerCodec.tag)),
            point=PointCodec.decode(_field(data, "point", ChargerCodec.tag)),
            node_id=int(_field(data, "node_id", ChargerCodec.tag)),
            rate_kw=decode_float(_field(data, "rate_kw", ChargerCodec.tag)),
            plug_type=plug,
            plugs=int(_field(data, "plugs", ChargerCodec.tag)),
            solar_capacity_kw=decode_float(
                _field(data, "solar_capacity_kw", ChargerCodec.tag)
            ),
            source=source,
        )


class ComponentScoresCodec:
    """``ComponentScores`` ⇄ the three EC intervals."""

    tag = "component-scores"
    version = 1

    @staticmethod
    def encode(value: ComponentScores) -> dict[str, Any]:
        return {
            "charger_id": value.charger_id,
            "sustainable": IntervalCodec.encode(value.sustainable),
            "availability": IntervalCodec.encode(value.availability),
            "derouting": IntervalCodec.encode(value.derouting),
        }

    @staticmethod
    def decode(payload: Any) -> ComponentScores:
        data = _expect_mapping(payload, ComponentScoresCodec.tag)
        return ComponentScores(
            charger_id=int(_field(data, "charger_id", ComponentScoresCodec.tag)),
            sustainable=IntervalCodec.decode(
                _field(data, "sustainable", ComponentScoresCodec.tag)
            ),
            availability=IntervalCodec.decode(
                _field(data, "availability", ComponentScoresCodec.tag)
            ),
            derouting=IntervalCodec.decode(
                _field(data, "derouting", ComponentScoresCodec.tag)
            ),
        )


class ScScoreCodec:
    """``ScScore`` ⇄ the two Eq. 4-5 scenario scores."""

    tag = "sc-score"
    version = 1

    @staticmethod
    def encode(value: ScScore) -> dict[str, Any]:
        return {
            "charger_id": value.charger_id,
            "sc_min": encode_float(value.sc_min),
            "sc_max": encode_float(value.sc_max),
        }

    @staticmethod
    def decode(payload: Any) -> ScScore:
        data = _expect_mapping(payload, ScScoreCodec.tag)
        return ScScore(
            charger_id=int(_field(data, "charger_id", ScScoreCodec.tag)),
            sc_min=decode_float(_field(data, "sc_min", ScScoreCodec.tag)),
            sc_max=decode_float(_field(data, "sc_max", ScScoreCodec.tag)),
        )


class WeightsCodec:
    """``Weights`` ⇄ the three objective weights."""

    tag = "weights"
    version = 1

    @staticmethod
    def encode(value: Weights) -> dict[str, Any]:
        return {
            "sustainable": encode_float(value.sustainable),
            "availability": encode_float(value.availability),
            "derouting": encode_float(value.derouting),
        }

    @staticmethod
    def decode(payload: Any) -> Weights:
        data = _expect_mapping(payload, WeightsCodec.tag)
        return Weights(
            sustainable=decode_float(_field(data, "sustainable", WeightsCodec.tag)),
            availability=decode_float(_field(data, "availability", WeightsCodec.tag)),
            derouting=decode_float(_field(data, "derouting", WeightsCodec.tag)),
        )


# ---------------------------------------------------------------------------
# composite codecs
# ---------------------------------------------------------------------------


class OfferingEntryCodec:
    """``OfferingEntry`` ⇄ one ranked row of an Offering Table."""

    tag = "offering-entry"
    version = 1

    @staticmethod
    def encode(value: OfferingEntry) -> dict[str, Any]:
        return {
            "rank": value.rank,
            "charger": ChargerCodec.encode(value.charger),
            "score": ScScoreCodec.encode(value.score),
            "sustainable": IntervalCodec.encode(value.sustainable),
            "availability": IntervalCodec.encode(value.availability),
            "derouting": IntervalCodec.encode(value.derouting),
            "eta_h": encode_float(value.eta_h),
        }

    @staticmethod
    def decode(payload: Any) -> OfferingEntry:
        data = _expect_mapping(payload, OfferingEntryCodec.tag)
        return OfferingEntry(
            rank=int(_field(data, "rank", OfferingEntryCodec.tag)),
            charger=ChargerCodec.decode(_field(data, "charger", OfferingEntryCodec.tag)),
            score=ScScoreCodec.decode(_field(data, "score", OfferingEntryCodec.tag)),
            sustainable=IntervalCodec.decode(
                _field(data, "sustainable", OfferingEntryCodec.tag)
            ),
            availability=IntervalCodec.decode(
                _field(data, "availability", OfferingEntryCodec.tag)
            ),
            derouting=IntervalCodec.decode(
                _field(data, "derouting", OfferingEntryCodec.tag)
            ),
            eta_h=decode_float(_field(data, "eta_h", OfferingEntryCodec.tag)),
        )


class OfferingTableCodec:
    """``OfferingTable`` ⇄ the full per-segment answer."""

    tag = "offering-table"
    version = 1

    @staticmethod
    def encode(value: OfferingTable) -> dict[str, Any]:
        return {
            "segment_index": value.segment_index,
            "origin": PointCodec.encode(value.origin),
            "generated_at_h": encode_float(value.generated_at_h),
            "radius_km": encode_float(value.radius_km),
            "entries": [OfferingEntryCodec.encode(entry) for entry in value.entries],
            "adapted_from": value.adapted_from,
        }

    @staticmethod
    def decode(payload: Any) -> OfferingTable:
        data = _expect_mapping(payload, OfferingTableCodec.tag)
        entries = _field(data, "entries", OfferingTableCodec.tag)
        if not isinstance(entries, list):
            raise CodecError("offering-table: 'entries' must be a list")
        adapted = _field(data, "adapted_from", OfferingTableCodec.tag)
        return OfferingTable(
            segment_index=int(_field(data, "segment_index", OfferingTableCodec.tag)),
            origin=PointCodec.decode(_field(data, "origin", OfferingTableCodec.tag)),
            generated_at_h=decode_float(
                _field(data, "generated_at_h", OfferingTableCodec.tag)
            ),
            radius_km=decode_float(_field(data, "radius_km", OfferingTableCodec.tag)),
            entries=tuple(OfferingEntryCodec.decode(entry) for entry in entries),
            adapted_from=None if adapted is None else int(adapted),
        )


class CachedSolutionCodec:
    """``CachedSolution`` ⇄ the scored pool behind one Offering Table."""

    tag = "cached-solution"
    #: v2 adds the live-graph ``epoch`` the solution was computed on, so
    #: a crash/resume replays against the correct graph generation.
    version = 2

    @staticmethod
    def encode(value: CachedSolution) -> dict[str, Any]:
        return {
            "segment_index": value.segment_index,
            "origin": PointCodec.encode(value.origin),
            "generated_at_h": encode_float(value.generated_at_h),
            "eta_h": encode_float(value.eta_h),
            "radius_km": encode_float(value.radius_km),
            "pool": [ChargerCodec.encode(charger) for charger in value.pool],
            "components": [
                ComponentScoresCodec.encode(comp) for comp in value.components
            ],
            "epoch": value.epoch,
        }

    @staticmethod
    def decode(payload: Any) -> CachedSolution:
        data = _expect_mapping(payload, CachedSolutionCodec.tag)
        pool = _field(data, "pool", CachedSolutionCodec.tag)
        components = _field(data, "components", CachedSolutionCodec.tag)
        if not isinstance(pool, list) or not isinstance(components, list):
            raise CodecError("cached-solution: 'pool'/'components' must be lists")
        return CachedSolution(
            segment_index=int(_field(data, "segment_index", CachedSolutionCodec.tag)),
            origin=PointCodec.decode(_field(data, "origin", CachedSolutionCodec.tag)),
            generated_at_h=decode_float(
                _field(data, "generated_at_h", CachedSolutionCodec.tag)
            ),
            eta_h=decode_float(_field(data, "eta_h", CachedSolutionCodec.tag)),
            radius_km=decode_float(_field(data, "radius_km", CachedSolutionCodec.tag)),
            pool=tuple(ChargerCodec.decode(charger) for charger in pool),
            components=tuple(
                ComponentScoresCodec.decode(comp) for comp in components
            ),
            # Absent from v1 payloads (static network): epoch 0.
            epoch=int(data.get("epoch", 0)),
        )


class CacheStatsCodec:
    """``CacheStats`` ⇄ its counters (plain ints, no floats)."""

    tag = "cache-stats"
    #: v2 adds ``epoch_invalidations`` (live-graph fencing drops).
    version = 2

    @staticmethod
    def encode(value: CacheStats) -> dict[str, Any]:
        return {
            "hits": value.hits,
            "misses": value.misses,
            "expirations": value.expirations,
            "out_of_range": value.out_of_range,
            "epoch_invalidations": value.epoch_invalidations,
        }

    @staticmethod
    def decode(payload: Any) -> CacheStats:
        data = _expect_mapping(payload, CacheStatsCodec.tag)
        return CacheStats(
            hits=int(_field(data, "hits", CacheStatsCodec.tag)),
            misses=int(_field(data, "misses", CacheStatsCodec.tag)),
            expirations=int(_field(data, "expirations", CacheStatsCodec.tag)),
            out_of_range=int(_field(data, "out_of_range", CacheStatsCodec.tag)),
            # Absent from v1 payloads (static network): 0.
            epoch_invalidations=int(data.get("epoch_invalidations", 0)),
        )


class MovingQueryCodec:
    """``MovingQuery`` ⇄ segment + speed interval + departure."""

    tag = "moving-query"
    version = 1

    @staticmethod
    def encode(value: MovingQuery) -> dict[str, Any]:
        return {
            "segment": SegmentCodec.encode(value.segment),
            "speed_kmh": IntervalCodec.encode(value.speed_kmh),
            "start_time_h": encode_float(value.start_time_h),
        }

    @staticmethod
    def decode(payload: Any) -> MovingQuery:
        data = _expect_mapping(payload, MovingQueryCodec.tag)
        return MovingQuery(
            segment=SegmentCodec.decode(_field(data, "segment", MovingQueryCodec.tag)),
            speed_kmh=IntervalCodec.decode(
                _field(data, "speed_kmh", MovingQueryCodec.tag)
            ),
            start_time_h=decode_float(
                _field(data, "start_time_h", MovingQueryCodec.tag)
            ),
        )


class TripCodec:
    """``Trip`` ⇄ node ids + departure.

    Decoding needs the road network the session runs on — node ids are
    only meaningful against it — so :meth:`decode` takes the network
    explicitly rather than serialising the whole graph per session.
    """

    tag = "trip"
    version = 1

    @staticmethod
    def encode(value: Trip) -> dict[str, Any]:
        return {
            "node_ids": list(value.node_ids),
            "departure_time_h": encode_float(value.departure_time_h),
        }

    @staticmethod
    def decode(payload: Any, network: Any) -> Trip:
        data = _expect_mapping(payload, TripCodec.tag)
        node_ids = _field(data, "node_ids", TripCodec.tag)
        if not isinstance(node_ids, list):
            raise CodecError("trip: 'node_ids' must be a list")
        return Trip(
            network,
            tuple(int(node) for node in node_ids),
            decode_float(_field(data, "departure_time_h", TripCodec.tag)),
        )


#: Every codec and its current version — persisted in journal headers and
#: snapshot envelopes so a reader can refuse state written by an
#: incompatible future format instead of mis-decoding it.
CODEC_VERSIONS: dict[str, int] = {
    codec.tag: codec.version
    for codec in (
        IntervalCodec,
        PointCodec,
        SegmentCodec,
        ChargerCodec,
        ComponentScoresCodec,
        ScScoreCodec,
        WeightsCodec,
        OfferingEntryCodec,
        OfferingTableCodec,
        CachedSolutionCodec,
        CacheStatsCodec,
        MovingQueryCodec,
        TripCodec,
    )
}


def check_codec_versions(recorded: Mapping[str, Any], source: str) -> None:
    """Refuse durable state whose codec versions this build cannot read."""
    for tag, version in recorded.items():
        current = CODEC_VERSIONS.get(tag)
        if current is None:
            raise CodecError(f"{source}: unknown codec tag '{tag}'")
        if int(version) != current:
            raise CodecError(
                f"{source}: codec '{tag}' is version {version}, this build "
                f"reads version {current}"
            )
