"""Journal ⇄ cache accounting reconciliation.

PR 2 proved that no upstream call goes unaccounted by reconciling
``EndpointHealth`` against ``ApiUsage``.  The durability tier extends
the same discipline to the dynamic cache: every committed segment
transaction journals the cache-event *delta* it caused (hits, misses,
expirations, out-of-range rejections, stores), and a recovered session
must reconcile the sum of replayed deltas against the live
:class:`~repro.core.caching.CacheStats` counters.  A divergence means
either a journal record was lost/duplicated or a mutation happened
outside the transaction boundary — both recovery-correctness bugs worth
failing loudly on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.caching import CacheStats
from .codecs import CodecError


@dataclass(frozen=True, slots=True)
class CacheEventDelta:
    """The cache events one segment transaction caused."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    out_of_range: int = 0
    epoch_invalidations: int = 0
    stores: int = 0

    @staticmethod
    def between(before: CacheStats, after: CacheStats, stores: int) -> "CacheEventDelta":
        return CacheEventDelta(
            hits=after.hits - before.hits,
            misses=after.misses - before.misses,
            expirations=after.expirations - before.expirations,
            out_of_range=after.out_of_range - before.out_of_range,
            epoch_invalidations=after.epoch_invalidations - before.epoch_invalidations,
            stores=stores,
        )

    def encode(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "out_of_range": self.out_of_range,
            "epoch_invalidations": self.epoch_invalidations,
            "stores": self.stores,
        }

    @classmethod
    def decode(cls, payload: Any) -> "CacheEventDelta":
        if not isinstance(payload, Mapping):
            raise CodecError("cache-events: expected an object")
        try:
            return cls(
                hits=int(payload["hits"]),
                misses=int(payload["misses"]),
                expirations=int(payload["expirations"]),
                out_of_range=int(payload["out_of_range"]),
                # Absent in records journaled before the live-graph layer
                # existed: decode as 0 so old journals replay unchanged.
                epoch_invalidations=int(payload.get("epoch_invalidations", 0)),
                stores=int(payload["stores"]),
            )
        except KeyError as error:
            raise CodecError(f"cache-events: missing field {error}") from error


@dataclass(slots=True)
class JournalCacheAccounting:
    """Running totals of journaled cache events for one session.

    Seeded from the snapshot's cumulative :class:`CacheStats` (the state
    at ``journal_seq``), then advanced by every replayed and every newly
    committed :class:`CacheEventDelta`.
    """

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    out_of_range: int = 0
    epoch_invalidations: int = 0
    stores: int = 0

    @classmethod
    def from_base(cls, base: CacheStats) -> "JournalCacheAccounting":
        return cls(
            hits=base.hits,
            misses=base.misses,
            expirations=base.expirations,
            out_of_range=base.out_of_range,
            epoch_invalidations=base.epoch_invalidations,
        )

    def apply(self, delta: CacheEventDelta) -> None:
        self.hits += delta.hits
        self.misses += delta.misses
        self.expirations += delta.expirations
        self.out_of_range += delta.out_of_range
        self.epoch_invalidations += delta.epoch_invalidations
        self.stores += delta.stores

    def accounts_for(self, stats: CacheStats) -> bool:
        """Do the journaled events explain the live counters exactly?

        Two identities: every journaled lookup category matches its live
        counter, and the categorised misses never exceed total misses
        (an internal sanity bound on the deltas themselves).
        """
        return (
            self.hits == stats.hits
            and self.misses == stats.misses
            and self.expirations == stats.expirations
            and self.out_of_range == stats.out_of_range
            and self.epoch_invalidations == stats.epoch_invalidations
            and self.expirations + self.out_of_range <= self.misses
        )
