"""Continuous kNN queries: split points and the CkNN-EC driver.

Two layers:

* The classical geometric substrate (Tao et al., VLDB'02): given a path
  segment and a candidate set, find the *split points* ``SL`` where the
  nearest-neighbour answer changes.  For ``k = 1`` the split points are
  exact — along a line the difference of squared distances to two sites is
  linear in the path parameter, so each bisector crossing has a closed
  form.  For ``k > 1`` a sampled sweep with the same invariants is used.

* The CkNN-EC driver of the paper: one SC-ranked kNN result per trip
  segment (the segment boundaries are the split points of the continuous
  query, Section III-A), delegating the per-segment ranking to any
  :class:`~repro.core.ranking.SegmentRanker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TypeVar

from ..spatial.geometry import Point, Segment

T = TypeVar("T")

_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class SplitPoint:
    """A maximal stretch of a segment sharing one nearest-neighbour answer.

    ``t_start``/``t_end`` are parametric positions in [0, 1] along the
    queried segment; ``nn_ids`` is the (ordered, for k=1 trivially single)
    answer valid on ``[t_start, t_end)``.
    """

    t_start: float
    t_end: float
    start: Point
    end: Point
    nn_ids: tuple[int, ...]

    @property
    def length_fraction(self) -> float:
        return self.t_end - self.t_start


def _bisector_crossing(
    segment: Segment, current: Point, challenger: Point
) -> float | None:
    """Parametric ``t`` where ``challenger`` starts beating ``current``.

    Along ``P(t) = s + t v`` the difference of squared distances
    ``|P(t)-a|^2 - |P(t)-b|^2`` is linear in ``t``; this returns the root
    if the challenger wins for larger ``t``, else None.
    """
    s, e = segment.start, segment.end
    vx, vy = e.x - s.x, e.y - s.y
    # f(t) = |P(t)-a|^2 - |P(t)-b|^2 = c0 + c1 * t ; challenger b wins when f > 0.
    ax, ay = s.x - current.x, s.y - current.y
    bx, by = s.x - challenger.x, s.y - challenger.y
    c0 = (ax * ax + ay * ay) - (bx * bx + by * by)
    c1 = 2.0 * (vx * (ax - bx) + vy * (ay - by))
    if abs(c1) < _EPS:
        return None  # parallel bisector: order never changes on this segment
    root = -c0 / c1
    if c1 > 0:
        return root  # challenger ahead after the root
    return None  # challenger ahead only before the root; irrelevant going forward


def split_points_1nn(
    segment: Segment, candidates: Sequence[tuple[int, Point]]
) -> list[SplitPoint]:
    """Exact continuous 1NN along ``segment``.

    ``candidates`` are ``(id, point)`` pairs.  Returns the ordered list of
    split-point stretches covering [0, 1]; consecutive stretches have
    different winners by construction.
    """
    if not candidates:
        raise ValueError("continuous NN needs at least one candidate")
    t = 0.0
    start_point = segment.start
    winner_id, winner_point = min(
        candidates, key=lambda c: c[1].squared_distance_to(segment.start)
    )
    results: list[SplitPoint] = []
    # Guard: at most |candidates| NN changes are possible for 1NN along a
    # line (each site can become the winner at most once).
    for __ in range(len(candidates) + 1):
        best_t = 1.0
        best: tuple[int, Point] | None = None
        for cand_id, cand_point in candidates:
            if cand_id == winner_id:
                continue
            crossing = _bisector_crossing(segment, winner_point, cand_point)
            if crossing is None:
                continue
            if t + _EPS < crossing < best_t - _EPS:
                best_t = crossing
                best = (cand_id, cand_point)
        if best is None:
            results.append(
                SplitPoint(t, 1.0, start_point, segment.end, (winner_id,))
            )
            return results
        split_at = segment.interpolate(best_t)
        results.append(SplitPoint(t, best_t, start_point, split_at, (winner_id,)))
        t = best_t
        start_point = split_at
        winner_id, winner_point = best
    # Numerical pathologies only; close out the sweep.
    results.append(SplitPoint(t, 1.0, start_point, segment.end, (winner_id,)))
    return results


def split_points_knn_sampled(
    segment: Segment,
    candidates: Sequence[tuple[int, Point]],
    k: int,
    step_km: float = 0.1,
) -> list[SplitPoint]:
    """Sampled continuous kNN: stretches where the kNN *set* is constant.

    A sweep at ``step_km`` resolution with binary refinement of each
    transition to ``step_km / 64`` precision.  Order within the set is
    ignored (set semantics, as in the AkNN literature the paper cites).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not candidates:
        raise ValueError("continuous kNN needs at least one candidate")
    k = min(k, len(candidates))

    def knn_set(t: float) -> frozenset[int]:
        point = segment.interpolate(t)
        ranked = sorted(
            candidates, key=lambda c: (c[1].squared_distance_to(point), c[0])
        )
        return frozenset(c[0] for c in ranked[:k])

    def ordered(t: float) -> tuple[int, ...]:
        point = segment.interpolate(t)
        ranked = sorted(
            candidates, key=lambda c: (c[1].squared_distance_to(point), c[0])
        )
        return tuple(c[0] for c in ranked[:k])

    length = segment.length
    samples = max(2, int(length / step_km) + 1) if length > 0 else 2
    ts = [i / (samples - 1) for i in range(samples)]

    results: list[SplitPoint] = []
    run_start = 0.0
    current = knn_set(0.0)
    for prev_t, next_t in zip(ts, ts[1:]):
        nxt = knn_set(next_t)
        if nxt == current:
            continue
        # Binary-refine the transition inside (prev_t, next_t].
        lo, hi = prev_t, next_t
        for __ in range(6):
            mid = (lo + hi) / 2.0
            if knn_set(mid) == current:
                lo = mid
            else:
                hi = mid
        results.append(
            SplitPoint(
                run_start, hi, segment.interpolate(run_start), segment.interpolate(hi),
                ordered(run_start),
            )
        )
        run_start = hi
        current = nxt
    results.append(
        SplitPoint(run_start, 1.0, segment.interpolate(run_start), segment.end, ordered(run_start))
    )
    return results


def coverage_is_complete(splits: Sequence[SplitPoint], tol: float = 1e-9) -> bool:
    """Invariant check: split stretches tile [0, 1] without gaps/overlaps."""
    if not splits:
        return False
    if abs(splits[0].t_start) > tol or abs(splits[-1].t_end - 1.0) > tol:
        return False
    return all(
        abs(a.t_end - b.t_start) <= tol for a, b in zip(splits, splits[1:])
    )
