"""Offering Tables — the user-facing output of EcoCharge.

An Offering Table ``O`` (Section II-A) lists the top-ranked sustainable
chargers for one path segment; the full CkNN-EC answer for a trip is the
sequence ``O_p1 ... O_pn``, one table per segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from ..chargers.charger import Charger
from ..spatial.geometry import Point
from .intervals import Interval
from .scoring import ScScore

if TYPE_CHECKING:
    from .interval_array import ComponentArrays


@dataclass(frozen=True, slots=True)
class OfferingEntry:
    """One ranked charger in an Offering Table."""

    rank: int
    charger: Charger
    score: ScScore
    sustainable: Interval
    availability: Interval
    derouting: Interval
    eta_h: float

    @property
    def charger_id(self) -> int:
        return self.charger.charger_id


@dataclass(frozen=True, slots=True)
class OfferingTable:
    """The ranked offering for one path segment.

    ``origin`` is the query location the table was generated for and
    ``radius_km`` the search radius used — both are what the dynamic cache
    checks against ``R``/``Q`` when deciding whether the table can be
    adapted for a nearby later location.  ``adapted_from`` records cache
    reuse for the experiment bookkeeping.
    """

    segment_index: int
    origin: Point
    generated_at_h: float
    radius_km: float
    entries: tuple[OfferingEntry, ...]
    adapted_from: int | None = None

    def __post_init__(self) -> None:
        for expected, entry in enumerate(self.entries, start=1):
            if entry.rank != expected:
                raise ValueError(
                    f"entry ranks must be 1..n in order; got rank {entry.rank} at "
                    f"position {expected}"
                )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[OfferingEntry]:
        return iter(self.entries)

    @property
    def is_adapted(self) -> bool:
        return self.adapted_from is not None

    @property
    def best(self) -> OfferingEntry | None:
        return self.entries[0] if self.entries else None

    def charger_ids(self) -> list[int]:
        """Charger ids in rank order."""
        return [entry.charger_id for entry in self.entries]

    def top(self, n: int) -> tuple[OfferingEntry, ...]:
        """The first ``n`` entries (all of them when n exceeds the table)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return self.entries[:n]

    def get(self, charger_id: int) -> OfferingEntry | None:
        """The entry for ``charger_id``, or None when not offered."""
        for entry in self.entries:
            if entry.charger_id == charger_id:
                return entry
        return None


def build_table(
    segment_index: int,
    origin: Point,
    generated_at_h: float,
    radius_km: float,
    ranked: list[tuple[ScScore, Charger, Interval, Interval, Interval, float]],
    adapted_from: int | None = None,
) -> OfferingTable:
    """Assemble an :class:`OfferingTable` from ranked scoring output.

    ``ranked`` rows are ``(score, charger, L, A, D, eta_h)`` in final rank
    order.
    """
    entries = tuple(
        OfferingEntry(
            rank=i + 1,
            charger=charger,
            score=score,
            sustainable=l_iv,
            availability=a_iv,
            derouting=d_iv,
            eta_h=eta_h,
        )
        for i, (score, charger, l_iv, a_iv, d_iv, eta_h) in enumerate(ranked)
    )
    return OfferingTable(
        segment_index=segment_index,
        origin=origin,
        generated_at_h=generated_at_h,
        radius_km=radius_km,
        entries=entries,
        adapted_from=adapted_from,
    )


def build_table_from_arrays(
    segment_index: int,
    origin: Point,
    generated_at_h: float,
    radius_km: float,
    components: "ComponentArrays",
    sc_min: np.ndarray,
    sc_max: np.ndarray,
    chosen_rows: Sequence[int] | np.ndarray,
    chargers_by_id: Mapping[int, Charger],
    eta_h: float,
    adapted_from: int | None = None,
) -> OfferingTable:
    """Assemble an :class:`OfferingTable` straight from flat score arrays.

    ``chosen_rows`` is the final rank order of row indices (the output of
    :func:`~repro.core.scoring.intersect_top_k_batch`).  This is the API
    boundary of the batched scoring path: :class:`ScScore` and
    :class:`~repro.core.intervals.Interval` dataclasses exist only for
    the ``<= k`` chosen rows, never for the whole pool.  Values are
    passed through ``float()`` untouched, so the table is bitwise equal
    to :func:`build_table` over the scalar pipeline.
    """
    sustainable = components.sustainable
    availability = components.availability
    derouting = components.derouting
    ids = components.charger_ids
    entries = tuple(
        OfferingEntry(
            rank=rank,
            charger=chargers_by_id[int(ids[row])],
            score=ScScore(int(ids[row]), float(sc_min[row]), float(sc_max[row])),
            sustainable=sustainable.at(int(row)),
            availability=availability.at(int(row)),
            derouting=derouting.at(int(row)),
            eta_h=eta_h,
        )
        for rank, row in enumerate(chosen_rows, start=1)
    )
    return OfferingTable(
        segment_index=segment_index,
        origin=origin,
        generated_at_h=generated_at_h,
        radius_km=radius_km,
        entries=entries,
        adapted_from=adapted_from,
    )
