"""Structure-of-arrays interval arithmetic (re-export).

The implementation lives in :mod:`repro.interval_array` — a top-level
module, like :mod:`repro.intervals`, so the estimation subpackage can use
the flat interval form without importing the whole ``repro.core`` package
(which itself depends on estimation).  This module preserves the
``repro.core.interval_array`` import path used by the scoring pipeline.
"""

from ..interval_array import ComponentArrays, IntervalArray, quantize

__all__ = ["ComponentArrays", "IntervalArray", "quantize"]
