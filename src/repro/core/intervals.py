"""Interval arithmetic for Estimated Components (re-export).

The implementation lives in :mod:`repro.intervals` — a top-level module so
that the estimation subpackage can use it without importing the whole
``repro.core`` package (which itself depends on estimation).  This module
preserves the documented ``repro.core.intervals`` import path.
"""

from ..intervals import Interval, hull_of, weighted_sum

__all__ = ["Interval", "hull_of", "weighted_sum"]
