"""Sustainability Score ``SC`` (Eq. 4-6) and weight configurations.

``SC`` blends the three Estimated Components with user-configurable
weights:

    SC_min = L_min * w1 + A_min * w2 + (1 - D_min) * w3     (Eq. 4)
    SC_max = L_max * w1 + A_max * w2 + (1 - D_max) * w3     (Eq. 5)
    SC(B)  = sort(top-k by SC_max  intersect  top-k by SC_min)   (Eq. 6)

Note the paper's convention: ``SC_min`` plugs in each component's *lower*
estimate and ``SC_max`` each component's *upper* estimate.  Because the
derouting term enters as ``1 - D``, the two values are *not* ordered
endpoints of an interval — they are two coherent scenarios ("all lower
estimates" vs "all upper estimates"), and the ranking intersects the two
scenario top-k sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.contracts import ensure, require
from .interval_array import ComponentArrays
from .intervals import Interval


@dataclass(frozen=True, slots=True)
class Weights:
    """Objective weights ``(w1, w2, w3)`` for ``(L, A, D)``.

    Must be non-negative and sum to 1 (the paper's evaluation always uses
    normalised weights).
    """

    sustainable: float
    availability: float
    derouting: float

    def __post_init__(self) -> None:
        values = (self.sustainable, self.availability, self.derouting)
        if any(w < 0 for w in values):
            raise ValueError("weights must be non-negative")
        if abs(sum(values) - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {sum(values)}")

    def as_tuple(self) -> tuple[float, float, float]:
        """The weights as ``(w1, w2, w3)``."""
        return (self.sustainable, self.availability, self.derouting)

    @classmethod
    def equal(cls) -> "Weights":
        """AWE — all weights equal, EcoCharge's default (Section V-E)."""
        return cls(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)

    @classmethod
    def only_sustainable(cls) -> "Weights":
        """OSC — only the Sustainable Charging Level objective."""
        return cls(1.0, 0.0, 0.0)

    @classmethod
    def only_availability(cls) -> "Weights":
        """OA — only the Availability objective."""
        return cls(0.0, 1.0, 0.0)

    @classmethod
    def only_derouting(cls) -> "Weights":
        """ODC — only the Derouting Cost objective."""
        return cls(0.0, 0.0, 1.0)


#: Named ablation configurations of Section V-E.
ABLATION_CONFIGS: dict[str, Weights] = {
    "AWE": Weights.equal(),
    "OSC": Weights.only_sustainable(),
    "OA": Weights.only_availability(),
    "ODC": Weights.only_derouting(),
}


@dataclass(frozen=True, slots=True)
class ComponentScores:
    """The three normalised EC intervals for one charger at one ETA.

    All three live in [0, 1]; for ``L`` and ``A`` bigger is better, for
    ``D`` smaller is better (the score flips it via ``1 - D``).
    """

    charger_id: int
    sustainable: Interval
    availability: Interval
    derouting: Interval

    def __post_init__(self) -> None:
        for name, interval in (
            ("sustainable", self.sustainable),
            ("availability", self.availability),
            ("derouting", self.derouting),
        ):
            if not interval.within_bounds(0.0, 1.0, tol=1e-9):
                raise ValueError(f"{name} interval {interval} not normalised to [0, 1]")


@dataclass(frozen=True, slots=True)
class ScScore:
    """The two scenario scores of Eq. 4-5 plus derived ranking keys."""

    charger_id: int
    sc_min: float
    sc_max: float

    @property
    def midpoint(self) -> float:
        return (self.sc_min + self.sc_max) / 2.0

    @property
    def pessimistic(self) -> float:
        """The worst of the two scenarios — a conservative ranking key."""
        return min(self.sc_min, self.sc_max)


@require(
    lambda components: all(
        interval.within_bounds(0.0, 1.0, tol=1e-9)
        for interval in (components.sustainable, components.availability, components.derouting)
    ),
    "Eq. 4-5 need all three EC intervals normalised into [0, 1]",
)
@ensure(
    lambda result: -1e-9 <= result.sc_min <= 1.0 + 1e-9
    and -1e-9 <= result.sc_max <= 1.0 + 1e-9,
    "scenario scores must stay in [0, 1] for normalised weights",
)
def sc_score(components: ComponentScores, weights: Weights) -> ScScore:
    """Evaluate Eq. 4 and Eq. 5 for one charger."""
    w1, w2, w3 = weights.as_tuple()
    sc_min = (
        components.sustainable.lo * w1
        + components.availability.lo * w2
        + (1.0 - components.derouting.lo) * w3
    )
    sc_max = (
        components.sustainable.hi * w1
        + components.availability.hi * w2
        + (1.0 - components.derouting.hi) * w3
    )
    return ScScore(components.charger_id, sc_min, sc_max)


def sc_exact(
    sustainable: float, availability: float, derouting: float, weights: Weights
) -> float:
    """Point-valued SC for ground-truth component values (the oracle view
    the evaluation normalises against)."""
    w1, w2, w3 = weights.as_tuple()
    return sustainable * w1 + availability * w2 + (1.0 - derouting) * w3


@ensure(
    lambda result, scores, k, pad: len(result) <= k
    and len({s.charger_id for s in result}) == len(result)
    and all(
        (a.sc_max, a.sc_min) >= (b.sc_max, b.sc_min)
        for a, b in zip(result, result[1:])
    )
    and (not pad or len(result) == min(k, len(scores))),
    "Eq. 6 must return at most k unique chargers sorted highest-to-lowest",
)
def intersect_top_k(
    scores: list[ScScore], k: int, pad: bool = True
) -> list[ScScore]:
    """Eq. 6: intersect the SC_min top-k with the SC_max top-k.

    The paper states the intersection "contains k chargers"; with noisy
    intervals it can contain fewer, so with ``pad=True`` (the default, and
    what EcoCharge uses) the result is topped up with the best remaining
    chargers by midpoint score until ``k`` entries are reached.  The
    result is sorted by descending SC_max, tie-broken by SC_min then id —
    "highest to lowest rank" per Algorithm 1 line 17.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    by_min = sorted(scores, key=lambda s: (-s.sc_min, s.charger_id))[:k]
    by_max = sorted(scores, key=lambda s: (-s.sc_max, s.charger_id))[:k]
    min_ids = {s.charger_id for s in by_min}
    chosen = [s for s in by_max if s.charger_id in min_ids]
    if pad and len(chosen) < k:
        chosen_ids = {s.charger_id for s in chosen}
        leftovers = sorted(
            (s for s in scores if s.charger_id not in chosen_ids),
            key=lambda s: (-s.midpoint, s.charger_id),
        )
        chosen.extend(leftovers[: k - len(chosen)])
    chosen.sort(key=lambda s: (-s.sc_max, -s.sc_min, s.charger_id))
    return chosen[:k]


def sc_score_batch(
    components: ComponentArrays, weights: Weights
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 4 and Eq. 5 over a whole pool in six elementwise operations.

    Returns ``(sc_min, sc_max)`` float64 arrays aligned with
    ``components.charger_ids``.  The expressions repeat :func:`sc_score`'s
    arithmetic with identical association (``(a*w1 + b*w2) + (1-d)*w3``),
    so every element is bitwise equal to the scalar result — asserted by
    the property tests and the perf experiment driver.
    """
    w1, w2, w3 = weights.as_tuple()
    sc_min = (
        components.sustainable.lo * w1
        + components.availability.lo * w2
        + (1.0 - components.derouting.lo) * w3
    )
    sc_max = (
        components.sustainable.hi * w1
        + components.availability.hi * w2
        + (1.0 - components.derouting.hi) * w3
    )
    return sc_min, sc_max


def intersect_top_k_batch(
    charger_ids: np.ndarray,
    sc_min: np.ndarray,
    sc_max: np.ndarray,
    k: int,
    pad: bool = True,
) -> np.ndarray:
    """Eq. 6 on flat score arrays; returns *row indices* in final order.

    Exactly replicates :func:`intersect_top_k` including every tie-break:
    each ``sorted(key=(-score, id))`` becomes a stable
    ``np.lexsort((ids, -score))`` (lexsort keys are listed last-primary),
    and ids are unique within a pool, so ordering is fully determined.
    The caller materialises :class:`ScScore` dataclasses only for the
    ``<= k`` selected rows.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    by_min = np.lexsort((charger_ids, -sc_min))[:k]
    by_max = np.lexsort((charger_ids, -sc_max))[:k]
    min_ids = set(charger_ids[by_min].tolist())
    chosen = [int(i) for i in by_max if int(charger_ids[i]) in min_ids]
    if pad and len(chosen) < k:
        chosen_ids = {int(charger_ids[i]) for i in chosen}
        midpoint = (sc_min + sc_max) / 2.0
        for i in np.lexsort((charger_ids, -midpoint)):
            if len(chosen) >= k:
                break
            if int(charger_ids[i]) not in chosen_ids:
                chosen.append(int(i))
    if not chosen:
        return np.empty(0, dtype=np.int64)
    rows = np.array(chosen, dtype=np.int64)
    order = np.lexsort((charger_ids[rows], -sc_min[rows], -sc_max[rows]))
    return rows[order][:k]


def rank_by_midpoint(scores: list[ScScore], k: int) -> list[ScScore]:
    """Alternative ranking used by the intersection ablation: ignore the
    two-scenario structure and sort by midpoint score."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return sorted(scores, key=lambda s: (-s.midpoint, s.charger_id))[:k]
