"""All-kNN self-join (the Spitfire-style Mode-2 operator).

Section VI-B: "an AkNN query can alternatively be viewed as a kNN
Self-Join ... such an operator could be useful shall we decide to
implement EcoCharge in Mode 2 (cloud mode)."  A cloud EIS serving many
vehicles benefits from precomputed charger neighborhoods: when a vehicle's
best charger is crowded, its precomputed kNN list supplies redirection
alternatives without a fresh spatial query.

The implementation follows the distributed-main-memory recipe the paper
cites (grid partitioning + bounded refinement), single-process here: hash
points into a uniform grid sized ~sqrt(n) cells, then answer each point's
kNN by ring-expansion over neighbouring cells with a distance bound.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterator, Sequence, TypeVar

from ..spatial.bbox import BoundingBox
from ..spatial.geometry import Point

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class AknnResult:
    """kNN graph: ``neighbours[i]`` lists (distance, index) pairs sorted
    ascending, excluding the point itself."""

    points: tuple[Point, ...]
    neighbours: tuple[tuple[tuple[float, int], ...], ...]

    def __len__(self) -> int:
        return len(self.points)

    def of(self, index: int) -> tuple[tuple[float, int], ...]:
        """The kNN list of point ``index`` as (distance, index) pairs."""
        return self.neighbours[index]

    def neighbour_ids(self, index: int) -> list[int]:
        """Just the neighbour indices of point ``index``, nearest first."""
        return [i for __, i in self.neighbours[index]]


def aknn_self_join(points: Sequence[Point], k: int) -> AknnResult:
    """Compute the kNN graph of ``points`` (self excluded).

    Grid-partitioned: expected near-linear on uniform-ish data, with a
    correct worst case (rings expand until the kth distance is certified).
    Ties are broken by index for determinism.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = len(points)
    if n == 0:
        return AknnResult((), ())
    k = min(k, n - 1)
    if k == 0:
        return AknnResult(tuple(points), tuple(() for __ in points))

    bounds = BoundingBox.from_points(points).expanded(1e-9)
    # ~sqrt(n) cells per axis keeps expected occupancy O(sqrt n) total.
    cells_per_axis = max(1, int(math.sqrt(n)))
    cell_w = bounds.width / cells_per_axis or 1.0
    cell_h = bounds.height / cells_per_axis or 1.0

    grid: dict[tuple[int, int], list[int]] = {}
    cell_of: list[tuple[int, int]] = []
    for index, point in enumerate(points):
        cx = min(cells_per_axis - 1, int((point.x - bounds.min_x) / cell_w))
        cy = min(cells_per_axis - 1, int((point.y - bounds.min_y) / cell_h))
        grid.setdefault((cx, cy), []).append(index)
        cell_of.append((cx, cy))

    def ring_cells(center: tuple[int, int], radius: int) -> Iterator[tuple[int, int]]:
        cx, cy = center
        if radius == 0:
            yield center
            return
        for dx in range(-radius, radius + 1):
            for dy in (-radius, radius):
                yield (cx + dx, cy + dy)
        for dy in range(-radius + 1, radius):
            for dx in (-radius, radius):
                yield (cx + dx, cy + dy)

    neighbours: list[tuple[tuple[float, int], ...]] = []
    max_radius = cells_per_axis  # expanding past the whole grid is final
    for index, point in enumerate(points):
        # Max-heap of (negated distance, -index) holding the best k so far.
        heap: list[tuple[float, int]] = []
        radius = 0
        while radius <= max_radius:
            for cell in ring_cells(cell_of[index], radius):
                for other in grid.get(cell, ()):
                    if other == index:
                        continue
                    dist = point.distance_to(points[other])
                    entry = (-dist, -other)
                    if len(heap) < k:
                        heapq.heappush(heap, entry)
                    elif entry > heap[0]:
                        heapq.heapreplace(heap, entry)
            # Certification: every unexplored cell is at least
            # (radius) * min(cell_w, cell_h) away from the query point's
            # cell border; stop once the kth distance is inside that.
            if len(heap) == k:
                kth = -heap[0][0]
                certified = radius * min(cell_w, cell_h)
                if kth <= certified:
                    break
            radius += 1
        result = sorted(((-d, -i) for d, i in heap), key=lambda t: (t[0], t[1]))
        neighbours.append(tuple(result))
    return AknnResult(tuple(points), tuple(neighbours))


def knn_graph_edges(result: AknnResult) -> list[tuple[int, int, float]]:
    """Flatten the kNN graph to (source, target, distance) edges."""
    edges = []
    for source, row in enumerate(result.neighbours):
        for dist, target in row:
            edges.append((source, target, dist))
    return edges
