"""Dynamic Caching (Section IV-C).

EcoCharge's bottom-up reuse strategy: solved sub-problems (the scored
candidate pool behind an Offering Table) are stored and *adapted* for
nearby later locations instead of recomputed.  A cached solution is
reusable when

* the new query location is within the range-distance parameter ``Q`` of
  the location the solution was computed for, and
* the solution is still temporally valid — the ECs carry a natural expiry
  (the caching hypothesis: ``L``, ``A``, ``D`` invalidate after some time
  ``t``).

The cache also fronts the simulated external-API responses on the server
side (see :mod:`repro.server.cache`); this module is the client-side
solution cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from ..analysis.contracts import ensure
from ..chargers.charger import Charger
from ..spatial.geometry import Point
from .scoring import ComponentScores


@dataclass(slots=True)
class CacheStats:
    """Hit/miss bookkeeping surfaced by the experiments."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    out_of_range: int = 0
    #: Entries dropped because the live graph moved past the epoch they
    #: were computed on (:meth:`DynamicCache.observe_epoch`) — distinct
    #: from ``expirations`` (time) and ``out_of_range`` (space).
    epoch_invalidations: int = 0

    @property
    def lookups(self) -> int:
        hits = self.hits
        misses = self.misses
        return hits + misses

    @property
    def hit_rate(self) -> float:
        # Read each counter exactly once: under concurrent mutation a
        # re-read between the numerator and denominator can observe a
        # different generation of the stats and report a rate > 1.
        hits = self.hits
        total = hits + self.misses
        return hits / total if total else 0.0


@dataclass(frozen=True, slots=True)
class CachedSolution:
    """The raw material behind one Offering Table.

    Keeping the *scored pool* (not just the top-k) is what makes
    adaptation sound: a charger that was rank 7 at the previous location
    can surface into the top-k at the new one.
    """

    segment_index: int
    origin: Point
    generated_at_h: float
    eta_h: float
    radius_km: float
    pool: tuple[Charger, ...]
    components: tuple[ComponentScores, ...]
    #: Live-graph *weight-changing* epoch token the solution was computed
    #: on (the manager's ``weights_version``; 0 is the static network).
    #: A solution is only reusable on its own token —
    #: :meth:`DynamicCache.observe_epoch` enforces it — while no-op epoch
    #: bumps, which leave the token unchanged, never cost the entry.
    epoch: int = 0


class DynamicCache:
    """Single-trip solution cache with ``Q``-range and TTL validity."""

    def __init__(self, range_km: float = 5.0, ttl_h: float = 1.0) -> None:
        if range_km <= 0:
            raise ValueError("range_km (Q) must be positive")
        if ttl_h <= 0:
            raise ValueError("ttl_h must be positive")
        self.range_km = range_km
        self.ttl_h = ttl_h
        self.stats = CacheStats()
        self._entry: CachedSolution | None = None
        # One lock covers entry + stats together: a shard's worker and a
        # checkpointing observer must never see a hit counted against an
        # entry that has already been replaced (torn read).  Re-entrant
        # because contract-checked callers may nest public methods.
        self._lock = threading.RLock()

    @ensure(
        lambda result, self, origin, now_h: result is None
        or (
            origin.distance_to(result.origin) <= self.range_km
            and now_h - result.generated_at_h <= self.ttl_h
        ),
        "Section IV-C admission: a reused solution must be within Q and "
        "temporally valid",
    )
    def lookup(self, origin: Point, now_h: float) -> CachedSolution | None:
        """The cached solution if reusable for a query at ``origin``.

        Misses are categorised (empty / expired / out of Q range) for the
        Q-opt experiment's diagnostics.
        """
        with self._lock:
            entry = self._entry
            if entry is None:
                self.stats.misses += 1
                return None
            if now_h - entry.generated_at_h > self.ttl_h:
                self.stats.misses += 1
                self.stats.expirations += 1
                self._entry = None
                return None
            if origin.distance_to(entry.origin) > self.range_km:
                self.stats.misses += 1
                self.stats.out_of_range += 1
                return None
            self.stats.hits += 1
            return entry

    def observe_epoch(self, epoch: int) -> bool:
        """Fence the cache against the live graph's current ``epoch``.

        Drops the entry (counting ``epoch_invalidations``) when it was
        computed on a *different* epoch — derouting distances from an old
        graph must never be adapted onto the new one, whatever their TTL
        or range say.  Returns True when an entry was invalidated.  Call
        before :meth:`lookup`; the check is separate so a static-network
        deployment (no epochs) pays nothing.
        """
        with self._lock:
            entry = self._entry
            if entry is None or entry.epoch == epoch:
                return False
            self._entry = None
            self.stats.epoch_invalidations += 1
            return True

    def store(self, solution: CachedSolution) -> None:
        """Replace the cached solution with ``solution``."""
        with self._lock:
            self._entry = solution

    def clear(self) -> None:
        """Drop the cached solution and reset statistics (new trip)."""
        with self._lock:
            self._entry = None
            self.stats = CacheStats()

    @property
    def current(self) -> CachedSolution | None:
        return self._entry

    # -- transactional state (durability / torn-segment rollback) -----------

    def checkpoint(self) -> "CacheState":
        """An immutable copy of the full cache state.

        The entry is already frozen; the stats are copied so later lookups
        cannot mutate the checkpoint.  Used as the per-segment transaction
        boundary: a segment that fails mid-mutation is rolled back to its
        checkpoint, and the durability journal records the state a
        recovered session must restore.
        """
        with self._lock:
            return CacheState(entry=self._entry, stats=replace(self.stats))

    def restore(self, state: "CacheState") -> None:
        """Reset the cache to a previously captured :class:`CacheState`."""
        with self._lock:
            self._entry = state.entry
            self.stats = replace(state.stats)


@dataclass(frozen=True, slots=True)
class CacheState:
    """A point-in-time copy of a :class:`DynamicCache`'s state."""

    entry: CachedSolution | None
    stats: CacheStats
