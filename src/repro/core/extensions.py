"""Future-work extensions from the paper's conclusion (Section VII).

Two extensions the authors name:

* **Smart-grid / tariff awareness** — an extended four-objective score
  ``SC4 = L*w1 + A*w2 + (1-D)*w3 + (1-C)*w4`` where ``C`` is the
  normalised time-of-use energy cost (see
  :mod:`repro.estimation.tariff`).  :class:`TariffAwareRanker` wraps the
  standard EcoCharge pipeline with the extra term.

* **Offering-table load balancing** — "investigate the balance of the
  produced traffic to chargers by the suggested Offering Tables, and
  monitor the congestion to redirect drivers to alternative EV charging
  stations".  :class:`ChargerLoadBalancer` tracks how many vehicles the
  system has already steered to each charger per time slot and feeds a
  crowding penalty back into availability, so a fleet of EcoCharge
  vehicles spreads over sites instead of stampeding the single best one.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, replace

from ..chargers.charger import Charger
from ..estimation.tariff import TariffEstimator
from ..network.path import Trip, TripSegment
from .caching import CacheStats
from .ecocharge import EcoChargeConfig, EcoChargeRanker
from .environment import ChargingEnvironment
from .intervals import Interval
from .offering import OfferingTable, build_table
from .scoring import ComponentScores, ScScore, Weights, intersect_top_k


@dataclass(frozen=True, slots=True)
class ExtendedWeights:
    """Four-objective weights: (L, A, D, C) summing to 1."""

    sustainable: float
    availability: float
    derouting: float
    cost: float

    def __post_init__(self) -> None:
        values = (self.sustainable, self.availability, self.derouting, self.cost)
        if any(w < 0 for w in values):
            raise ValueError("weights must be non-negative")
        if abs(sum(values) - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {sum(values)}")

    @classmethod
    def equal(cls) -> "ExtendedWeights":
        return cls(0.25, 0.25, 0.25, 0.25)

    def base_weights(self) -> Weights:
        """The three-objective projection, renormalised (used to drive the
        inner EcoCharge pipeline before the cost term is applied)."""
        total = self.sustainable + self.availability + self.derouting
        if total <= 0:
            return Weights.equal()
        return Weights(
            self.sustainable / total, self.availability / total, self.derouting / total
        )


class TariffAwareRanker:
    """EcoCharge extended with the time-of-use energy-cost objective.

    Strategy: run the standard interval pipeline for a generous candidate
    count (``k * overshoot``), then re-rank with the four-term score that
    adds ``(1 - C) * w4``.  The cost term is per-ETA (not per-charger) at
    tariff granularity, so it shifts ranking only when it is combined with
    per-charger terms — exactly how off-peak awareness should behave.
    """

    name = "ecocharge-tariff"

    def __init__(
        self,
        environment: ChargingEnvironment,
        config: EcoChargeConfig | None = None,
        weights: ExtendedWeights | None = None,
        tariff: TariffEstimator | None = None,
        overshoot: int = 3,
    ) -> None:
        if overshoot < 1:
            raise ValueError("overshoot must be at least 1")
        self.weights = weights if weights is not None else ExtendedWeights.equal()
        base_config = config if config is not None else EcoChargeConfig()
        self.config = replace(
            base_config,
            weights=self.weights.base_weights(),
            k=base_config.k * overshoot,
        )
        self._final_k = base_config.k
        self._inner = EcoChargeRanker(environment, self.config)
        self.tariff = tariff if tariff is not None else TariffEstimator()

    def reset(self) -> None:
        """Drop per-trip state of the wrapped EcoCharge ranker."""
        self._inner.reset()

    def rank_segment(
        self,
        trip: Trip,
        segment: TripSegment,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
    ) -> OfferingTable:
        """Rank with the four-objective score (L, A, D, energy cost)."""
        wide = self._inner.rank_segment(trip, segment, eta_h, now_h, next_segment)
        cost = self.tariff.estimate(eta_h, now_h)
        w = self.weights
        rescored: list[ScScore] = []
        by_id = {}
        for entry in wide:
            sc_min = (
                entry.sustainable.lo * w.sustainable
                + entry.availability.lo * w.availability
                + (1.0 - entry.derouting.lo) * w.derouting
                + (1.0 - cost.lo) * w.cost
            )
            sc_max = (
                entry.sustainable.hi * w.sustainable
                + entry.availability.hi * w.availability
                + (1.0 - entry.derouting.hi) * w.derouting
                + (1.0 - cost.hi) * w.cost
            )
            rescored.append(ScScore(entry.charger_id, sc_min, sc_max))
            by_id[entry.charger_id] = entry
        chosen = intersect_top_k(rescored, self._final_k)
        rows = []
        for score in chosen:
            entry = by_id[score.charger_id]
            rows.append(
                (score, entry.charger, entry.sustainable, entry.availability,
                 entry.derouting, eta_h)
            )
        return build_table(
            segment_index=segment.index,
            origin=segment.midpoint,
            generated_at_h=wide.generated_at_h,
            radius_km=wide.radius_km,
            ranked=rows,
            adapted_from=wide.adapted_from,
        )

    @property
    def cache_stats(self) -> CacheStats:
        return self._inner.cache_stats


class ChargerLoadBalancer:
    """Feedback loop spreading a fleet's offerings over chargers.

    Every accepted recommendation registers an expected arrival in a time
    slot; the balancer then damps the availability interval of crowded
    chargers (in proportion to assignments per plug), which pushes later
    vehicles toward alternatives.  This is the paper's planned congestion
    redirection, implemented as a wrapper any SegmentRanker's environment
    can share.
    """

    def __init__(self, slot_h: float = 0.5, penalty_per_vehicle: float = 0.25) -> None:
        if slot_h <= 0:
            raise ValueError("slot_h must be positive")
        if penalty_per_vehicle < 0:
            raise ValueError("penalty must be non-negative")
        self.slot_h = slot_h
        self.penalty_per_vehicle = penalty_per_vehicle
        self._assignments: dict[tuple[int, int], int] = defaultdict(int)

    def _slot(self, time_h: float) -> int:
        return int(time_h / self.slot_h)

    def register(self, charger_id: int, eta_h: float) -> None:
        """Record that a vehicle was steered to ``charger_id`` at ``eta_h``."""
        self._assignments[(charger_id, self._slot(eta_h))] += 1

    def load(self, charger_id: int, eta_h: float) -> int:
        """Vehicles already steered to ``charger_id`` in the ETA slot."""
        return self._assignments.get((charger_id, self._slot(eta_h)), 0)

    def adjusted_availability(
        self, charger: Charger, availability: Interval, eta_h: float
    ) -> Interval:
        """Availability damped by expected crowding at the ETA slot."""
        queued = self.load(charger.charger_id, eta_h)
        if queued == 0:
            return availability
        factor = max(0.0, 1.0 - self.penalty_per_vehicle * queued / charger.plugs)
        return Interval(availability.lo * factor, availability.hi * factor)

    def adjust_components(
        self,
        chargers: list[Charger],
        components: list[ComponentScores],
        eta_h: float,
    ) -> list[ComponentScores]:
        """Apply crowding penalties to a scored pool."""
        adjusted = []
        for charger, comp in zip(chargers, components):
            adjusted.append(
                replace(
                    comp,
                    availability=self.adjusted_availability(
                        charger, comp.availability, eta_h
                    ),
                )
            )
        return adjusted

    def clear(self) -> None:
        """Forget all registered assignments (new planning epoch)."""
        self._assignments.clear()


class BalancedEcoChargeRanker:
    """EcoCharge + load balancing: re-ranks under crowding penalties and
    registers the top pick so subsequent vehicles see the load."""

    name = "ecocharge-balanced"

    def __init__(
        self,
        environment: ChargingEnvironment,
        balancer: ChargerLoadBalancer,
        config: EcoChargeConfig | None = None,
    ) -> None:
        self._env = environment
        self.balancer = balancer
        self.config = config if config is not None else EcoChargeConfig()
        self._inner = EcoChargeRanker(environment, self.config)

    def reset(self) -> None:
        """Per-trip reset; the balancer's fleet-wide state persists."""
        self._inner.reset()

    def rank_segment(
        self,
        trip: Trip,
        segment: TripSegment,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
    ) -> OfferingTable:
        """Rank under crowding penalties and register the top pick."""
        table = self._inner.rank_segment(trip, segment, eta_h, now_h, next_segment)
        # Re-rank the offered entries under current crowding.
        chargers = [entry.charger for entry in table]
        components = [
            ComponentScores(
                entry.charger_id, entry.sustainable, entry.availability, entry.derouting
            )
            for entry in table
        ]
        adjusted = self.balancer.adjust_components(chargers, components, eta_h)
        scores = []
        by_id = {}
        from .scoring import sc_score

        for charger, comp in zip(chargers, adjusted):
            scores.append(sc_score(comp, self.config.weights))
            by_id[comp.charger_id] = (charger, comp)
        chosen = intersect_top_k(scores, min(self.config.k, len(scores)))
        rows = []
        for score in chosen:
            charger, comp = by_id[score.charger_id]
            rows.append(
                (score, charger, comp.sustainable, comp.availability, comp.derouting, eta_h)
            )
        rebalanced = build_table(
            segment_index=segment.index,
            origin=segment.midpoint,
            generated_at_h=table.generated_at_h,
            radius_km=table.radius_km,
            ranked=rows,
            adapted_from=table.adapted_from,
        )
        if rebalanced.best is not None:
            self.balancer.register(rebalanced.best.charger_id, eta_h)
        return rebalanced
