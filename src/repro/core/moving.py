"""Time-parameterized kNN for moving queries with uncertain velocity.

The related work the paper builds on (Section VI-B: Huan et al., Kollios
et al.) answers kNN for a query object whose *future position* is only
known up to a velocity range.  This module provides that substrate: a
vehicle moving along a path segment with speed in ``[v_lo, v_hi]``
occupies, at any future instant, an *interval of path offsets*; distances
to candidate sites are therefore intervals, and the kNN answer splits into

* the **certain** set — sites in the kNN for *every* possible position, and
* the **possible** set — sites in the kNN for *some* possible position,

with certain ⊆ possible.  EcoCharge's ETA-interval machinery is the
1-dimensional shadow of this; the full machinery is exposed for
moving-object workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..intervals import Interval
from ..spatial.geometry import Point, Segment


@dataclass(frozen=True, slots=True)
class MovingQuery:
    """A query point moving along ``segment`` with uncertain speed.

    The object departs ``segment.start`` at ``start_time_h`` and moves
    toward ``segment.end`` with a constant but unknown speed drawn from
    ``speed_kmh``; it stops at the segment end (parking / next-segment
    handoff is the caller's concern).
    """

    segment: Segment
    speed_kmh: Interval
    start_time_h: float

    def __post_init__(self) -> None:
        if not self.speed_kmh.is_strictly_positive:
            raise ValueError("speed range must be strictly positive")

    def offset_interval_km(self, time_h: float) -> Interval:
        """Possible along-segment offsets at ``time_h`` (clamped)."""
        elapsed = time_h - self.start_time_h
        if elapsed < 0:
            raise ValueError("query time precedes departure")
        length = self.segment.length
        return Interval(
            min(length, self.speed_kmh.lo * elapsed),
            min(length, self.speed_kmh.hi * elapsed),
        )

    def uncertainty_region(self, time_h: float) -> Segment:
        """The sub-segment the object occupies at ``time_h``."""
        offsets = self.offset_interval_km(time_h)
        length = self.segment.length
        if length == 0:
            return Segment(self.segment.start, self.segment.start)
        return Segment(
            self.segment.interpolate(offsets.lo / length),
            self.segment.interpolate(offsets.hi / length),
        )

    def distance_interval(self, site: Point, time_h: float) -> Interval:
        """Possible distances from the object to ``site`` at ``time_h``.

        Minimum is the point-to-subsegment distance; maximum is attained
        at one of the subsegment's endpoints (distance along a segment is
        convex).
        """
        region = self.uncertainty_region(time_h)
        d_min = region.distance_to_point(site)
        d_max = max(region.start.distance_to(site), region.end.distance_to(site))
        return Interval(d_min, d_max)

    def arrival_interval_h(self) -> Interval:
        """When the object reaches the segment end."""
        length = self.segment.length
        return Interval(
            self.start_time_h + length / self.speed_kmh.hi,
            self.start_time_h + length / self.speed_kmh.lo,
        )


@dataclass(frozen=True, slots=True)
class UncertainKnnResult:
    """Possible/certain kNN answer at one instant."""

    time_h: float
    k: int
    certain: frozenset[int]
    possible: frozenset[int]

    def __post_init__(self) -> None:
        if not self.certain <= self.possible:
            raise ValueError("certain results must be a subset of possible results")


def uncertain_knn(
    query: MovingQuery,
    candidates: Sequence[tuple[int, Point]],
    time_h: float,
    k: int,
) -> UncertainKnnResult:
    """Possible and certain kNN sets at ``time_h``.

    Using each candidate's distance interval ``[d_min, d_max]``:

    * a candidate is **possible** iff fewer than ``k`` others are
      *certainly closer* (their ``d_max`` < this one's ``d_min``);
    * a candidate is **certain** iff fewer than ``k`` others are
      *possibly closer* (their ``d_min`` <= this one's ``d_max``).

    These are the standard dominance criteria of the uncertain-kNN
    literature; both sets are exact for the interval model.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if not candidates:
        raise ValueError("need at least one candidate")
    intervals = {
        cand_id: query.distance_interval(point, time_h) for cand_id, point in candidates
    }
    possible: set[int] = set()
    certain: set[int] = set()
    for cand_id, interval in intervals.items():
        certainly_closer = sum(
            1
            for other_id, other in intervals.items()
            if other_id != cand_id and other.certainly_less_than(interval)
        )
        possibly_closer = sum(
            1
            for other_id, other in intervals.items()
            if other_id != cand_id and not other.certainly_greater_than(interval)
        )
        if certainly_closer < k:
            possible.add(cand_id)
        if possibly_closer < k:
            certain.add(cand_id)
    return UncertainKnnResult(
        time_h=time_h, k=k, certain=frozenset(certain), possible=frozenset(possible)
    )


def knn_timeline(
    query: MovingQuery,
    candidates: Sequence[tuple[int, Point]],
    k: int,
    step_h: float = 1.0 / 60.0,
) -> list[UncertainKnnResult]:
    """Possible/certain kNN sampled over the query's whole travel window.

    Runs from departure until the *latest* possible arrival, so callers
    see the answer both while the position is uncertain and after it has
    collapsed to the segment end.
    """
    if step_h <= 0:
        raise ValueError("step_h must be positive")
    end = query.arrival_interval_h().hi
    results = []
    t = query.start_time_h
    while t <= end + 1e-12:
        results.append(uncertain_knn(query, candidates, t, k))
        t += step_h
    return results
