"""The evaluation's baseline methods (Section V-A).

* :class:`BruteForceRanker` — exhaustive search over the entire charger
  pool; defines the 100 % Sustainability Score reference.
* :class:`QuadtreeRanker` — prunes the pool to the spatially nearest
  candidates via a PR quadtree before refinement, trading SC for speed.
* :class:`RandomRanker` — fills the Offering Table with random chargers
  inside the radius ``R``, ignoring the objectives entirely.
"""

from __future__ import annotations

import numpy as np

from ..chargers.charger import Charger
from ..network.path import Trip, TripSegment
from .environment import ChargingEnvironment
from .intervals import Interval
from .offering import OfferingTable, build_table
from .ranking import refine_pool
from .scoring import ScScore, Weights


class BruteForceRanker:
    """Exhaustive search over all of ``B`` with unbounded path searches."""

    name = "brute-force"

    def __init__(self, environment: ChargingEnvironment, k: int = 5, weights: Weights | None = None) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self._env = environment
        self.k = k
        self.weights = weights if weights is not None else Weights.equal()

    def rank_segment(
        self,
        trip: Trip,
        segment: TripSegment,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
    ) -> OfferingTable:
        """Rank the entire charger set for one segment (no pruning)."""
        return refine_pool(
            self._env,
            trip,
            segment,
            pool=self._env.registry.all(),
            eta_h=eta_h,
            now_h=now_h,
            k=self.k,
            weights=self.weights,
            next_segment=next_segment,
            search_budget_h=None,  # whole environment
        )

    def reset(self) -> None:
        """Stateless: nothing to clear."""


class QuadtreeRanker:
    """Index-pruned search: refine only the spatially nearest candidates.

    ``candidate_count`` controls the pruning aggressiveness: more
    candidates means better SC and more refinement work.  The quadtree
    answers the candidate query in ``O(log n)``, which is where the
    baseline's speedup over Brute Force comes from.
    """

    name = "index-quadtree"

    def __init__(
        self,
        environment: ChargingEnvironment,
        k: int = 5,
        weights: Weights | None = None,
        candidate_count: int | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self._env = environment
        self.k = k
        self.weights = weights if weights is not None else Weights.equal()
        if candidate_count is None:
            # Aggressive spatial pruning: a flat 4k candidates regardless
            # of environment size.  This is the baseline's defining
            # trade-off — the top-SC chargers (great solar, quiet site)
            # are frequently *not* among the spatially nearest, which is
            # what costs it the 15-20 % SC the paper reports.
            candidate_count = max(4 * k, 20)
        if candidate_count < k:
            raise ValueError("candidate_count must be at least k")
        self.candidate_count = candidate_count

    def rank_segment(
        self,
        trip: Trip,
        segment: TripSegment,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
    ) -> OfferingTable:
        """Rank only the spatially nearest candidates for one segment."""
        pool = self._env.registry.nearest(
            segment.midpoint, k=self.candidate_count, kind="quadtree"
        )
        # Unlike EcoCharge, this method has no radius parameter, so its
        # path searches are unbudgeted (whole environment) — the index
        # only shrinks the refinement pool, not the routing work.
        return refine_pool(
            self._env,
            trip,
            segment,
            pool=pool,
            eta_h=eta_h,
            now_h=now_h,
            k=self.k,
            weights=self.weights,
            next_segment=next_segment,
            search_budget_h=None,
        )

    def reset(self) -> None:
        """Stateless: nothing to clear."""


class RandomRanker:
    """Random Offering Tables within radius ``R`` (objectives ignored).

    The scores recorded in the table are placeholders (zero-width unknown
    intervals); the evaluation grades the *selection* against ground
    truth, which is where this method collapses to its ~35-40 % SC.
    """

    name = "random"

    def __init__(
        self,
        environment: ChargingEnvironment,
        k: int = 5,
        radius_km: float = 50.0,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if radius_km <= 0:
            raise ValueError("radius_km must be positive")
        self._env = environment
        self.k = k
        self.radius_km = radius_km
        self._rng = np.random.default_rng(seed)
        self._seed = seed

    def rank_segment(
        self,
        trip: Trip,
        segment: TripSegment,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
    ) -> OfferingTable:
        """Fill the table with random chargers inside the radius."""
        pool = self._env.registry.within_radius(
            segment.midpoint, self.radius_km, kind="grid"
        )
        if not pool:
            pool = self._env.registry.nearest(segment.midpoint, k=self.k)
        picks = list(pool)
        self._rng.shuffle(picks)
        picks = picks[: self.k]
        unknown = Interval(0.0, 1.0)
        rows = [
            (ScScore(charger.charger_id, 0.0, 0.0), charger, unknown, unknown, unknown, eta_h)
            for charger in picks
        ]
        return build_table(
            segment_index=segment.index,
            origin=segment.midpoint,
            generated_at_h=now_h,
            radius_km=self.radius_km,
            ranked=rows,
        )

    def reset(self) -> None:
        """Re-seed so repeated runs over the same trip are reproducible."""
        self._rng = np.random.default_rng(self._seed)
