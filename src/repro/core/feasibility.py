"""Vehicle feasibility filtering.

The paper's Filtering phase "discards non-qualifying chargers"; beyond the
radius R, real qualification is vehicle-specific: a charger the battery
cannot reach (and return from) is not an option, and a plug the car
cannot use is not a charger.  This module expresses those constraints and
plugs into :class:`~repro.core.ecocharge.EcoChargeRanker` as an optional
pre-filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chargers.charger import Charger, PlugType, Vehicle
from ..spatial.geometry import Point

#: Straight-line distances understate road distances; reachability checks
#: inflate them by this factor to stay conservative.
ROAD_DETOUR_FACTOR = 1.3

#: Never plan to arrive with a fully drained battery.
DEFAULT_RESERVE_SOC = 0.08


@dataclass(frozen=True, slots=True)
class VehicleConstraints:
    """What makes a charger qualify for a specific vehicle."""

    vehicle: Vehicle
    allowed_plugs: frozenset[PlugType] = frozenset(PlugType)
    reserve_soc: float = DEFAULT_RESERVE_SOC
    min_deliverable_kw: float = 0.0

    def __post_init__(self) -> None:
        if not self.allowed_plugs:
            raise ValueError("at least one plug type must be allowed")
        if not 0.0 <= self.reserve_soc < 1.0:
            raise ValueError("reserve_soc must be in [0, 1)")
        if self.min_deliverable_kw < 0:
            raise ValueError("min_deliverable_kw must be non-negative")

    @property
    def usable_range_km(self) -> float:
        """Range available for derouting after keeping the reserve."""
        usable_soc = max(0.0, self.vehicle.state_of_charge - self.reserve_soc)
        return (
            self.vehicle.battery_kwh * usable_soc / self.vehicle.consumption_kwh_per_km
        )

    def qualifies(self, charger: Charger, origin: Point) -> bool:
        """Plug compatibility, power floor, and round-trip reachability."""
        if charger.plug_type not in self.allowed_plugs:
            return False
        deliverable = charger.deliverable_kw(
            self.vehicle.max_ac_kw, self.vehicle.max_dc_kw
        )
        if deliverable < self.min_deliverable_kw:
            return False
        crow_km = origin.distance_to(charger.point)
        # Out and back, with the road-vs-crow inflation.
        return 2.0 * crow_km * ROAD_DETOUR_FACTOR <= self.usable_range_km


def filter_feasible(
    pool: list[Charger], constraints: VehicleConstraints, origin: Point
) -> list[Charger]:
    """Chargers from ``pool`` the constrained vehicle can actually use.

    Preserves input order (the radius query's nearest-first ordering).
    """
    return [c for c in pool if constraints.qualifies(c, origin)]
