"""Core contribution: CkNN-EC queries, SC scoring, EcoCharge, baselines."""

from .aknn import AknnResult, aknn_self_join, knn_graph_edges
from .baselines import BruteForceRanker, QuadtreeRanker, RandomRanker
from .extensions import (
    BalancedEcoChargeRanker,
    ChargerLoadBalancer,
    ExtendedWeights,
    TariffAwareRanker,
)
from .feasibility import VehicleConstraints, filter_feasible
from .moving import MovingQuery, UncertainKnnResult, knn_timeline, uncertain_knn
from .caching import CachedSolution, CacheStats, DynamicCache
from .cknn import (
    SplitPoint,
    coverage_is_complete,
    split_points_1nn,
    split_points_knn_sampled,
)
from .ecocharge import EcoCharge, EcoChargeConfig, EcoChargeRanker
from .environment import ChargingEnvironment, TrueComponents
from .intervals import Interval, hull_of, weighted_sum
from .offering import OfferingEntry, OfferingTable, build_table
from .ranking import RankingRun, SegmentRanker, refine_pool, run_over_trip
from .scoring import (
    ABLATION_CONFIGS,
    ComponentScores,
    ScScore,
    Weights,
    intersect_top_k,
    rank_by_midpoint,
    sc_exact,
    sc_score,
)

__all__ = [
    "ABLATION_CONFIGS",
    "AknnResult",
    "BalancedEcoChargeRanker",
    "BruteForceRanker",
    "CacheStats",
    "CachedSolution",
    "ChargerLoadBalancer",
    "ChargingEnvironment",
    "ComponentScores",
    "DynamicCache",
    "EcoCharge",
    "EcoChargeConfig",
    "EcoChargeRanker",
    "ExtendedWeights",
    "Interval",
    "MovingQuery",
    "OfferingEntry",
    "OfferingTable",
    "QuadtreeRanker",
    "RandomRanker",
    "RankingRun",
    "ScScore",
    "SegmentRanker",
    "SplitPoint",
    "TariffAwareRanker",
    "TrueComponents",
    "UncertainKnnResult",
    "VehicleConstraints",
    "Weights",
    "aknn_self_join",
    "build_table",
    "coverage_is_complete",
    "filter_feasible",
    "hull_of",
    "intersect_top_k",
    "knn_graph_edges",
    "knn_timeline",
    "rank_by_midpoint",
    "refine_pool",
    "run_over_trip",
    "sc_exact",
    "sc_score",
    "split_points_1nn",
    "split_points_knn_sampled",
    "uncertain_knn",
    "weighted_sum",
]
