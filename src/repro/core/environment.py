"""The charging environment: everything the ranking algorithms query.

Bundles the road network, the charger set ``B``, and the three Estimated
Component services (plus ETA) behind two views:

* :meth:`ChargingEnvironment.score_pool` — the *forecast* view used by the
  ranking algorithms (interval-valued, Algorithm 1 lines 4-10);
* :meth:`ChargingEnvironment.true_components` — the *oracle* view used by
  the evaluation to compute the ground-truth SC every method is graded
  against (the brute-force optimum defines 100 %, Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..chargers.charger import Charger
from ..chargers.registry import ChargerRegistry
from ..estimation.availability import AvailabilityEstimator
from ..estimation.derouting import DeroutingEstimator
from ..estimation.eta import EtaEstimator
from ..estimation.sustainable import SustainableChargingEstimator
from ..estimation.traffic import TrafficModel
from ..estimation.weather import WeatherModel
from ..network.distance_engine import DistanceEngine
from ..network.epochs import GraphEpochManager
from ..network.graph import RoadNetwork
from ..network.path import TripSegment
from ..observability.deadline import NEVER_EXPIRES, CancellationToken
from ..observability.recorder import NOOP_TELEMETRY, Telemetry
from .interval_array import ComponentArrays, IntervalArray
from .scoring import ComponentScores


@dataclass(frozen=True, slots=True)
class TrueComponents:
    """Ground-truth (point-valued) normalised components for one charger."""

    charger_id: int
    sustainable: float
    availability: float
    derouting: float


class ChargingEnvironment:
    """Road network + chargers + estimators, wired together."""

    def __init__(
        self,
        network: RoadNetwork,
        registry: ChargerRegistry,
        weather: WeatherModel | None = None,
        traffic: TrafficModel | None = None,
        seed: int = 0,
        charging_window_h: float = 1.0,
        engine: str | DistanceEngine = "dijkstra",
        telemetry: Telemetry = NOOP_TELEMETRY,
    ) -> None:
        self.network = network
        self.registry = registry
        self.weather = weather if weather is not None else WeatherModel(seed=seed)
        self.traffic = traffic if traffic is not None else TrafficModel(seed=seed)
        self.sustainable = SustainableChargingEstimator(registry, self.weather)
        self.availability = AvailabilityEstimator(registry, seed=seed)
        #: One shared distance engine: every shortest-path query made on
        #: behalf of this environment (forecast pricing, oracle grading,
        #: chaos re-rankings) funnels through the same memoised instance.
        self.engine = (
            engine if isinstance(engine, DistanceEngine) else DistanceEngine(network, backend=engine)
        )
        self.derouting = DeroutingEstimator(network, self.traffic, engine=self.engine)
        self.eta = EtaEstimator(self.traffic)
        if charging_window_h <= 0:
            raise ValueError("charging window must be positive")
        self.charging_window_h = charging_window_h
        self.telemetry = telemetry
        self.engine.telemetry = telemetry
        #: The active request's cancellation token (scheduler-installed);
        #: the no-op default keeps uncancellable callers checkpoint-free.
        self.cancellation: CancellationToken = NEVER_EXPIRES
        #: Live-graph epoch manager (None = static network).
        self.epochs: GraphEpochManager | None = None

    def set_engine_backend(self, backend: str) -> None:
        """Switch the shared distance engine backend ("dijkstra" | "ch")."""
        self.engine.set_backend(backend)

    def set_telemetry(self, telemetry: Telemetry) -> None:
        """Install a telemetry recorder on this environment and the tiers
        it owns (the shared distance engine)."""
        self.telemetry = telemetry
        self.engine.telemetry = telemetry

    def set_cancellation(self, token: CancellationToken) -> None:
        """Install the active request's deadline token on this environment
        and the tiers it owns, mirroring :meth:`set_telemetry`.

        The scheduler calls this at dispatch (and resets to
        :data:`~repro.observability.deadline.NEVER_EXPIRES` after), so an
        expired request stops at the next checkpoint — before the next
        charger scored, before the next engine search — instead of
        finishing an answer nobody is waiting for.
        """
        self.cancellation = token
        self.engine.cancellation = token

    def set_epochs(self, epochs: GraphEpochManager) -> None:
        """Attach a live-graph epoch manager, mirroring :meth:`set_telemetry`.

        Wires the tiers this environment owns: the traffic model starts
        pricing against the manager's incident factors (metrics built
        *after* this call see the live graph; earlier specs keep their
        admission epoch), and the shared distance engine fences its warm
        caches on every weight-changing epoch bump.
        """
        if epochs.network is not self.network:
            raise ValueError("epoch manager must wrap this environment's network")
        self.epochs = epochs
        self.traffic.set_epochs(epochs)
        self.engine.attach_epochs(epochs)

    def current_epoch(self) -> int:
        """The live-graph epoch (0 when no manager is attached)."""
        return self.epochs.epoch if self.epochs is not None else 0

    def weights_token(self) -> int:
        """The *weight-changing* epoch token caches fence on.

        Distinct from :meth:`current_epoch`: the manager bumps the epoch
        on every ``apply`` (a durable audit event), but the weights
        version only when an edge cost actually changed — so fencing the
        dynamic cache on this token keeps a no-op epoch bump free (zero
        invalidations, bitwise-identical tables).
        """
        return self.epochs.weights_version if self.epochs is not None else 0

    # -- forecast view (what the algorithms see) ----------------------------

    def score_pool(
        self,
        segment: TripSegment,
        chargers: Sequence[Charger],
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
        search_budget_h: float | None = None,
    ) -> list[ComponentScores]:
        """Interval L/A/D for every charger in the pool (Alg. 1 lines 4-10).

        Derouting is batch-priced (four shortest-path searches for the
        whole pool); ``search_budget_h`` bounds those searches — EcoCharge
        passes its ``R``-derived budget, Brute Force passes None (whole
        environment).
        """
        derouting = self.derouting.batch_estimate(
            segment,
            chargers,
            time_h=eta_h,
            now_h=now_h,
            next_segment=next_segment,
            search_budget_h=search_budget_h,
        )
        scores: list[ComponentScores] = []
        for charger in chargers:
            # Per-charger deadline checkpoint: an expired request stops
            # mid-pool rather than pricing the remaining candidates.
            self.cancellation.checkpoint("pool")
            level = self.sustainable.estimate(
                charger, eta_h, now_h, window_h=self.charging_window_h
            )
            avail = self.availability.estimate(charger, eta_h, now_h)
            scores.append(
                ComponentScores(
                    charger_id=charger.charger_id,
                    sustainable=level.normalised,
                    availability=avail,
                    derouting=derouting[charger.charger_id].normalised,
                )
            )
        return scores

    def score_pool_arrays(
        self,
        segment: TripSegment,
        chargers: Sequence[Charger],
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
        search_budget_h: float | None = None,
    ) -> ComponentArrays:
        """Flat-array form of :meth:`score_pool` (the batched funnel).

        Derouting comes back as arrays directly; sustainable and
        availability reuse the same memoised per-charger estimators and
        are packed from their interval results, so every value is bitwise
        equal to the :class:`ComponentScores` the scalar path builds —
        without materialising a dataclass per charger.
        """
        derouting = self.derouting.batch_estimate_arrays(
            segment,
            chargers,
            time_h=eta_h,
            now_h=now_h,
            next_segment=next_segment,
            search_budget_h=search_budget_h,
        )
        levels = []
        avails = []
        for charger in chargers:
            # Same per-charger deadline checkpoint as the scalar path.
            self.cancellation.checkpoint("pool")
            level = self.sustainable.estimate(
                charger, eta_h, now_h, window_h=self.charging_window_h
            )
            levels.append(level.normalised)
            avails.append(self.availability.estimate(charger, eta_h, now_h))
        return ComponentArrays(
            charger_ids=derouting.charger_ids,
            sustainable=IntervalArray.from_intervals(levels),
            availability=IntervalArray.from_intervals(avails),
            derouting=derouting.normalised,
        )

    # -- oracle view (what the evaluation grades against) -------------------

    def true_components(
        self,
        segment: TripSegment,
        charger: Charger,
        time_h: float,
        next_segment: TripSegment | None = None,
    ) -> TrueComponents:
        """Ground-truth normalised components for one charger."""
        power = self.sustainable.true_power_kw(charger, time_h)
        sustainable = min(1.0, power / self.sustainable.max_power_kw)
        availability = self.availability.true_availability(charger, time_h)
        hours = self.derouting.true_cost_h(segment, charger, time_h, next_segment)
        derouting = min(1.0, hours / self.derouting.max_derouting_h)
        return TrueComponents(charger.charger_id, sustainable, availability, derouting)

    def true_components_pool(
        self,
        segment: TripSegment,
        chargers: Iterable[Charger],
        time_h: float,
        next_segment: TripSegment | None = None,
    ) -> dict[int, TrueComponents]:
        """Batch oracle components (one shortest-path pass for the pool)."""
        pool = list(chargers)
        spec = self.traffic.travel_time_spec(time_h)

        max_h = self.derouting.max_derouting_h
        nodes = {charger.node_id for charger in pool}
        out = self.engine.one_to_many(segment.anchor_node, nodes, spec, max_cost=max_h)
        back_same = self.engine.many_to_one(nodes, segment.node_ids[-1], spec, max_cost=max_h)
        if next_segment is not None and next_segment.node_ids[-1] != segment.node_ids[-1]:
            back_next = self.engine.many_to_one(
                nodes, next_segment.node_ids[-1], spec, max_cost=max_h
            )
        else:
            back_next = back_same

        results: dict[int, TrueComponents] = {}
        for charger in pool:
            power = self.sustainable.true_power_kw(charger, time_h)
            sustainable = min(1.0, power / self.sustainable.max_power_kw)
            availability = self.availability.true_availability(charger, time_h)
            cost_out = out.get(charger.node_id)
            returns = [
                c
                for c in (back_same.get(charger.node_id), back_next.get(charger.node_id))
                if c is not None
            ]
            if cost_out is None or not returns:
                hours = max_h
            else:
                hours = min(max_h, cost_out + min(returns))
            results[charger.charger_id] = TrueComponents(
                charger.charger_id,
                sustainable,
                availability,
                min(1.0, hours / max_h),
            )
        return results
