"""Common interface of all per-segment ranking methods.

Every method in the evaluation (Brute-Force, Index-Quadtree, Random, and
EcoCharge itself) answers the same question — "rank the chargers for this
segment" — so the harness, the CkNN-EC driver, and the tests all program
against this protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from ..analysis.contracts import ensure
from ..chargers.charger import Charger
from ..network.path import Trip, TripSegment
from ..resilience.errors import UpstreamError
from .environment import ChargingEnvironment
from .intervals import Interval
from .offering import OfferingTable, build_table
from .scoring import ComponentScores, Weights, intersect_top_k, sc_score


@runtime_checkable
class SegmentRanker(Protocol):
    """A method that produces an Offering Table for one trip segment."""

    name: str

    def rank_segment(
        self,
        trip: Trip,
        segment: TripSegment,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
    ) -> OfferingTable:
        """Rank chargers for ``segment`` reached at ``eta_h``, deciding at
        ``now_h``."""
        ...

    def reset(self) -> None:
        """Clear per-trip state (caches); called between trips."""
        ...


def refine_pool(
    environment: ChargingEnvironment,
    trip: Trip,
    segment: TripSegment,
    pool: Sequence[Charger],
    eta_h: float,
    now_h: float,
    k: int,
    weights: Weights,
    next_segment: TripSegment | None = None,
    search_budget_h: float | None = None,
    radius_km: float | None = None,
) -> OfferingTable:
    """The shared Filtering + Refinement pipeline of Algorithm 1.

    Scores the candidate ``pool`` (lines 4-10), applies the Eq. 6 top-k
    intersection (line 16), sorts (line 17) and assembles the Offering
    Table (line 18).  Every ranker except Random funnels through here.
    """
    scores = environment.score_pool(
        segment,
        pool,
        eta_h=eta_h,
        now_h=now_h,
        next_segment=next_segment,
        search_budget_h=search_budget_h,
    )
    by_id: dict[int, tuple[Charger, ComponentScores]] = {
        comp.charger_id: (charger, comp) for charger, comp in zip(pool, scores)
    }
    sc_scores = [sc_score(comp, weights) for comp in scores]
    chosen = intersect_top_k(sc_scores, k)
    rows = []
    for score in chosen:
        charger, comp = by_id[score.charger_id]
        rows.append(
            (score, charger, comp.sustainable, comp.availability, comp.derouting, eta_h)
        )
    if radius_km is None:
        bounds = environment.registry.bounds
        radius_km = max(bounds.width, bounds.height)
    return build_table(
        segment_index=segment.index,
        origin=segment.midpoint,
        generated_at_h=now_h,
        radius_km=radius_km,
        ranked=rows,
    )


@dataclass(slots=True)
class RankingRun:
    """The full CkNN-EC answer for one trip: one table per segment.

    ``failed_segments`` lists segment indices whose ranking could not be
    produced even through the degradation ladder (upstream fault past
    every fallback); a clean run has none.
    """

    ranker_name: str
    trip: Trip
    tables: list[OfferingTable] = field(default_factory=list)
    failed_segments: list[int] = field(default_factory=list)

    @property
    def completed_cleanly(self) -> bool:
        return not self.failed_segments

    def table_for(self, segment_index: int) -> OfferingTable:
        """The Offering Table of ``segment_index`` (KeyError if absent)."""
        for table in self.tables:
            if table.segment_index == segment_index:
                return table
        raise KeyError(f"no table for segment {segment_index}")

    @property
    def adapted_count(self) -> int:
        return sum(1 for t in self.tables if t.is_adapted)


@ensure(
    lambda result: len(result.tables) >= 1
    and all(
        a.segment_index < b.segment_index
        for a, b in zip(result.tables, result.tables[1:])
    ),
    "the CkNN-EC answer is one Offering Table per segment, in trip order",
)
def run_over_trip(
    ranker: SegmentRanker,
    environment: ChargingEnvironment,
    trip: Trip,
    segment_km: float | None = None,
) -> RankingRun:
    """Drive a ranker over every segment of a trip (the continuous query).

    ETAs come from the traffic-aware estimator; the decision time ``now``
    is the trip departure (the driver consults the app when setting off
    and the app re-ranks each upcoming segment, Section IV-A).
    """
    from ..network.path import DEFAULT_SEGMENT_KM

    ranker.reset()
    resolved_km = segment_km if segment_km is not None else DEFAULT_SEGMENT_KM
    segments = trip.segments(resolved_km)
    etas = environment.eta.segment_etas(trip, segment_km=resolved_km)
    run = RankingRun(ranker_name=ranker.name, trip=trip)
    last_error: UpstreamError | None = None
    for i, segment in enumerate(segments):
        next_segment = segments[i + 1] if i + 1 < len(segments) else None
        try:
            table = ranker.rank_segment(
                trip,
                segment,
                eta_h=etas[i].expected_h,
                now_h=trip.departure_time_h,
                next_segment=next_segment,
            )
        except UpstreamError as error:
            # A ranker running behind the resilience gateway never gets
            # here (the ladder bottoms out at the fallback interval); a
            # raw-estimator ranker degrades to skipping the segment, and
            # the continuous query carries on with the rest of the trip.
            run.failed_segments.append(segment.index)
            last_error = error
            continue
        run.tables.append(table)
    if not run.tables and last_error is not None:
        # Nothing rankable at all: surface the fault rather than return
        # an answer that violates the one-table-minimum contract.
        raise last_error
    return run
