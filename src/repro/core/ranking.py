"""Common interface of all per-segment ranking methods.

Every method in the evaluation (Brute-Force, Index-Quadtree, Random, and
EcoCharge itself) answers the same question — "rank the chargers for this
segment" — so the harness, the CkNN-EC driver, and the tests all program
against this protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from ..analysis.contracts import ensure
from ..chargers.charger import Charger
from ..network.path import Trip, TripSegment
from ..observability.deadline import NEVER_EXPIRES, CancellationToken, DeadlineExpired
from ..observability.tracing import trip_correlation_id
from ..resilience.errors import UpstreamError
from .environment import ChargingEnvironment
from .intervals import Interval
from .offering import OfferingTable, build_table, build_table_from_arrays
from .scoring import (
    ComponentScores,
    Weights,
    intersect_top_k,
    intersect_top_k_batch,
    sc_score,
    sc_score_batch,
)


@runtime_checkable
class SegmentRanker(Protocol):
    """A method that produces an Offering Table for one trip segment."""

    name: str

    def rank_segment(
        self,
        trip: Trip,
        segment: TripSegment,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
    ) -> OfferingTable:
        """Rank chargers for ``segment`` reached at ``eta_h``, deciding at
        ``now_h``."""
        ...

    def reset(self) -> None:
        """Clear per-trip state (caches); called between trips."""
        ...


class SessionLog(Protocol):
    """Durability hooks a :class:`~repro.durability.session.RankingSession`
    plugs into :func:`run_over_trip`.

    The protocol lives here (not in ``repro.durability``) so the core
    ranking loop stays import-free of the durability subsystem: core
    defines the transaction boundary, durability implements it.
    """

    def begin(
        self, ranker: SegmentRanker, trip: Trip, segments: Sequence[TripSegment]
    ) -> tuple["RankingRun", int]:
        """Open (or resume) the session; the run so far and the position in
        ``segments`` to rank next."""
        ...

    def begin_segment(
        self, position: int, segment: TripSegment, ranker: SegmentRanker
    ) -> None:
        """Mark the start of one segment transaction."""
        ...

    def record_table(
        self,
        position: int,
        segment: TripSegment,
        table: OfferingTable,
        ranker: SegmentRanker,
    ) -> None:
        """Commit one segment transaction (journal append + snapshot cadence)."""
        ...

    def record_failure(
        self, position: int, segment: TripSegment, error: UpstreamError
    ) -> None:
        """Journal a failed segment (state already rolled back)."""
        ...

    def finish(self, run: "RankingRun") -> None:
        """The trip completed; seal the session."""
        ...


def _state_checkpoint(ranker: SegmentRanker) -> object | None:
    """Pre-segment state token for rankers that support transactional
    rollback (duck-typed so baseline rankers need not implement it)."""
    capture = getattr(ranker, "checkpoint_state", None)
    return capture() if callable(capture) else None


def refine_pool(
    environment: ChargingEnvironment,
    trip: Trip,
    segment: TripSegment,
    pool: Sequence[Charger],
    eta_h: float,
    now_h: float,
    k: int,
    weights: Weights,
    next_segment: TripSegment | None = None,
    search_budget_h: float | None = None,
    radius_km: float | None = None,
    scoring: str = "batch",
) -> OfferingTable:
    """The shared Filtering + Refinement pipeline of Algorithm 1.

    Scores the candidate ``pool`` (lines 4-10), applies the Eq. 6 top-k
    intersection (line 16), sorts (line 17) and assembles the Offering
    Table (line 18).  Every ranker except Random funnels through here.

    ``scoring`` selects the refinement arithmetic: ``"batch"`` (default)
    runs the flat-array pipeline end to end — component arrays from the
    environment, Eq. 4-6 as numpy elementwise operations and lexsorts,
    dataclasses materialised only for the ``<= k`` chosen rows;
    ``"scalar"`` keeps the per-charger dataclass pipeline.  Both produce
    bitwise-identical tables.
    """
    if scoring not in ("batch", "scalar"):
        raise ValueError("scoring must be 'batch' or 'scalar'")
    if radius_km is None:
        bounds = environment.registry.bounds
        radius_km = max(bounds.width, bounds.height)
    if scoring == "batch":
        arrays = environment.score_pool_arrays(
            segment,
            pool,
            eta_h=eta_h,
            now_h=now_h,
            next_segment=next_segment,
            search_budget_h=search_budget_h,
        )
        sc_min, sc_max = sc_score_batch(arrays, weights)
        chosen_rows = intersect_top_k_batch(arrays.charger_ids, sc_min, sc_max, k)
        return build_table_from_arrays(
            segment_index=segment.index,
            origin=segment.midpoint,
            generated_at_h=now_h,
            radius_km=radius_km,
            components=arrays,
            sc_min=sc_min,
            sc_max=sc_max,
            chosen_rows=chosen_rows,
            chargers_by_id={charger.charger_id: charger for charger in pool},
            eta_h=eta_h,
        )
    scores = environment.score_pool(
        segment,
        pool,
        eta_h=eta_h,
        now_h=now_h,
        next_segment=next_segment,
        search_budget_h=search_budget_h,
    )
    by_id: dict[int, tuple[Charger, ComponentScores]] = {
        comp.charger_id: (charger, comp) for charger, comp in zip(pool, scores)
    }
    sc_scores = [sc_score(comp, weights) for comp in scores]
    chosen = intersect_top_k(sc_scores, k)
    rows = []
    for score in chosen:
        charger, comp = by_id[score.charger_id]
        rows.append(
            (score, charger, comp.sustainable, comp.availability, comp.derouting, eta_h)
        )
    return build_table(
        segment_index=segment.index,
        origin=segment.midpoint,
        generated_at_h=now_h,
        radius_km=radius_km,
        ranked=rows,
    )


@dataclass(slots=True)
class RankingRun:
    """The full CkNN-EC answer for one trip: one table per segment.

    ``failed_segments`` lists segment indices whose ranking could not be
    produced even through the degradation ladder (upstream fault past
    every fallback); a clean run has none.
    """

    ranker_name: str
    trip: Trip
    tables: list[OfferingTable] = field(default_factory=list)
    failed_segments: list[int] = field(default_factory=list)

    @property
    def completed_cleanly(self) -> bool:
        return not self.failed_segments

    def table_for(self, segment_index: int) -> OfferingTable:
        """The Offering Table of ``segment_index`` (KeyError if absent)."""
        for table in self.tables:
            if table.segment_index == segment_index:
                return table
        raise KeyError(f"no table for segment {segment_index}")

    @property
    def adapted_count(self) -> int:
        return sum(1 for t in self.tables if t.is_adapted)


@ensure(
    lambda result: len(result.tables) >= 1
    and all(
        a.segment_index < b.segment_index
        for a, b in zip(result.tables, result.tables[1:])
    ),
    "the CkNN-EC answer is one Offering Table per segment, in trip order",
)
def run_over_trip(
    ranker: SegmentRanker,
    environment: ChargingEnvironment,
    trip: Trip,
    segment_km: float | None = None,
    session: SessionLog | None = None,
    cancellation: CancellationToken = NEVER_EXPIRES,
) -> RankingRun:
    """Drive a ranker over every segment of a trip (the continuous query).

    ETAs come from the traffic-aware estimator; the decision time ``now``
    is the trip departure (the driver consults the app when setting off
    and the app re-ranks each upcoming segment, Section IV-A).

    Each segment is one transaction: a segment that raises after partially
    mutating the ranker's per-trip state (dynamic cache) is rolled back to
    its pre-segment checkpoint, so a ``failed_segments`` entry never
    leaves half-applied mutations behind.  With a ``session`` the same
    boundary is journaled (and, on resume, replayed) by the durability
    subsystem; an injected :class:`~repro.resilience.SessionCrash`
    propagates out of this loop uncaught — it models the process dying.

    ``cancellation`` is the scheduler's deadline token: it is polled
    before every segment, so an expired request stops at the next
    segment boundary instead of ranking the rest of the trip.  A
    :class:`~repro.observability.deadline.DeadlineExpired` raised here
    (or deeper, inside the pool/engine checkpoints) first rolls the
    ranker back to its pre-segment checkpoint — expiry must never leak a
    half-mutated dynamic cache into the shard's next request — and then
    propagates to the scheduler, which owns the shed/serve-stale
    decision; it is never recorded as a failed segment.
    """
    from ..network.path import DEFAULT_SEGMENT_KM

    resolved_km = segment_km if segment_km is not None else DEFAULT_SEGMENT_KM
    segments = trip.segments(resolved_km)
    etas = environment.eta.segment_etas(trip, segment_km=resolved_km)
    if session is None:
        ranker.reset()
        run = RankingRun(ranker_name=ranker.name, trip=trip)
        start = 0
    else:
        run, start = session.begin(ranker, trip, segments)
    telemetry = environment.telemetry
    if start == 0:
        # Resumed sessions skip this: the trip was already counted before
        # the crash, and restored segments are not re-ranked below, so a
        # resume never double-counts.
        telemetry.inc("ecocharge_trips_total")
    last_error: UpstreamError | None = None
    with telemetry.span(
        "ranker.trip",
        tier="ranker",
        trace_id=trip_correlation_id(trip),
        ranker=ranker.name,
        segments=len(segments),
        start=start,
    ):
        for i in range(start, len(segments)):
            cancellation.checkpoint("segment")
            segment = segments[i]
            next_segment = segments[i + 1] if i + 1 < len(segments) else None
            checkpoint = _state_checkpoint(ranker)
            if session is not None:
                session.begin_segment(i, segment, ranker)
            started_s = telemetry.clock.monotonic() if telemetry.enabled else 0.0
            with telemetry.span("ranker.segment", tier="ranker", segment=segment.index):
                try:
                    table = ranker.rank_segment(
                        trip,
                        segment,
                        eta_h=etas[i].expected_h,
                        now_h=trip.departure_time_h,
                        next_segment=next_segment,
                    )
                except DeadlineExpired:
                    # Expiry mid-segment (pool or engine checkpoint): roll
                    # the transaction back so no half-applied cache state
                    # survives, then hand the expiry to the scheduler.
                    if checkpoint is not None:
                        ranker.restore_state(checkpoint)  # type: ignore[attr-defined]
                    raise
                except UpstreamError as error:
                    # A ranker running behind the resilience gateway never gets
                    # here (the ladder bottoms out at the fallback interval); a
                    # raw-estimator ranker degrades to skipping the segment, and
                    # the continuous query carries on with the rest of the trip.
                    # The transaction rolls back first: a partially mutated cache
                    # must not leak into the next segment (or the journal).
                    telemetry.mark_error(error)
                    if checkpoint is not None:
                        ranker.restore_state(checkpoint)  # type: ignore[attr-defined]
                    if session is not None:
                        session.record_failure(i, segment, error)
                    run.failed_segments.append(segment.index)
                    last_error = error
                    telemetry.inc("ecocharge_segments_total", outcome="failed")
                    continue
                if session is not None:
                    # A SessionCrash injected here propagates through the
                    # segment (and trip) spans, closing both with error
                    # status — the process is modelled as dying.
                    session.record_table(i, segment, table, ranker)
            run.tables.append(table)
            if telemetry.enabled:
                telemetry.observe(
                    "ecocharge_segment_seconds", telemetry.clock.monotonic() - started_s
                )
                telemetry.inc("ecocharge_segments_total", outcome="ok")
    if not run.tables and last_error is not None:
        # Nothing rankable at all: surface the fault rather than return
        # an answer that violates the one-table-minimum contract.
        raise last_error
    if session is not None:
        session.finish(run)
    return run
