"""The EcoCharge algorithm (Algorithm 1) and framework facade.

Per trip segment:

1. **Filtering** — gather the candidate pool: chargers within the
   user-configured radius ``R`` of the segment (via a spatial index), and
   price their ECs as intervals (lines 3-10).
2. **Refinement** — evaluate Eq. 6 (top-k intersection of the SC_min and
   SC_max rankings), sort, and emit the Offering Table (lines 16-18).

Dynamic caching wraps the whole pipeline: when the vehicle has moved less
than ``Q`` since the last full computation and the solution is still
temporally valid, the cached scored pool is *adapted* — derouting deltas
are applied arithmetically and the pool re-ranked — with no new shortest
path searches or estimator calls.  That skip is the source of the paper's
speedup over the Index-Quadtree baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from typing import TYPE_CHECKING, Sequence

from ..analysis.contracts import ensure
from ..chargers.charger import Charger
from ..spatial.geometry import Point

if TYPE_CHECKING:
    from .feasibility import VehicleConstraints
from ..estimation.derouting import REFERENCE_SPEED_KMH
from ..network.path import DEFAULT_SEGMENT_KM, Trip, TripSegment
from ..observability.recorder import Telemetry
from .caching import CachedSolution, CacheState, CacheStats, DynamicCache
from .environment import ChargingEnvironment
from .interval_array import ComponentArrays
from .intervals import Interval
from .offering import OfferingTable, build_table, build_table_from_arrays
from .ranking import RankingRun, run_over_trip
from .scoring import (
    ComponentScores,
    Weights,
    intersect_top_k,
    intersect_top_k_batch,
    sc_score,
    sc_score_batch,
)


@dataclass(frozen=True, slots=True)
class EcoChargeConfig:
    """User-facing knobs of the framework.

    ``radius_km`` is the paper's ``R`` (chargers considered around the
    vehicle), ``range_km`` the paper's ``Q`` (how far the vehicle may move
    before a cached solution must be regenerated).  The paper's sweet spot
    is ``R = 50 km``, ``Q = 5 km`` (Section V-B).
    """

    k: int = 5
    radius_km: float = 50.0
    range_km: float = 5.0
    weights: Weights = Weights.equal()
    segment_km: float = DEFAULT_SEGMENT_KM
    cache_ttl_h: float = 1.0
    index_kind: str = "quadtree"
    pad_intersection: bool = True
    #: Optional cap on the scored pool kept for cache adaptation.  None
    #: stores the full filtered pool (exact adaptation over all
    #: candidates); a value like ``8 * k`` bounds per-adaptation work at a
    #: small quality cost (a charger outside the kept set cannot surface
    #: later).  Measured in benchmarks/bench_ablation_cache.py.
    cache_pool_limit: int | None = None
    #: Shortest-path backend for the environment's distance engine: None
    #: leaves the environment's current backend untouched, "dijkstra" the
    #: truncated-Dijkstra fallback, "ch" the contraction hierarchy (same
    #: quantised distances, measured in benchmarks/bench_perf_trajectory).
    engine: str | None = None
    #: Refinement arithmetic: "batch" (the default) evaluates Eq. 4-6
    #: over the whole pool with numpy arrays, materialising dataclasses
    #: only for the <= k chosen rows; "scalar" keeps the per-charger
    #: dataclass pipeline.  Both produce bitwise-identical Offering
    #: Tables (asserted by tests/test_batch_scoring_equality.py and the
    #: perf experiment driver) — the knob exists for that comparison.
    scoring: str = "batch"
    #: Install a live telemetry recorder (metrics registry + span tracer,
    #: see repro.observability) on the environment when this ranker is
    #: built.  False keeps the shared no-op recorder: instrumented call
    #: sites reduce to constant no-op context managers (< 3% overhead,
    #: measured by `python -m repro.experiments observability`).
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.radius_km <= 0:
            raise ValueError("radius_km (R) must be positive")
        if self.range_km <= 0:
            raise ValueError("range_km (Q) must be positive")
        if self.segment_km <= 0:
            raise ValueError("segment_km must be positive")
        if self.cache_ttl_h <= 0:
            raise ValueError("cache_ttl_h must be positive")
        if self.cache_pool_limit is not None and self.cache_pool_limit < self.k:
            raise ValueError("cache_pool_limit must be at least k")
        if self.engine is not None and self.engine not in ("dijkstra", "ch"):
            raise ValueError("engine must be None, 'dijkstra', or 'ch'")
        if self.scoring not in ("batch", "scalar"):
            raise ValueError("scoring must be 'batch' or 'scalar'")


class EcoChargeRanker:
    """Algorithm 1 with dynamic caching, as a :class:`SegmentRanker`."""

    name = "ecocharge"

    def __init__(
        self,
        environment: ChargingEnvironment,
        config: EcoChargeConfig | None = None,
        constraints: "VehicleConstraints | None" = None,
    ) -> None:
        """``constraints`` (a
        :class:`~repro.core.feasibility.VehicleConstraints`) optionally
        narrows the Filtering phase to chargers the specific vehicle can
        reach and use."""
        self._env = environment
        self.config = config if config is not None else EcoChargeConfig()
        self.constraints = constraints
        if self.config.engine is not None:
            environment.set_engine_backend(self.config.engine)
        if self.config.telemetry and not environment.telemetry.enabled:
            environment.set_telemetry(Telemetry.live())
        self._cache = DynamicCache(
            range_km=self.config.range_km, ttl_h=self.config.cache_ttl_h
        )
        # Out to the radius edge and back, at the reference speed: the
        # shortest-path budget implied by R.
        self._budget_h = min(
            environment.derouting.max_derouting_h,
            4.0 * self.config.radius_km / REFERENCE_SPEED_KMH,
        )

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def cache_entry(self) -> CachedSolution | None:
        """The live cached solution (what a durability journal records)."""
        return self._cache.current

    def reset(self) -> None:
        """Drop per-trip state: clears the dynamic cache."""
        self._cache.clear()

    # -- transactional state (durability integration) -----------------------

    def checkpoint_state(self) -> CacheState:
        """Capture the per-trip mutable state (the dynamic cache)."""
        return self._cache.checkpoint()

    def restore_state(self, state: CacheState) -> None:
        """Roll the per-trip state back to ``state`` (segment rollback or
        crash recovery — the two callers of the journal transaction
        boundary)."""
        self._cache.restore(state)

    # -- the algorithm -------------------------------------------------------

    @ensure(
        lambda result, self: len(result.entries) <= self.config.k,
        "an Offering Table holds at most k entries",
    )
    def rank_segment(
        self,
        trip: Trip,
        segment: TripSegment,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
    ) -> OfferingTable:
        """Algorithm 1 for one segment: adapt from cache or recompute."""
        telemetry = self._env.telemetry
        origin = segment.midpoint
        with telemetry.span("cache.lookup", tier="cache", segment=segment.index):
            # Epoch fence before the Q/TTL admission test: a solution
            # computed on an older graph is unusable however close and
            # fresh it is (its derouting distances priced roads that may
            # since have closed).  The token is the *weights* version, so
            # a no-op epoch bump never costs a warm entry.
            self._cache.observe_epoch(self._env.weights_token())
            cached = self._cache.lookup(origin, now_h=eta_h)
        if cached is not None:
            with telemetry.span("ranker.adapt", tier="ranker", segment=segment.index):
                return self._adapt(cached, segment, origin, eta_h)
        with telemetry.span("ranker.compute", tier="ranker", segment=segment.index):
            return self._compute(trip, segment, origin, eta_h, now_h, next_segment)

    def _compute(
        self,
        trip: Trip,
        segment: TripSegment,
        origin: Point,
        eta_h: float,
        now_h: float,
        next_segment: TripSegment | None,
    ) -> OfferingTable:
        """Full Filtering + Refinement, then prime the cache."""
        pool = self._env.registry.within_radius(
            origin, self.config.radius_km, kind=self.config.index_kind
        )
        if self.constraints is not None:
            from .feasibility import filter_feasible

            pool = filter_feasible(pool, self.constraints, origin)
        if not pool:
            pool = self._env.registry.nearest(origin, k=self.config.k)
        components = self._env.score_pool(
            segment,
            pool,
            eta_h=eta_h,
            now_h=now_h,
            next_segment=next_segment,
            search_budget_h=self._budget_h,
        )
        kept_pool, kept_components = self._reduce_for_cache(pool, components)
        self._cache.store(
            CachedSolution(
                segment_index=segment.index,
                origin=origin,
                generated_at_h=eta_h,
                eta_h=eta_h,
                radius_km=self.config.radius_km,
                pool=kept_pool,
                components=kept_components,
                epoch=self._env.weights_token(),
            )
        )
        return self._refine(segment.index, origin, eta_h, eta_h, pool, components)

    def _reduce_for_cache(
        self, pool: Sequence[Charger], components: Sequence[ComponentScores]
    ) -> tuple[tuple[Charger, ...], tuple[ComponentScores, ...]]:
        """Apply ``cache_pool_limit``: keep the most promising candidates
        (by midpoint score) so adaptation work is bounded."""
        limit = self.config.cache_pool_limit
        if limit is None or len(pool) <= limit:
            return tuple(pool), tuple(components)
        scored = sorted(
            zip(pool, components),
            key=lambda pair: -sc_score(pair[1], self.config.weights).midpoint,
        )[:limit]
        return tuple(p for p, __ in scored), tuple(c for __, c in scored)

    def _adapt(
        self,
        cached: CachedSolution,
        segment: TripSegment,
        origin: Point,
        eta_h: float,
    ) -> OfferingTable:
        """Adapt a cached solution to the new location (O(|pool|), no
        shortest paths, no estimator calls).

        Only the derouting component depends on the vehicle's position;
        each charger's cached ``D`` is shifted by the straight-line
        round-trip delta between old and new origin at the reference
        speed, then the whole pool is re-ranked.

        The adapted solution replaces the cache entry (the paper's
        bottom-up chain: O1 is adjusted to O2 "and this carries on to the
        next EV path segments").  Its TTL stays anchored at the original
        full computation, so drift is bounded: once the ECs expire, a full
        recomputation is forced regardless of how little the vehicle
        moved.
        """
        max_h = self._env.derouting.max_derouting_h
        adapted: list[ComponentScores] = []
        for charger, comp in zip(cached.pool, cached.components):
            old_km = cached.origin.distance_to(charger.point)
            new_km = origin.distance_to(charger.point)
            delta_norm = 2.0 * (new_km - old_km) / REFERENCE_SPEED_KMH / max_h
            adapted.append(
                replace(
                    comp,
                    derouting=Interval(
                        comp.derouting.lo + delta_norm, comp.derouting.hi + delta_norm
                    ).clamp(0.0, 1.0),
                )
            )
        self._cache.store(
            CachedSolution(
                segment_index=segment.index,
                origin=origin,
                generated_at_h=cached.generated_at_h,
                eta_h=eta_h,
                radius_km=cached.radius_km,
                pool=cached.pool,
                components=tuple(adapted),
                epoch=cached.epoch,
            )
        )
        return self._refine(
            segment.index,
            origin,
            eta_h,
            cached.generated_at_h,
            cached.pool,
            adapted,
            adapted_from=cached.segment_index,
        )

    def _refine(
        self,
        segment_index: int,
        origin: Point,
        eta_h: float,
        generated_at_h: float,
        pool: Sequence[Charger],
        components: Sequence[ComponentScores],
        adapted_from: int | None = None,
    ) -> OfferingTable:
        """Eq. 6 intersection + sort + table assembly (lines 16-18)."""
        if self.config.scoring == "batch":
            arrays = ComponentArrays.from_scores(components)
            sc_min, sc_max = sc_score_batch(arrays, self.config.weights)
            chosen_rows = intersect_top_k_batch(
                arrays.charger_ids,
                sc_min,
                sc_max,
                self.config.k,
                pad=self.config.pad_intersection,
            )
            return build_table_from_arrays(
                segment_index=segment_index,
                origin=origin,
                generated_at_h=generated_at_h,
                radius_km=self.config.radius_km,
                components=arrays,
                sc_min=sc_min,
                sc_max=sc_max,
                chosen_rows=chosen_rows,
                chargers_by_id={charger.charger_id: charger for charger in pool},
                eta_h=eta_h,
                adapted_from=adapted_from,
            )
        by_id: dict[int, tuple[Charger, ComponentScores]] = {
            comp.charger_id: (charger, comp) for charger, comp in zip(pool, components)
        }
        scores = [sc_score(comp, self.config.weights) for comp in components]
        chosen = intersect_top_k(scores, self.config.k, pad=self.config.pad_intersection)
        rows = []
        for score in chosen:
            charger, comp = by_id[score.charger_id]
            rows.append(
                (score, charger, comp.sustainable, comp.availability, comp.derouting, eta_h)
            )
        return build_table(
            segment_index=segment_index,
            origin=origin,
            generated_at_h=generated_at_h,
            radius_km=self.config.radius_km,
            ranked=rows,
            adapted_from=adapted_from,
        )


class EcoCharge:
    """Framework facade: plan sustainable charging along a scheduled trip.

    The quickstart entry point::

        framework = EcoCharge(environment, EcoChargeConfig(k=3))
        run = framework.plan(trip)
        for table in run.tables:
            print(table.best.charger)
    """

    def __init__(self, environment: ChargingEnvironment, config: EcoChargeConfig | None = None) -> None:
        self.environment = environment
        self.config = config if config is not None else EcoChargeConfig()
        self.ranker = EcoChargeRanker(environment, self.config)

    def plan(self, trip: Trip) -> RankingRun:
        """The CkNN-EC answer for ``trip``: one Offering Table per segment."""
        return run_over_trip(
            self.ranker, self.environment, trip, segment_km=self.config.segment_km
        )

    def offering_for(
        self, trip: Trip, segment: TripSegment, eta_h: float | None = None
    ) -> OfferingTable:
        """One-shot Offering Table for a single segment (Mode-3 style
        on-demand query)."""
        if eta_h is None:
            eta_h = self._eta_for(trip, segment)
        return self.ranker.rank_segment(
            trip, segment, eta_h=eta_h, now_h=trip.departure_time_h
        )

    def _eta_for(self, trip: Trip, segment: TripSegment) -> float:
        return self.environment.eta.eta_at_segment(
            trip, segment, segment_km=self.config.segment_km
        ).expected_h

    @property
    def cache_stats(self) -> CacheStats:
        return self.ranker.cache_stats
