"""Shared shortest-path distance engine for the ranking hot path.

Every component evaluation (EcoCharge, the baselines, the oracle grader,
chaos re-rankings) prices derouting with single-source searches over the
*same static network* under a small set of recurring cost functions.  The
:class:`DistanceEngine` is the one place those searches happen:

* results are memoised per ``(weight key, node, direction)`` in a bounded
  LRU shared across trip segments and across methods, so the Brute-Force
  grader and EcoCharge stop paying for the same ball twice;
* two interchangeable backends sit behind one API — truncated Dijkstra
  (the always-correct fallback, and the paper baseline) and a contraction
  hierarchy (:mod:`repro.network.contraction`) whose per-metric
  customisation is itself cached;
* all delivered distances are quantised to :data:`DISTANCE_DECIMALS`
  decimals, which makes the two backends *bit-comparable* (floating-point
  summation order differs between a Dijkstra path walk and a CH
  up/down join) and makes cache reuse independent of which budget a map
  was originally computed with.

Cost functions are identified by :class:`WeightSpec` — a hashable key
plus the per-edge callable (and optionally a vectorised batch evaluator
used by CH customisation).  Raw :class:`~repro.network.graph.EdgeWeight`
members are accepted directly.

**Live-graph fencing.** When a :class:`~repro.network.epochs.
GraphEpochManager` is attached, every public query first observes the
manager's ``weights_version`` and *fences*: cached settled maps,
customisations, pair joins, and whole-query memos belonging to specs
built against an older version are dropped before anything is served, so
a stale-epoch read is structurally impossible.  Fencing is incremental —
only specs that carry a stale ``epoch_version`` are invalidated; static
specs (``epoch_version=None``, e.g. raw ``EdgeWeight`` metrics that never
see incidents) keep their warm state, and re-customization on the CH
backend therefore sweeps only the metrics the incident actually touched.
"""

from __future__ import annotations

import itertools
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

from ..observability.deadline import NEVER_EXPIRES, CancellationToken
from ..observability.recorder import NOOP_TELEMETRY, Telemetry
from .contraction import ContractionHierarchy, CustomizedHierarchy, combine_spaces
from .epochs import GraphEpochManager
from .graph import EdgeWeight, RoadEdge, RoadNetwork
from .shortest_path import CostFn, dijkstra_all, dijkstra_all_backward

#: Decimal places every delivered distance is rounded to.  1e-9 h is 3.6 us
#: of travel time — far below any component's resolution, far above the
#: ~1e-16 relative float noise that separates the backends.
DISTANCE_DECIMALS = 9

#: One quantum of the rounding grid; search budgets are inflated by this
#: much so that boundary nodes are included regardless of rounding side.
DISTANCE_QUANTUM = 10.0 ** (-DISTANCE_DECIMALS)

BACKENDS = ("dijkstra", "ch")


@dataclass(frozen=True, slots=True)
class WeightSpec:
    """A cost function with a cache identity.

    ``key`` must be hashable and *uniquely* identify the metric within the
    engine's lifetime (the engine is bound to one network + one traffic
    model, so keys like ``("tt_lo", time_h, now_h)`` suffice).  ``batch``
    optionally evaluates the metric over a fixed edge sequence in one
    call — the vectorised fast path for CH customisation; it must agree
    bitwise with ``fn`` edge-by-edge.

    ``epoch_version`` is the live-graph ``weights_version`` the metric
    was built against, or ``None`` for metrics that never see incidents
    (raw :class:`EdgeWeight` specs — the static map view).  The engine
    fences cached state per key when the recorded version goes stale, and
    rejects a *reused* key whose version changed — the contract that
    makes serving distances across a weight change structurally
    impossible (see ``docs/live_graph.md``).
    """

    key: Hashable
    fn: CostFn
    batch: Callable[[Sequence[RoadEdge | None]], Sequence[float]] | None = None
    epoch_version: int | None = None

    @classmethod
    def of(cls, weight: "EdgeWeight | WeightSpec") -> "WeightSpec":
        if isinstance(weight, WeightSpec):
            return weight
        if isinstance(weight, EdgeWeight):
            kind = weight
            return cls(key=kind, fn=lambda edge: edge.weight(kind))
        raise TypeError(
            f"expected EdgeWeight or WeightSpec, got {type(weight).__name__}; "
            f"wrap raw callables in WeightSpec(key, fn) so results are cacheable"
        )


@dataclass(slots=True)
class EngineStats:
    """Cache and search accounting for one engine.

    ``cache_hits``/``cache_misses`` count settled-map lookups; each query
    issued through the public API accounts for *exactly one* lookup per
    participating (weight, node, direction) map — never two (regression-
    tested, since an inflated denominator pins the hit rate at a
    meaningless constant).  ``pair_hits``/``pair_misses`` count the CH
    backend's pair-join result cache, the warm-path fast lane that
    answers a bipartite query member without touching the settled maps.
    """

    searches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    pair_hits: int = 0
    pair_misses: int = 0
    customisations: int = 0
    customisation_hits: int = 0
    evictions: int = 0
    ch_builds: int = 0
    #: Weight-version bumps the engine observed and fenced (live graph).
    epoch_fences: int = 0
    #: Cached artifacts (maps, customisations, pair joins, query memos)
    #: dropped by epoch fencing — zero across a no-op epoch bump.
    epoch_invalidations: int = 0

    #: Integer counter fields, in report order (used for snapshot deltas).
    COUNTER_FIELDS = (
        "searches",
        "cache_hits",
        "cache_misses",
        "pair_hits",
        "pair_misses",
        "customisations",
        "customisation_hits",
        "evictions",
        "ch_builds",
        "epoch_fences",
        "epoch_invalidations",
    )

    @property
    def lookups(self) -> int:
        hits = self.cache_hits
        misses = self.cache_misses
        return hits + misses

    @property
    def hit_rate(self) -> float:
        # One read per counter: a concurrent increment between reading
        # the numerator and the denominator must not yield a rate > 1.
        hits = self.cache_hits
        total = hits + self.cache_misses
        return hits / total if total else 0.0

    @property
    def pair_hit_rate(self) -> float:
        hits = self.pair_hits
        total = hits + self.pair_misses
        return hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat counters for experiment reports (JSON-serialisable)."""
        out: dict[str, float] = {name: getattr(self, name) for name in self.COUNTER_FIELDS}
        out["hit_rate"] = self.hit_rate
        out["pair_hit_rate"] = self.pair_hit_rate
        return out


def _quantize(value: float) -> float:
    return round(value, DISTANCE_DECIMALS)


#: Sentinel distinguishing "key never seen" from the valid version
#: ``None`` (static spec) in the engine's per-key version ledger.
_UNSEEN = object()


class DistanceEngine:
    """Memoising one-to-many / many-to-one distance facade.

    ``capacity_nodes`` bounds the LRU by the *total number of settled
    nodes* held across all cached maps (a full Dijkstra ball on a large
    network weighs thousands of entries, a CH search space a few dozen —
    counting nodes keeps memory bounded regardless of backend).
    """

    def __init__(
        self,
        network: RoadNetwork,
        backend: str = "dijkstra",
        capacity_nodes: int = 500_000,
        max_customizations: int = 64,
        hierarchy: ContractionHierarchy | None = None,
        capacity_pairs: int = 262_144,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if capacity_nodes < 1:
            raise ValueError("capacity_nodes must be positive")
        if max_customizations < 1:
            raise ValueError("max_customizations must be positive")
        if capacity_pairs < 1:
            raise ValueError("capacity_pairs must be positive")
        self._network = network
        self._backend = backend
        self._capacity_nodes = capacity_nodes
        self._max_customizations = max_customizations
        self._capacity_pairs = capacity_pairs
        self._hierarchy = hierarchy
        #: (weight key, node, direction) -> (computed budget, settled map)
        self._maps: OrderedDict[tuple[Hashable, int, str], tuple[float, dict[int, float]]]
        self._maps = OrderedDict()
        self._cached_nodes = 0
        self._customized: OrderedDict[Hashable, CustomizedHierarchy] = OrderedDict()
        #: Metrics announced by :meth:`prepare` but not yet customised.
        #: Customisation is *deferred* to the first settled-map miss that
        #: needs one of them: a warm segment whose maps are all cached
        #: never pays a triangle sweep (the PR-3 design re-customised on
        #: ``prepare`` even when every search would be served from cache,
        #: which is exactly what made warm CH serving slower than warm
        #: Dijkstra).
        self._pending: tuple[WeightSpec, ...] = ()
        #: Interned small-int ids per weight key: pair-cache keys hash a
        #: 4-int tuple instead of a nested tuple of floats.
        self._spec_ids: dict[Hashable, int] = {}
        #: (spec id, anchor, node, forward) -> (budget, quantised join).
        #: The CH warm path: a bipartite query member whose join result is
        #: cached is answered by this one dict probe — no settled maps, no
        #: space combine, no re-quantisation.  Insertion-ordered; oldest
        #: half dropped in bulk when ``capacity_pairs`` is exceeded.
        self._pairs: dict[tuple[int, int, int, bool], tuple[float, float]] = {}
        #: Whole-query memo in front of the pair cache: a repeated
        #: bipartite query (same spec, anchor, pool, budget, direction) is
        #: one probe plus a shallow copy of the small result dict.
        self._queries: dict[
            tuple[int, int, bool, float, tuple[int, ...]], dict[int, float]
        ] = {}
        self.stats = EngineStats()
        #: Live-graph epoch manager (``attach_epochs``); ``None`` keeps
        #: the engine in its historical static-network behaviour.
        self._epochs: GraphEpochManager | None = None
        #: The weights version all cached state is currently valid for.
        self._fenced_version = 0
        #: Per weight key: the ``epoch_version`` the key was first seen
        #: with (``None`` marks static specs that never fence).
        self._spec_versions: dict[Hashable, object] = {}
        #: Set by a fence that dropped live-metric state; the next CH
        #: customisation is the *re*-customization and reports its latency.
        self._epoch_dirty = False
        #: Duration of the most recent post-fence re-customization sweep
        #: (telemetry-clocked; ``None`` until one happens).
        self.last_recustomize_s: float | None = None
        #: Installed by the owning environment's ``set_telemetry``; the
        #: no-op default keeps cache hits span-free and searches unguarded.
        self.telemetry: Telemetry = NOOP_TELEMETRY
        #: Installed by the owning environment's ``set_cancellation``; the
        #: default token never expires, so uncancellable callers pay one
        #: empty method call per cache miss.
        self.cancellation: CancellationToken = NEVER_EXPIRES
        # Guards the LRU maps, the customisation cache, and the stats
        # counters as one unit.  Re-entrant because the CH bipartite path
        # calls `_map` per pool member while already inside a query.
        self._lock = threading.RLock()

    # -- configuration ------------------------------------------------------

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def cached_nodes(self) -> int:
        """Total settled nodes currently held across cached maps."""
        return self._cached_nodes

    @property
    def cached_maps(self) -> int:
        return len(self._maps)

    def set_backend(self, backend: str) -> None:
        """Switch backends; cached maps are backend-specific and dropped."""
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        with self._lock:
            if backend != self._backend:
                self._backend = backend
                self.clear()

    def clear(self) -> None:
        """Drop all cached maps and customisations (keeps the hierarchy)."""
        with self._lock:
            self._maps.clear()
            self._customized.clear()
            self._pending = ()
            self._spec_ids.clear()
            self._pairs.clear()
            self._queries.clear()
            self._spec_versions.clear()
            self._cached_nodes = 0
            self._epoch_dirty = False

    # -- live-graph epoch fencing -------------------------------------------

    def attach_epochs(self, epochs: GraphEpochManager | None) -> None:
        """Bind the engine to the live graph's epoch manager.

        From here on every public query fences first: cached state built
        against an older ``weights_version`` is unreachable before any
        distance is served.  Detaching (``None``) restores static-network
        behaviour for state cached afterwards.
        """
        with self._lock:
            self._epochs = epochs
            self._fenced_version = 0 if epochs is None else epochs.weights_version

    @property
    def epochs(self) -> GraphEpochManager | None:
        return self._epochs

    def _observe_epoch(self) -> None:
        """Fence cached state up to the manager's current weights version
        (no-op when detached or already current — the no-incident hot
        path pays one integer compare)."""
        manager = self._epochs
        if manager is None:
            return
        version = manager.weights_version
        if version != self._fenced_version:
            self._fence_to(version)

    def _fence_to(self, version: int) -> None:
        """Drop every cached artifact owned by a stale live spec.

        Static specs (``epoch_version=None``) survive — their metrics do
        not depend on incident factors — which is what makes a fence
        incremental rather than a full :meth:`clear`.
        """
        stale = {
            key
            for key, recorded in self._spec_versions.items()
            if recorded is not None and recorded < version  # type: ignore[operator]
        }
        self._fenced_version = version
        self.stats.epoch_fences += 1
        if not stale:
            return
        dropped = 0
        for key in stale:
            dropped += self._invalidate_key(key)
            del self._spec_versions[key]
        self.stats.epoch_invalidations += dropped
        self._epoch_dirty = True

    def _invalidate_key(self, key: Hashable) -> int:
        """Remove every cached artifact for one weight key; returns how
        many artifacts were dropped."""
        dropped = 0
        for map_key in [k for k in self._maps if k[0] == key]:
            _, settled = self._maps.pop(map_key)
            self._cached_nodes -= len(settled)
            dropped += 1
        if key in self._customized:
            del self._customized[key]
            dropped += 1
        if self._pending:
            self._pending = tuple(p for p in self._pending if p.key != key)
        spec_id = self._spec_ids.get(key)
        if spec_id is not None:
            for pair_key in [k for k in self._pairs if k[0] == spec_id]:
                del self._pairs[pair_key]
                dropped += 1
            for query_key in [k for k in self._queries if k[0] == spec_id]:
                del self._queries[query_key]
                dropped += 1
        return dropped

    def _note_spec(self, spec: WeightSpec) -> None:
        """Pin the key -> epoch-version binding; a key *reused* under a
        different version is a weight change in disguise, and its cached
        state is dropped before the query runs (the satellite contract:
        the pair-join cache and whole-query memo can never serve
        distances across a weight change)."""
        recorded = self._spec_versions.get(spec.key, _UNSEEN)
        if recorded is _UNSEEN:
            self._spec_versions[spec.key] = spec.epoch_version
            return
        if recorded != spec.epoch_version:
            self.stats.epoch_invalidations += self._invalidate_key(spec.key)
            self._spec_versions[spec.key] = spec.epoch_version

    def ensure_hierarchy(self) -> ContractionHierarchy:
        """Build (once) and return the contraction hierarchy."""
        if self._hierarchy is None:
            self._hierarchy = ContractionHierarchy.build(self._network)
            self.stats.ch_builds += 1
        return self._hierarchy

    def prepare(self, *weights: EdgeWeight | WeightSpec) -> None:
        """Announce the metrics the next queries will price, as one group.

        Derouting prices each segment under a lower *and* an upper
        travel-time bound; announcing them together means that when a
        settled-map miss does force a customisation, the whole group is
        customised in one stacked triangle sweep
        (:meth:`~repro.network.contraction.ContractionHierarchy.customize_many`
        — k metrics for barely more than one).  Nothing is customised
        *here*: a warm segment whose searches are all served from the map
        or pair caches pays zero customisation work.  Metrics already
        customised are dropped from the group; on the Dijkstra backend
        this is a no-op.
        """
        if self._backend != "ch":
            return
        with self._lock:
            self._observe_epoch()
            pending: list[WeightSpec] = []
            seen: set[Hashable] = set()
            for weight in weights:
                spec = WeightSpec.of(weight)
                self._note_spec(spec)
                if spec.key in self._customized or spec.key in seen:
                    continue
                seen.add(spec.key)
                pending.append(spec)
            # Replace (not extend): stale never-queried groups from earlier
            # segments must not grow the sweep unboundedly.
            self._pending = tuple(pending)

    # -- queries ------------------------------------------------------------

    def one_to_many(
        self,
        source: int,
        targets: Iterable[int],
        weight: EdgeWeight | WeightSpec,
        max_cost: float = math.inf,
    ) -> dict[int, float]:
        """Quantised distances ``source -> target`` for targets within budget.

        Targets that are unreachable, or whose quantised distance exceeds
        ``max_cost``, are absent from the result — the same contract as
        :func:`~repro.network.shortest_path.dijkstra_to_targets`.
        """
        spec = WeightSpec.of(weight)
        with self._lock:
            self._observe_epoch()
            self._note_spec(spec)
            if self._backend == "ch":
                return self._ch_bipartite(spec, [source], targets, max_cost, forward=True)
            ball = self._map(spec, source, "f", max_cost)
            return self._subset(ball, targets, max_cost)

    def many_to_one(
        self,
        sources: Iterable[int],
        target: int,
        weight: EdgeWeight | WeightSpec,
        max_cost: float = math.inf,
    ) -> dict[int, float]:
        """Quantised distances ``source -> target`` keyed by source."""
        spec = WeightSpec.of(weight)
        with self._lock:
            self._observe_epoch()
            self._note_spec(spec)
            if self._backend == "ch":
                return self._ch_bipartite(spec, [target], sources, max_cost, forward=False)
            ball = self._map(spec, target, "b", max_cost)
            return self._subset(ball, sources, max_cost)

    def many_to_many(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        weight: EdgeWeight | WeightSpec,
        max_cost: float = math.inf,
    ) -> dict[tuple[int, int], float]:
        """Quantised distance matrix over ``sources x targets``."""
        out: dict[tuple[int, int], float] = {}
        for source in sources:
            for target, d in self.one_to_many(source, targets, weight, max_cost).items():
                out[(source, target)] = d
        return out

    # -- dijkstra backend ---------------------------------------------------

    def _map(
        self, spec: WeightSpec, node: int, direction: str, max_cost: float
    ) -> dict[int, float]:
        """The settled map for (spec, node, direction), cached and budgeted."""
        key = (spec.key, node, direction)
        budget = max_cost if math.isinf(max_cost) else max_cost + DISTANCE_QUANTUM
        with self._lock:
            cached = self._maps.get(key)
            if cached is not None and cached[0] >= budget:
                self._maps.move_to_end(key)
                self.stats.cache_hits += 1
                return cached[1]
            # Deadline checkpoint on the miss path only: a cache hit is
            # already paid for and serves in O(1), but an expired request
            # must not open a fresh search it can no longer use.
            self.cancellation.checkpoint("engine-search")
            self.stats.cache_misses += 1
            self.stats.searches += 1
            telemetry = self.telemetry
            if telemetry.enabled:
                # Spans only on the miss path: a cache hit above returns with
                # zero telemetry work, keeping the hot path unperturbed.
                started_s = telemetry.clock.monotonic()
                with telemetry.span(
                    "engine.search",
                    tier="engine",
                    backend=self._backend,
                    direction=direction,
                    node=node,
                ):
                    raw = self._search(spec, node, direction, budget)
                telemetry.observe(
                    "ecocharge_engine_search_seconds",
                    telemetry.clock.monotonic() - started_s,
                    backend=self._backend,
                )
            else:
                raw = self._search(spec, node, direction, budget)
            self._admit(key, budget, raw, cached)
            return raw

    def _search(
        self, spec: WeightSpec, node: int, direction: str, budget: float
    ) -> dict[int, float]:
        """The uncached settled-map computation behind :meth:`_map`."""
        if self._backend == "ch":
            custom = self._customize(spec)
            return (
                custom.forward_space(node, budget)
                if direction == "f"
                else custom.backward_space(node, budget)
            )
        if direction == "f":
            return dijkstra_all(self._network, node, spec.fn, max_cost=budget)
        return dijkstra_all_backward(self._network, node, spec.fn, max_cost=budget)

    @staticmethod
    def _subset(
        ball: dict[int, float], nodes: Iterable[int], max_cost: float
    ) -> dict[int, float]:
        out: dict[int, float] = {}
        for node in nodes:
            d = ball.get(node)
            if d is None:
                continue
            q = _quantize(d)
            # The isinf guard keeps closed-off nodes (infinite cost under
            # a live-graph closure) out of an unbudgeted query's result:
            # "unreachable" means absent, never a served infinity.
            if q <= max_cost and not math.isinf(q):
                out[node] = q
        return out

    # -- CH backend ---------------------------------------------------------

    @staticmethod
    def _arc_costs(
        spec: WeightSpec, hierarchy: ContractionHierarchy
    ) -> Sequence[float]:
        """Per-arc costs aligned with ``hierarchy.original_edges``."""
        if spec.batch is not None:
            return spec.batch(hierarchy.original_edges)
        return [
            math.inf if edge is None else spec.fn(edge)
            for edge in hierarchy.original_edges
        ]

    def _trim_customizations(self) -> None:
        while len(self._customized) > self._max_customizations:
            self._customized.popitem(last=False)
            self.stats.evictions += 1

    def _customize(self, spec: WeightSpec) -> CustomizedHierarchy:
        """The customisation for ``spec``, built lazily on first need.

        A miss customises the whole :meth:`prepare`-announced group (plus
        ``spec`` itself) in one stacked sweep — the cold path pays the same
        single sweep per segment as the eager design did, but a warm
        segment whose searches never miss skips customisation entirely.
        """
        with self._lock:
            cached = self._customized.get(spec.key)
            if cached is not None:
                self._customized.move_to_end(spec.key)
                self.stats.customisation_hits += 1
                return cached
            hierarchy = self.ensure_hierarchy()
            group = [spec] + [
                p
                for p in self._pending
                if p.key != spec.key and p.key not in self._customized
            ]
            self._pending = ()
            rows = [self._arc_costs(p, hierarchy) for p in group]
            telemetry = self.telemetry
            recustomizing = self._epoch_dirty
            timed = telemetry.enabled and recustomizing
            started_s = telemetry.clock.monotonic() if timed else 0.0
            with telemetry.span(
                "engine.customize", tier="engine", key=str(spec.key), stacked=len(group)
            ):
                customs = hierarchy.customize_many(rows)
            if recustomizing:
                # First sweep after an epoch fence rebinds the live
                # metrics on the new graph: that is the re-customization
                # whose latency degraded serving is hiding.
                self._epoch_dirty = False
                if timed:
                    elapsed = telemetry.clock.monotonic() - started_s
                    self.last_recustomize_s = elapsed
                    telemetry.observe(
                        "ecocharge_engine_recustomize_seconds",
                        elapsed,
                        backend=self._backend,
                    )
            for p, custom in zip(group, customs):
                self._customized[p.key] = custom
                self.stats.customisations += 1
            self._trim_customizations()
            return customs[0]

    def _ch_bipartite(
        self,
        spec: WeightSpec,
        anchors: Sequence[int],
        pool: Iterable[int],
        max_cost: float,
        forward: bool,
    ) -> dict[int, float]:
        """One anchor against a pool, joining cached CH search spaces.

        ``forward=True`` answers anchor -> pool member; ``forward=False``
        answers pool member -> anchor.  Joined, quantised results are
        memoised per ``(spec, anchor, node, direction)`` pair, so a warm
        query is one dict probe per pool member — the spaces themselves
        (each independently cached in the settled-map LRU) are only
        touched on a pair miss.
        """
        anchor = anchors[0]
        budget = max_cost if math.isinf(max_cost) else max_cost + DISTANCE_QUANTUM
        with self._lock:
            stats = self.stats
            spec_id = self._spec_ids.get(spec.key)
            if spec_id is None:
                spec_id = len(self._spec_ids)
                self._spec_ids[spec.key] = spec_id
            query_key = (spec_id, anchor, forward, max_cost, tuple(pool))
            memo = self._queries.get(query_key)
            if memo is not None:
                stats.pair_hits += len(query_key[4])
                return dict(memo)
            pairs = self._pairs
            anchor_space: dict[int, float] | None = None
            out: dict[int, float] = {}
            for node in query_key[4]:
                key = (spec_id, anchor, node, forward)
                cached = pairs.get(key)
                if cached is not None:
                    cached_budget, q = cached
                    # A cached join is exact for any distance it could
                    # prove: within the budget it was computed under, or
                    # already within this query's cutoff.
                    if cached_budget >= budget:
                        stats.pair_hits += 1
                        if q <= max_cost and not math.isinf(q):
                            out[node] = q
                        continue
                    if q <= cached_budget and q <= max_cost:
                        stats.pair_hits += 1
                        out[node] = q
                        continue
                stats.pair_misses += 1
                if anchor_space is None:
                    anchor_space = self._map(
                        spec, anchor, "f" if forward else "b", max_cost
                    )
                node_space = self._map(spec, node, "b" if forward else "f", max_cost)
                best = combine_spaces(anchor_space, node_space)
                q = math.inf if math.isinf(best) else _quantize(best)
                if len(pairs) >= self._capacity_pairs:
                    self._trim_pairs()
                pairs[key] = (budget, q)
                if q <= max_cost and not math.isinf(q):
                    out[node] = q
            if len(self._queries) >= self._capacity_pairs:
                self._queries.clear()
            self._queries[query_key] = dict(out)
            return out

    def _trim_pairs(self) -> None:
        """Drop the oldest half of the pair cache in one bulk sweep (plain
        dicts iterate in insertion order; per-probe LRU bookkeeping would
        cost more than the entries it saves)."""
        drop = max(1, len(self._pairs) // 2)
        for key in list(itertools.islice(self._pairs, drop)):
            del self._pairs[key]
        self.stats.evictions += drop

    # -- LRU bookkeeping ----------------------------------------------------

    def _admit(
        self,
        key: tuple[Hashable, int, str],
        budget: float,
        settled: dict[int, float],
        replaced: tuple[float, dict[int, float]] | None,
    ) -> None:
        if replaced is not None:
            self._cached_nodes -= len(replaced[1])
        size = len(settled)
        self._maps[key] = (budget, settled)
        self._maps.move_to_end(key)
        self._cached_nodes += size
        # Evict least-recently-used maps until within budget; the entry
        # being served sits at the MRU end and is never evicted (len > 1).
        while self._cached_nodes > self._capacity_nodes and len(self._maps) > 1:
            __, (___, evicted) = self._maps.popitem(last=False)
            self._cached_nodes -= len(evicted)
            self.stats.evictions += 1
