"""Shortest-path algorithms over :class:`~repro.network.graph.RoadNetwork`.

Derouting cost (Eq. 3) is a shortest-path problem: the cheapest way from
the vehicle's position to a prospective charger and back to the trip.  The
module provides plain Dijkstra, single-source Dijkstra with early exit on
multiple targets, A* with an admissible Euclidean-over-max-speed heuristic,
and bidirectional Dijkstra for long point-to-point queries.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Iterable

from .graph import EdgeWeight, RoadEdge, RoadNetwork

#: Cost function signature; receives the edge being relaxed.  Time-varying
#: traffic plugs in here (see :mod:`repro.estimation.traffic`).
CostFn = Callable[[RoadEdge], float]


class NoPathError(Exception):
    """Raised when no path exists between the requested endpoints."""


@dataclass(frozen=True, slots=True)
class PathResult:
    """A shortest path: node sequence and its total cost."""

    nodes: tuple[int, ...]
    cost: float

    @property
    def hops(self) -> int:
        return max(0, len(self.nodes) - 1)


def _cost_fn(network: RoadNetwork, weight: EdgeWeight | CostFn) -> CostFn:
    if isinstance(weight, EdgeWeight):
        kind = weight
        return lambda edge: edge.weight(kind)
    return weight


def dijkstra(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
) -> PathResult:
    """Point-to-point Dijkstra with early termination at ``target``."""
    cost_of = _cost_fn(network, weight)
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            return PathResult(_reconstruct(parent, source, target), d)
        for edge in network.out_edges(node):
            cost = cost_of(edge)
            if cost < 0:
                raise ValueError(f"negative edge cost on {edge.source}->{edge.target}")
            nd = d + cost
            if nd < dist.get(edge.target, math.inf):
                dist[edge.target] = nd
                parent[edge.target] = node
                heapq.heappush(heap, (nd, edge.target))
    raise NoPathError(f"no path from {source} to {target}")


def dijkstra_all(
    network: RoadNetwork,
    source: int,
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
    max_cost: float = math.inf,
) -> dict[int, float]:
    """Single-source shortest distances, optionally pruned at ``max_cost``.

    The pruning radius is what makes EcoCharge's user radius ``R`` cheap to
    honour: charger candidates beyond ``R`` never get settled.
    """
    cost_of = _cost_fn(network, weight)
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    out: dict[int, float] = {}
    while heap:
        d, node = heapq.heappop(heap)
        if d > max_cost:
            break  # heap is cost-ordered: everything left is over budget
        if node in settled:
            continue
        settled.add(node)
        out[node] = d
        for edge in network.out_edges(node):
            nd = d + cost_of(edge)
            if nd <= max_cost and nd < dist.get(edge.target, math.inf):
                dist[edge.target] = nd
                heapq.heappush(heap, (nd, edge.target))
    return out


def dijkstra_to_targets(
    network: RoadNetwork,
    source: int,
    targets: Iterable[int],
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
    max_cost: float = math.inf,
) -> dict[int, float]:
    """Shortest distances from ``source`` to each of ``targets``.

    Terminates as soon as every reachable target is settled *or* the cost
    budget is exceeded — once the heap minimum passes ``max_cost`` no
    unsettled target can still be reached in budget, so the search stops
    instead of draining the remaining frontier.  Targets that are
    unreachable (or farther than ``max_cost``) are simply absent from the
    result.
    """
    remaining = set(targets)
    if not remaining:
        return {}
    cost_of = _cost_fn(network, weight)
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    found: dict[int, float] = {}
    while heap and remaining:
        d, node = heapq.heappop(heap)
        if d > max_cost:
            break  # cost budget exceeded: no remaining target is in reach
        if node in settled:
            continue
        settled.add(node)
        if node in remaining:
            found[node] = d
            remaining.discard(node)
            if not remaining:
                break
        for edge in network.out_edges(node):
            nd = d + cost_of(edge)
            if nd <= max_cost and nd < dist.get(edge.target, math.inf):
                dist[edge.target] = nd
                heapq.heappush(heap, (nd, edge.target))
    return found


def dijkstra_all_backward(
    network: RoadNetwork,
    target: int,
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
    max_cost: float = math.inf,
) -> dict[int, float]:
    """Shortest distance from every node *to* ``target``.

    Runs Dijkstra over the reversed graph.  Together with
    :func:`dijkstra_all` this lets the derouting estimator price a whole
    candidate pool with two searches instead of two per charger.
    """
    cost_of = _cost_fn(network, weight)
    dist: dict[int, float] = {target: 0.0}
    heap: list[tuple[float, int]] = [(0.0, target)]
    settled: set[int] = set()
    out: dict[int, float] = {}
    while heap:
        d, node = heapq.heappop(heap)
        if d > max_cost:
            break  # budget short-circuit: never scan the rest of the heap
        if node in settled:
            continue
        settled.add(node)
        out[node] = d
        for edge in network.in_edges(node):
            nd = d + cost_of(edge)
            if nd <= max_cost and nd < dist.get(edge.source, math.inf):
                dist[edge.source] = nd
                heapq.heappush(heap, (nd, edge.source))
    return out


def astar(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
    max_speed_kmh: float | None = None,
) -> PathResult:
    """A* search with a Euclidean lower-bound heuristic.

    For :attr:`EdgeWeight.DISTANCE_KM` the straight-line distance is an
    admissible heuristic *provided every edge's length is at least the
    Euclidean gap between its endpoints* — true for physical road
    geometry (roads are never shorter than the crow flies), but callers
    constructing synthetic graphs with arbitrary lengths must ensure it
    or use :func:`dijkstra`.  For :attr:`EdgeWeight.TRAVEL_TIME_H` the
    line distance divided by ``max_speed_kmh`` (default: fastest edge in
    the network) is admissible under the same condition.  For other
    weights the heuristic degrades to 0 and A* behaves like Dijkstra.
    """
    goal = network.node(target).point
    if weight is EdgeWeight.DISTANCE_KM:
        heuristic = lambda node_id: network.node(node_id).point.distance_to(goal)
    elif weight is EdgeWeight.TRAVEL_TIME_H:
        if max_speed_kmh is None:
            max_speed_kmh = max((e.speed_kmh for e in network.edges()), default=1.0)
        top = max_speed_kmh
        heuristic = lambda node_id: network.node(node_id).point.distance_to(goal) / top
    else:
        heuristic = lambda node_id: 0.0

    cost_of = _cost_fn(network, weight)
    g_score: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    settled: set[int] = set()
    while heap:
        __, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            return PathResult(_reconstruct(parent, source, target), g_score[node])
        base = g_score[node]
        for edge in network.out_edges(node):
            tentative = base + cost_of(edge)
            if tentative < g_score.get(edge.target, math.inf):
                g_score[edge.target] = tentative
                parent[edge.target] = node
                heapq.heappush(heap, (tentative + heuristic(edge.target), edge.target))
    raise NoPathError(f"no path from {source} to {target}")


def bidirectional_dijkstra(
    network: RoadNetwork,
    source: int,
    target: int,
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
) -> PathResult:
    """Bidirectional Dijkstra; meets in the middle.

    Roughly halves the search frontier for long point-to-point queries on
    the larger (T-drive / Geolife scale) networks.
    """
    if source == target:
        return PathResult((source,), 0.0)
    cost_of = _cost_fn(network, weight)

    dist_f: dict[int, float] = {source: 0.0}
    dist_b: dict[int, float] = {target: 0.0}
    parent_f: dict[int, int] = {}
    parent_b: dict[int, int] = {}
    heap_f: list[tuple[float, int]] = [(0.0, source)]
    heap_b: list[tuple[float, int]] = [(0.0, target)]
    settled_f: set[int] = set()
    settled_b: set[int] = set()
    best_cost = math.inf
    meeting: int | None = None

    def relax_forward(node: int, d: float) -> None:
        nonlocal best_cost, meeting
        for edge in network.out_edges(node):
            nd = d + cost_of(edge)
            if nd < dist_f.get(edge.target, math.inf):
                dist_f[edge.target] = nd
                parent_f[edge.target] = node
                heapq.heappush(heap_f, (nd, edge.target))
            if edge.target in dist_b and nd + dist_b[edge.target] < best_cost:
                best_cost = nd + dist_b[edge.target]
                meeting = edge.target

    def relax_backward(node: int, d: float) -> None:
        nonlocal best_cost, meeting
        for edge in network.in_edges(node):
            nd = d + cost_of(edge)
            if nd < dist_b.get(edge.source, math.inf):
                dist_b[edge.source] = nd
                parent_b[edge.source] = node
                heapq.heappush(heap_b, (nd, edge.source))
            if edge.source in dist_f and nd + dist_f[edge.source] < best_cost:
                best_cost = nd + dist_f[edge.source]
                meeting = edge.source

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best_cost:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            d, node = heapq.heappop(heap_f)
            if node in settled_f:
                continue
            settled_f.add(node)
            if node in dist_b and d + dist_b[node] < best_cost:
                best_cost = d + dist_b[node]
                meeting = node
            relax_forward(node, d)
        else:
            d, node = heapq.heappop(heap_b)
            if node in settled_b:
                continue
            settled_b.add(node)
            if node in dist_f and d + dist_f[node] < best_cost:
                best_cost = d + dist_f[node]
                meeting = node
            relax_backward(node, d)

    if meeting is None:
        raise NoPathError(f"no path from {source} to {target}")
    forward = _reconstruct(parent_f, source, meeting)
    backward = _reconstruct(parent_b, target, meeting)
    return PathResult(forward + tuple(reversed(backward[:-1])), best_cost)


def _reconstruct(parent: dict[int, int], source: int, target: int) -> tuple[int, ...]:
    nodes = [target]
    node = target
    while node != source:
        node = parent[node]
        nodes.append(node)
    nodes.reverse()
    return tuple(nodes)


def path_cost(
    network: RoadNetwork,
    nodes: Iterable[int],
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
) -> float:
    """Total cost of walking an explicit node sequence."""
    cost_of = _cost_fn(network, weight)
    node_list = list(nodes)
    return sum(cost_of(network.edge(a, b)) for a, b in zip(node_list, node_list[1:]))
