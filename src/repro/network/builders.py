"""Synthetic road-network builders.

The paper evaluates on four city/region road networks (Oldenburg,
California, Beijing, and the multi-city Geolife footprint).  Those exact
networks are not shippable offline, so this module constructs networks
with the same *structural* ingredients real urban networks have: a
perturbed grid core (dense urban blocks), arterial roads with higher
speeds, diagonal shortcuts, and optional sparsification — all seeded and
deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..spatial.geometry import Point
from .graph import RoadNetwork

#: Speed classes (km/h) roughly matching residential / collector / arterial.
RESIDENTIAL_KMH = 30.0
COLLECTOR_KMH = 50.0
ARTERIAL_KMH = 80.0


@dataclass(frozen=True, slots=True)
class NetworkSpec:
    """Parameters for :func:`build_city_network`."""

    width_km: float
    height_km: float
    block_km: float = 1.0
    jitter: float = 0.25
    removal_rate: float = 0.08
    diagonal_rate: float = 0.05
    arterial_every: int = 5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.width_km <= 0 or self.height_km <= 0:
            raise ValueError("network area must be positive")
        if self.block_km <= 0:
            raise ValueError("block_km must be positive")
        if not 0.0 <= self.removal_rate < 0.5:
            raise ValueError("removal_rate must be in [0, 0.5)")
        if not 0.0 <= self.jitter < 0.5:
            raise ValueError("jitter must be in [0, 0.5) of a block")


def build_city_network(spec: NetworkSpec) -> RoadNetwork:
    """Build a perturbed-grid city network.

    Node ids are assigned row-major.  Every road is bidirectional.  After
    random edge removal the network is restricted to its largest strongly
    connected component so that every routing query is answerable.
    """
    rng = np.random.default_rng(spec.seed)
    cols = max(2, int(round(spec.width_km / spec.block_km)) + 1)
    rows = max(2, int(round(spec.height_km / spec.block_km)) + 1)

    network = RoadNetwork()
    for row in range(rows):
        for col in range(cols):
            jx = rng.uniform(-spec.jitter, spec.jitter) * spec.block_km
            jy = rng.uniform(-spec.jitter, spec.jitter) * spec.block_km
            network.add_node(
                row * cols + col,
                Point(col * spec.block_km + jx, row * spec.block_km + jy),
            )

    def speed_for(row: int, col: int, horizontal: bool) -> float:
        index = row if horizontal else col
        if spec.arterial_every > 0 and index % spec.arterial_every == 0:
            return ARTERIAL_KMH
        return COLLECTOR_KMH if index % 2 == 0 else RESIDENTIAL_KMH

    for row in range(rows):
        for col in range(cols):
            node = row * cols + col
            if col + 1 < cols and rng.uniform() >= spec.removal_rate:
                network.add_road(node, node + 1, speed_kmh=speed_for(row, col, True))
            if row + 1 < rows and rng.uniform() >= spec.removal_rate:
                network.add_road(node, node + cols, speed_kmh=speed_for(row, col, False))
            if (
                col + 1 < cols
                and row + 1 < rows
                and rng.uniform() < spec.diagonal_rate
            ):
                network.add_road(node, node + cols + 1, speed_kmh=COLLECTOR_KMH)

    core = network.largest_strongly_connected_component()
    if len(core) < network.node_count:
        network = network.subgraph(core)
    return network


def build_grid_network(
    cols: int, rows: int, block_km: float = 1.0, speed_kmh: float = 50.0
) -> RoadNetwork:
    """Perfectly regular grid — the workhorse of the unit tests, where
    distances are known in closed form."""
    if cols < 1 or rows < 1:
        raise ValueError("grid must have at least one row and column")
    network = RoadNetwork()
    for row in range(rows):
        for col in range(cols):
            network.add_node(row * cols + col, Point(col * block_km, row * block_km))
    for row in range(rows):
        for col in range(cols):
            node = row * cols + col
            if col + 1 < cols:
                network.add_road(node, node + 1, block_km, speed_kmh)
            if row + 1 < rows:
                network.add_road(node, node + cols, block_km, speed_kmh)
    return network


def build_radial_network(
    rings: int,
    spokes: int,
    ring_gap_km: float = 2.0,
    speed_kmh: float = 60.0,
) -> RoadNetwork:
    """Ring-and-spoke network resembling a European city with a beltway.

    Node 0 is the centre; ring ``r`` (1-based) node ``s`` has id
    ``1 + (r - 1) * spokes + s``.
    """
    if rings < 1 or spokes < 3:
        raise ValueError("need at least 1 ring and 3 spokes")
    network = RoadNetwork()
    network.add_node(0, Point(0.0, 0.0))
    for ring in range(1, rings + 1):
        radius = ring * ring_gap_km
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            network.add_node(
                1 + (ring - 1) * spokes + spoke,
                Point(radius * math.cos(angle), radius * math.sin(angle)),
            )
    for spoke in range(spokes):
        network.add_road(0, 1 + spoke, speed_kmh=speed_kmh)
        for ring in range(1, rings):
            inner = 1 + (ring - 1) * spokes + spoke
            outer = 1 + ring * spokes + spoke
            network.add_road(inner, outer, speed_kmh=speed_kmh)
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            a = 1 + (ring - 1) * spokes + spoke
            b = 1 + (ring - 1) * spokes + (spoke + 1) % spokes
            network.add_road(a, b, speed_kmh=speed_kmh)
    return network
