"""Epoch-versioned live-graph updates (incidents, closures, reopenings).

The paper's premise is *continuous* ranking while the world moves, but a
road network built once would otherwise be frozen at build time: a
closure today must not be served from yesterday's warm caches.  This
module is the single mutation point for the live graph:

* an :class:`Incident` multiplies one edge's travel-time cost (closures
  use ``+inf``; a reopening restores the multiplier to 1.0);
* :class:`GraphEpochManager` applies incident batches as **atomic epoch
  bumps** and hands out immutable per-epoch factor tables, so a cost
  function built on epoch *e* keeps pricing epoch *e* forever — readers
  are never torn across a bump;
* every transition records a **worst-case ratio bound** ``[lo, hi]``
  (``lo <= 1 <= hi``) on how much any shortest-path cost may have moved,
  which is what lets the serving tier widen a previous epoch's intervals
  into a *sound* degraded response while re-customization is in flight
  (``docs/live_graph.md``).

Two version counters are deliberately distinct: ``epoch`` bumps on
*every* applied batch (including no-ops, so serving can prove a no-op
changed nothing), while ``weights_version`` bumps only when some edge
cost actually changed — cache keys and fences use ``weights_version``,
which is why a no-op bump invalidates exactly nothing.

The hierarchy topology never changes (customizable contraction
hierarchies exist precisely so metric changes are a re-customization,
not a rebuild — arXiv 2103.10359); only edge *costs* move.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from random import Random
from typing import Iterable, Mapping, Sequence

from .graph import RoadNetwork

__all__ = [
    "Incident",
    "EpochTransition",
    "EpochStats",
    "GraphEpochManager",
    "IncidentStream",
    "VACUOUS_BOUND",
]

#: The bound returned when no useful ratio bound exists (a closure, or
#: history evicted): every non-negative cost satisfies it, so widening
#: with it is still sound — just uninformative — and callers should fall
#: back to a fresh computation on the live graph.
VACUOUS_BOUND: tuple[float, float] = (0.0, math.inf)


@dataclass(frozen=True, slots=True)
class Incident:
    """One edge-cost change: ``multiplier`` scales the edge's travel
    time from this epoch on (an *absolute* factor relative to the static
    map, not relative to the previous incident on the edge).

    ``math.inf`` closes the edge; ``1.0`` restores it to the static map
    (a reopening).  Multipliers apply to travel-time metrics derived
    from the traffic model; raw static map weights (``EdgeWeight``
    specs) deliberately never see incidents.
    """

    source: int
    target: int
    multiplier: float

    def __post_init__(self) -> None:
        if math.isnan(self.multiplier):
            raise ValueError("incident multiplier must not be NaN")
        if not self.multiplier > 0.0:
            raise ValueError("incident multiplier must be positive (inf closes)")

    @classmethod
    def congestion(cls, source: int, target: int, multiplier: float) -> "Incident":
        if not math.isfinite(multiplier):
            raise ValueError("congestion multiplier must be finite")
        return cls(source, target, multiplier)

    @classmethod
    def closure(cls, source: int, target: int) -> "Incident":
        return cls(source, target, math.inf)

    @classmethod
    def reopening(cls, source: int, target: int) -> "Incident":
        return cls(source, target, 1.0)

    @property
    def is_closure(self) -> bool:
        return math.isinf(self.multiplier)

    @property
    def is_reopening(self) -> bool:
        return self.multiplier == 1.0


@dataclass(frozen=True, slots=True)
class EpochTransition:
    """The record of one atomic epoch bump.

    ``ratio_lo``/``ratio_hi`` bound ``new_cost / old_cost`` over *all*
    edges (unchanged edges contribute ratio 1.0, so the bound always
    brackets 1).  Because every path's cost is a sum of edge costs, any
    shortest-path distance ``d`` satisfies
    ``d_new in [ratio_lo * d_old, ratio_hi * d_old]`` — the widening
    bound degraded serving relies on.  A closure makes ``ratio_hi``
    infinite (the bound is vacuous); a reopening of a closed edge makes
    ``ratio_lo`` zero.
    """

    epoch: int
    weights_version: int
    changed: frozenset[tuple[int, int]]
    ratio_lo: float
    ratio_hi: float

    @property
    def is_noop(self) -> bool:
        return not self.changed

    @property
    def is_vacuous(self) -> bool:
        return math.isinf(self.ratio_hi)


@dataclass(slots=True)
class EpochStats:
    """Monotonic counters for the live-graph layer, mirrored into the
    telemetry registry by ``observability.adapters.mirror_epoch_stats``
    with exact reconciliation."""

    epochs: int = 0
    weight_epochs: int = 0
    noop_epochs: int = 0
    incidents_applied: int = 0
    closures_applied: int = 0
    reopenings_applied: int = 0

    COUNTER_FIELDS = (
        "epochs",
        "weight_epochs",
        "noop_epochs",
        "incidents_applied",
        "closures_applied",
        "reopenings_applied",
    )

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}


class GraphEpochManager:
    """The single mutation point for live edge-cost changes.

    ``apply`` swaps in a **new** factor table under the lock (copy on
    write) and bumps the epoch; the previous table object is never
    mutated, so a cost function that captured it keeps pricing its
    admission epoch consistently — in-flight work completes on the epoch
    it started on, and a torn read (half old, half new factors) is
    structurally impossible.

    ``max_history`` bounds the retained transition log; asking for a
    bound across an evicted transition returns :data:`VACUOUS_BOUND`,
    which is sound (it brackets everything) but tells the caller to
    recompute rather than widen.
    """

    def __init__(self, network: RoadNetwork, max_history: int = 64):
        if max_history < 1:
            raise ValueError("max_history must be positive")
        self._network = network
        self._max_history = max_history
        self._lock = threading.RLock()
        self._epoch = 0
        self._weights_version = 0
        #: Current absolute multipliers, ``(source, target) -> factor``.
        #: Treated as immutable: ``apply`` replaces the dict wholesale.
        self._factors: dict[tuple[int, int], float] = {}
        self._transitions: list[EpochTransition] = []
        self.stats = EpochStats()

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def weights_version(self) -> int:
        return self._weights_version

    @property
    def factors(self) -> Mapping[tuple[int, int], float]:
        """The current epoch's factor table (immutable snapshot — safe
        to capture in a cost function; it will never change)."""
        return self._factors

    def snapshot(self) -> tuple[int, Mapping[tuple[int, int], float]]:
        """Atomic (weights version, factor table) pair — the two reads
        under one lock, so a concurrent bump can never pair an old
        version with a new table (or vice versa)."""
        with self._lock:
            return (self._weights_version, self._factors)

    def factor(self, source: int, target: int) -> float:
        return self._factors.get((source, target), 1.0)

    def is_closed(self, source: int, target: int) -> bool:
        return math.isinf(self.factor(source, target))

    def active_incidents(self) -> Mapping[tuple[int, int], float]:
        """Edges whose multiplier currently differs from the static map."""
        return dict(self._factors)

    def apply(self, incidents: Sequence[Incident] | Iterable[Incident]) -> EpochTransition:
        """Apply one incident batch as an atomic epoch bump.

        Unknown edges are rejected before any state changes, so a bad
        batch leaves the manager untouched.  Returns the transition
        record (a no-op batch still bumps ``epoch`` — but not
        ``weights_version`` — so callers can prove nothing changed).
        """
        batch = tuple(incidents)
        for incident in batch:
            # Raises KeyError on an unknown edge before any mutation.
            self._network.edge(incident.source, incident.target)
        with self._lock:
            old = self._factors
            changed: dict[tuple[int, int], tuple[float, float]] = {}
            for incident in batch:
                key = (incident.source, incident.target)
                before = changed[key][0] if key in changed else old.get(key, 1.0)
                if incident.multiplier != before:
                    changed[key] = (before, incident.multiplier)
                elif key in changed:
                    del changed[key]

            self._epoch += 1
            self.stats.epochs += 1
            self.stats.incidents_applied += len(batch)
            for incident in batch:
                if incident.is_closure:
                    self.stats.closures_applied += 1
                elif incident.is_reopening:
                    self.stats.reopenings_applied += 1

            if not changed:
                self.stats.noop_epochs += 1
                transition = EpochTransition(
                    epoch=self._epoch,
                    weights_version=self._weights_version,
                    changed=frozenset(),
                    ratio_lo=1.0,
                    ratio_hi=1.0,
                )
            else:
                new = dict(old)
                ratio_lo, ratio_hi = 1.0, 1.0
                for key, (before, after) in changed.items():
                    if after == 1.0:
                        new.pop(key, None)
                    else:
                        new[key] = after
                    ratio = 0.0 if math.isinf(before) else after / before
                    ratio_lo = min(ratio_lo, ratio)
                    ratio_hi = max(ratio_hi, ratio)
                self._weights_version += 1
                self.stats.weight_epochs += 1
                self._factors = new
                transition = EpochTransition(
                    epoch=self._epoch,
                    weights_version=self._weights_version,
                    changed=frozenset(changed),
                    ratio_lo=ratio_lo,
                    ratio_hi=ratio_hi,
                )
            self._transitions.append(transition)
            if len(self._transitions) > self._max_history:
                del self._transitions[: -self._max_history]
            return transition

    def transitions_since(self, epoch: int) -> tuple[EpochTransition, ...]:
        """Transitions applied strictly after ``epoch``, oldest first.

        Raises ``LookupError`` when part of that span has been evicted
        from the bounded history — the caller cannot reconstruct what
        happened and must treat the bound as vacuous.
        """
        with self._lock:
            if epoch > self._epoch:
                raise ValueError(f"epoch {epoch} is in the future (now {self._epoch})")
            if epoch == self._epoch:
                return ()
            wanted = self._epoch - epoch
            if wanted > len(self._transitions):
                raise LookupError(
                    f"transitions since epoch {epoch} evicted from history"
                )
            return tuple(self._transitions[-wanted:])

    def bound_since(self, epoch: int) -> tuple[float, float]:
        """Cumulative worst-case cost-ratio bound from ``epoch`` to now.

        The product of the per-transition bounds: if ``d`` was a
        shortest-path cost on ``epoch``, the live cost lies in
        ``[lo * d, hi * d]``.  Always brackets 1; returns
        :data:`VACUOUS_BOUND` when the span left the bounded history.
        """
        try:
            transitions = self.transitions_since(epoch)
        except LookupError:
            return VACUOUS_BOUND
        lo, hi = 1.0, 1.0
        for transition in transitions:
            lo *= transition.ratio_lo
            hi *= transition.ratio_hi
        return (lo, hi)


class IncidentStream:
    """Seedable deterministic incident generator for chaos runs.

    Draws from :class:`random.Random` seeded with ``(seed,
    "incidents")`` — the same seed yields the same storm forever, so an
    epoch bug found under a storm replays identically.  Closures are
    tracked and eventually reopened, so a long storm never drives the
    whole network unreachable.
    """

    def __init__(
        self,
        network: RoadNetwork,
        seed: int = 0,
        multiplier_lo: float = 1.25,
        multiplier_hi: float = 4.0,
        closure_rate: float = 0.2,
        reopen_rate: float = 0.5,
        max_closed: int = 2,
    ):
        if not 1.0 <= multiplier_lo <= multiplier_hi:
            raise ValueError("need 1.0 <= multiplier_lo <= multiplier_hi")
        if not 0.0 <= closure_rate <= 1.0 or not 0.0 <= reopen_rate <= 1.0:
            raise ValueError("rates must be in [0, 1]")
        if max_closed < 0:
            raise ValueError("max_closed must be non-negative")
        self._network = network
        self._edges = tuple((e.source, e.target) for e in network.edges())
        if not self._edges:
            raise ValueError("network has no edges to disturb")
        self._rng = Random(f"{seed}:incidents")
        self._multiplier_lo = multiplier_lo
        self._multiplier_hi = multiplier_hi
        self._closure_rate = closure_rate
        self._reopen_rate = reopen_rate
        self._max_closed = max_closed
        self._closed: list[tuple[int, int]] = []
        self.batches_emitted = 0

    def next_batch(self, size: int = 3) -> tuple[Incident, ...]:
        """The next deterministic incident batch (possibly empty when
        ``size`` is 0 — useful for proving no-op bumps change nothing)."""
        rng = self._rng
        batch: list[Incident] = []
        # Reopen old closures first so storms stay survivable.
        still_closed: list[tuple[int, int]] = []
        for source, target in self._closed:
            if rng.random() < self._reopen_rate:
                batch.append(Incident.reopening(source, target))
            else:
                still_closed.append((source, target))
        self._closed = still_closed
        for _ in range(size):
            source, target = rng.choice(self._edges)
            if (
                len(self._closed) < self._max_closed
                and (source, target) not in self._closed
                and rng.random() < self._closure_rate
            ):
                batch.append(Incident.closure(source, target))
                self._closed.append((source, target))
            else:
                multiplier = rng.uniform(self._multiplier_lo, self._multiplier_hi)
                batch.append(Incident.congestion(source, target, multiplier))
        self.batches_emitted += 1
        return tuple(batch)
