"""ALT (A*, Landmarks, Triangle inequality) routing acceleration.

Derouting prices thousands of point-to-point queries per experiment; on
the larger (Geolife-scale) networks a plain Euclidean heuristic
underestimates badly because roads wiggle.  ALT precomputes shortest-path
distances to a few well-spread landmark nodes and uses the triangle
inequality

    dist(u, t)  >=  | dist(L, t) - dist(L, u) |

as an admissible, often much tighter heuristic.  Landmarks are chosen by
farthest-point ("avoid") selection, the standard recipe.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Sequence

from .graph import EdgeWeight, RoadNetwork
from .shortest_path import CostFn, NoPathError, PathResult, _cost_fn, _reconstruct, dijkstra_all, dijkstra_all_backward


@dataclass(frozen=True)
class LandmarkSet:
    """Precomputed landmark distance tables for one weight function.

    ``to_landmark[i][v]`` is dist(v -> landmark_i) and
    ``from_landmark[i][v]`` is dist(landmark_i -> v); both are needed on
    directed graphs.
    """

    landmark_ids: tuple[int, ...]
    to_landmark: tuple[dict[int, float], ...]
    from_landmark: tuple[dict[int, float], ...]

    def lower_bound(self, u: int, t: int) -> float:
        """Admissible lower bound on dist(u -> t)."""
        best = 0.0
        for to_l, from_l in zip(self.to_landmark, self.from_landmark):
            # Triangle inequality, both orientations.
            du_l = to_l.get(u)
            dt_l = to_l.get(t)
            if du_l is not None and dt_l is not None:
                best = max(best, du_l - dt_l)
            l_du = from_l.get(u)
            l_dt = from_l.get(t)
            if l_du is not None and l_dt is not None:
                best = max(best, l_dt - l_du)
        return best


def select_landmarks(
    network: RoadNetwork,
    count: int = 4,
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
) -> LandmarkSet:
    """Farthest-point landmark selection plus table precomputation.

    The first landmark is the node farthest from an arbitrary start; each
    subsequent one maximises the distance to the already-chosen set.
    """
    if count < 1:
        raise ValueError("need at least one landmark")
    node_ids = list(network.node_ids())
    if not node_ids:
        raise ValueError("network has no nodes")
    count = min(count, len(node_ids))

    start = node_ids[0]
    first_dists = dijkstra_all(network, start, weight)
    first = max(first_dists, key=first_dists.get) if first_dists else start

    landmarks = [first]
    min_dist = dijkstra_all(network, first, weight)
    while len(landmarks) < count:
        # Node maximising distance to the nearest chosen landmark.
        candidate = max(
            (n for n in node_ids if n in min_dist),
            key=lambda n: min_dist[n],
            default=None,
        )
        if candidate is None or candidate in landmarks:
            break
        landmarks.append(candidate)
        for node, dist in dijkstra_all(network, candidate, weight).items():
            if dist < min_dist.get(node, math.inf):
                min_dist[node] = dist

    to_tables = tuple(dijkstra_all_backward(network, lm, weight) for lm in landmarks)
    from_tables = tuple(dijkstra_all(network, lm, weight) for lm in landmarks)
    return LandmarkSet(tuple(landmarks), to_tables, from_tables)


def alt_astar(
    network: RoadNetwork,
    source: int,
    target: int,
    landmarks: LandmarkSet,
    weight: EdgeWeight | CostFn = EdgeWeight.DISTANCE_KM,
) -> PathResult:
    """A* with the ALT heuristic.

    The heuristic is admissible and consistent for the *same* weight the
    tables were built with; using mismatched weights voids optimality.
    """
    cost_of = _cost_fn(network, weight)
    g_score: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(landmarks.lower_bound(source, target), source)]
    settled: set[int] = set()
    while heap:
        __, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            return PathResult(_reconstruct(parent, source, target), g_score[node])
        base = g_score[node]
        for edge in network.out_edges(node):
            tentative = base + cost_of(edge)
            if tentative < g_score.get(edge.target, math.inf):
                g_score[edge.target] = tentative
                parent[edge.target] = node
                heapq.heappush(
                    heap,
                    (tentative + landmarks.lower_bound(edge.target, target), edge.target),
                )
    raise NoPathError(f"no path from {source} to {target}")
