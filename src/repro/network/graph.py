"""Directed weighted road network ``G = (V, E)``.

Mirrors the paper's system model (Section II-A): nodes carry spatial
coordinates, each edge ``(u, v)`` carries a weight representing the cost to
travel from ``u`` to ``v`` — length, time, energy or CO2, selectable at
query time through :class:`EdgeWeight`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..spatial.bbox import BoundingBox
from ..spatial.geometry import Point

#: Default drivetrain efficiency used to turn km into kWh.  0.18 kWh/km is a
#: typical compact-EV consumption figure; the CO2 variant applies the EU
#: grid-average intensity so the two weights stay proportional, as the paper
#: notes ("the minimization of D ... consequently the reduction of CO2").
DEFAULT_KWH_PER_KM = 0.18
DEFAULT_CO2_KG_PER_KWH = 0.25


class EdgeWeight(enum.Enum):
    """Selectable notion of travel cost on an edge."""

    DISTANCE_KM = "distance_km"
    TRAVEL_TIME_H = "travel_time_h"
    ENERGY_KWH = "energy_kwh"
    CO2_KG = "co2_kg"


@dataclass(frozen=True, slots=True)
class RoadNode:
    """A vertex of the road network."""

    node_id: int
    point: Point

    @property
    def x(self) -> float:
        return self.point.x

    @property
    def y(self) -> float:
        return self.point.y


@dataclass(frozen=True, slots=True)
class RoadEdge:
    """A directed edge with static attributes.

    ``speed_kmh`` is the free-flow speed; time-varying congestion is applied
    on top by :mod:`repro.estimation.traffic`.
    """

    source: int
    target: int
    length_km: float
    speed_kmh: float = 50.0
    kwh_per_km: float = DEFAULT_KWH_PER_KM

    def __post_init__(self) -> None:
        if self.length_km < 0:
            raise ValueError("edge length must be non-negative")
        if self.speed_kmh <= 0:
            raise ValueError("edge speed must be positive")
        if self.kwh_per_km < 0:
            raise ValueError("energy factor must be non-negative")

    def weight(self, kind: EdgeWeight) -> float:
        """Static cost of traversing this edge under ``kind``."""
        if kind is EdgeWeight.DISTANCE_KM:
            return self.length_km
        if kind is EdgeWeight.TRAVEL_TIME_H:
            return self.length_km / self.speed_kmh
        if kind is EdgeWeight.ENERGY_KWH:
            return self.length_km * self.kwh_per_km
        if kind is EdgeWeight.CO2_KG:
            return self.length_km * self.kwh_per_km * DEFAULT_CO2_KG_PER_KWH
        raise ValueError(f"unknown edge weight kind: {kind!r}")


class RoadNetwork:
    """In-memory directed road graph with spatial lookups."""

    def __init__(self) -> None:
        self._nodes: dict[int, RoadNode] = {}
        self._adjacency: dict[int, dict[int, RoadEdge]] = {}
        self._reverse: dict[int, dict[int, RoadEdge]] = {}
        self._edge_count = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node_id: int, point: Point) -> RoadNode:
        """Create a node at ``point`` (ValueError on duplicate id)."""
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already exists")
        node = RoadNode(node_id, point)
        self._nodes[node_id] = node
        self._adjacency[node_id] = {}
        self._reverse[node_id] = {}
        return node

    def add_edge(
        self,
        source: int,
        target: int,
        length_km: float | None = None,
        speed_kmh: float = 50.0,
        kwh_per_km: float = DEFAULT_KWH_PER_KM,
    ) -> RoadEdge:
        """Add a directed edge; length defaults to the Euclidean node gap."""
        if source not in self._nodes or target not in self._nodes:
            raise KeyError(f"both endpoints must exist before adding edge {source}->{target}")
        if target in self._adjacency[source]:
            raise ValueError(f"edge {source}->{target} already exists")
        if length_km is None:
            length_km = self._nodes[source].point.distance_to(self._nodes[target].point)
        edge = RoadEdge(source, target, length_km, speed_kmh, kwh_per_km)
        self._adjacency[source][target] = edge
        self._reverse[target][source] = edge
        self._edge_count += 1
        return edge

    def add_road(
        self,
        a: int,
        b: int,
        length_km: float | None = None,
        speed_kmh: float = 50.0,
        kwh_per_km: float = DEFAULT_KWH_PER_KM,
    ) -> tuple[RoadEdge, RoadEdge]:
        """Add a bidirectional road as two directed edges."""
        return (
            self.add_edge(a, b, length_km, speed_kmh, kwh_per_km),
            self.add_edge(b, a, length_km, speed_kmh, kwh_per_km),
        )

    # -- accessors ---------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def node(self, node_id: int) -> RoadNode:
        """The node with ``node_id`` (KeyError if absent)."""
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        """True when ``node_id`` exists."""
        return node_id in self._nodes

    def edge(self, source: int, target: int) -> RoadEdge:
        """The directed edge ``source -> target`` (KeyError if absent)."""
        return self._adjacency[source][target]

    def has_edge(self, source: int, target: int) -> bool:
        """True when the directed edge ``source -> target`` exists."""
        return source in self._adjacency and target in self._adjacency[source]

    def nodes(self) -> Iterator[RoadNode]:
        """Iterate over all nodes."""
        yield from self._nodes.values()

    def node_ids(self) -> Iterator[int]:
        """Iterate over all node ids."""
        yield from self._nodes.keys()

    def edges(self) -> Iterator[RoadEdge]:
        """Iterate over all directed edges."""
        for neighbours in self._adjacency.values():
            yield from neighbours.values()

    def out_edges(self, node_id: int) -> Iterator[RoadEdge]:
        """Edges leaving ``node_id``."""
        yield from self._adjacency[node_id].values()

    def in_edges(self, node_id: int) -> Iterator[RoadEdge]:
        """Edges entering ``node_id``."""
        yield from self._reverse[node_id].values()

    def neighbours(self, node_id: int) -> Iterator[int]:
        """Ids of nodes directly reachable from ``node_id``."""
        yield from self._adjacency[node_id].keys()

    def degree(self, node_id: int) -> int:
        """Out-degree of ``node_id``."""
        return len(self._adjacency[node_id])

    def bounds(self) -> BoundingBox:
        """Bounding box of all node coordinates."""
        return BoundingBox.from_points(node.point for node in self._nodes.values())

    # -- spatial helpers ---------------------------------------------------

    def nearest_node(self, point: Point) -> RoadNode:
        """Closest node by Euclidean distance (linear scan; callers that
        need repeated snapping should build an index via ``node_index``)."""
        if not self._nodes:
            raise ValueError("network has no nodes")
        return min(self._nodes.values(), key=lambda node: node.point.squared_distance_to(point))

    def node_index(self):
        """A :class:`~repro.spatial.kdtree.KDTree` over all nodes, for
        efficient repeated snapping of GPS points to the network."""
        from ..spatial.kdtree import KDTree

        return KDTree([(node.point, node.node_id) for node in self._nodes.values()])

    # -- integrity ---------------------------------------------------------

    def is_strongly_connected(self) -> bool:
        """True when every node can reach every other node."""
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        return (
            len(self._reachable(start, self._adjacency)) == len(self._nodes)
            and len(self._reachable(start, self._reverse)) == len(self._nodes)
        )

    @staticmethod
    def _reachable(start: int, adjacency: dict[int, dict[int, RoadEdge]]) -> set[int]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen

    def largest_strongly_connected_component(self) -> set[int]:
        """Node ids of the largest SCC (Tarjan's algorithm, iterative)."""
        index_counter = 0
        indices: dict[int, int] = {}
        lowlink: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        best: set[int] = set()

        for root in self._nodes:
            if root in indices:
                continue
            # Iterative Tarjan: work items are (node, iterator over children).
            work = [(root, iter(self._adjacency[root]))]
            indices[root] = lowlink[root] = index_counter
            index_counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in indices:
                        indices[child] = lowlink[child] = index_counter
                        index_counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self._adjacency[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], indices[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == indices[node]:
                    component: set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    if len(component) > len(best):
                        best = component
        return best

    def subgraph(self, node_ids: set[int]) -> "RoadNetwork":
        """Copy containing only ``node_ids`` and the edges between them."""
        sub = RoadNetwork()
        for node_id in node_ids:
            sub.add_node(node_id, self._nodes[node_id].point)
        for node_id in node_ids:
            for target, edge in self._adjacency[node_id].items():
                if target in node_ids:
                    sub.add_edge(node_id, target, edge.length_km, edge.speed_kmh, edge.kwh_per_km)
        return sub
