"""Contraction hierarchy over a :class:`~repro.network.graph.RoadNetwork`.

The derouting component ``D`` prices whole candidate pools per trip
segment; under plain Dijkstra every pricing pass costs |V| log |V| per
cost function.  A contraction hierarchy spends that work once: nodes are
ordered by an edge-difference heuristic and contracted bottom-up, adding a
shortcut for every lower triangle that contraction closes, in the style of
*customisable* contraction hierarchies (Dibbelt/Strasser/Wagner; see
PAPERS.md "Nearest-Neighbor Queries in Customizable Contraction
Hierarchies").  Because the shortcut *topology* is metric-independent, one
preprocessing pass serves every traffic cost function: plugging in a new
metric is a linear sweep over the recorded triangles
(:meth:`ContractionHierarchy.customize`), after which point queries touch
only the tiny upward search spaces.

Three query shapes are provided on the customised hierarchy, matching how
the ranking tick consumes distances:

* :meth:`CustomizedHierarchy.distance` — point to point;
* :meth:`CustomizedHierarchy.one_to_many` / :meth:`many_to_one` — one
  segment anchor (or rejoin node) against a charger pool;
* :meth:`CustomizedHierarchy.many_to_many` — the bucket-based pool x
  rejoin matrix.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .graph import RoadEdge, RoadNetwork
from .shortest_path import CostFn


#: Regions at or below this size are contracted in plain id order — the
#: point where dissection bookkeeping outweighs the separator savings.
_ND_LEAF_SIZE = 8


def _nested_dissection_order(network: RoadNetwork) -> list[int]:
    """Geometric nested-dissection contraction order (separators last).

    Recursively halve the region along its wider coordinate axis; the
    vertex separator (nodes on the left half with a neighbour on the
    right) is contracted *after* both halves.  For road graphs the
    separators are O(sqrt(region)) — the fill-in (and with it triangle
    count, customisation time, and query search-space size) stays near
    the planar-graph optimum, where degree-greedy orderings degrade badly
    on regular grids.
    """
    points = {n: network.node(n).point for n in network.node_ids()}
    neighbours: dict[int, set[int]] = {n: set() for n in points}
    for edge in network.edges():
        if edge.source != edge.target:
            neighbours[edge.source].add(edge.target)
            neighbours[edge.target].add(edge.source)

    order: list[int] = []
    stack: list[tuple[list[int], bool]] = [(sorted(points), False)]
    while stack:
        region, is_leaf = stack.pop()
        if is_leaf or len(region) <= _ND_LEAF_SIZE:
            order.extend(sorted(region))
            continue
        xs = [points[n].x for n in region]
        ys = [points[n].y for n in region]
        axis = "x" if max(xs) - min(xs) >= max(ys) - min(ys) else "y"
        key = (lambda n: (points[n].x, n)) if axis == "x" else (
            lambda n: (points[n].y, n)
        )
        ordered = sorted(region, key=key)
        left = set(ordered[: len(ordered) // 2])
        right_set = set(ordered[len(ordered) // 2 :])
        separator = sorted(
            n for n in left if any(m in right_set for m in neighbours[n])
        )
        left_rest = [n for n in ordered[: len(ordered) // 2] if n not in set(separator)]
        right_rest = ordered[len(ordered) // 2 :]
        # LIFO stack: push separator first so it is *emitted* last.
        stack.append((separator, True))
        stack.append((right_rest, False))
        stack.append((left_rest, False))
    return order


@dataclass(frozen=True, slots=True)
class CHStats:
    """Size of one preprocessing pass."""

    nodes: int
    original_arcs: int
    shortcut_arcs: int
    triangles: int


class ContractionHierarchy:
    """Metric-independent contraction order, shortcuts, and triangles.

    Build once per network topology with :meth:`build`; derive per-metric
    weights with :meth:`customize`.  The instance is immutable after
    construction and safe to share between engines.
    """

    def __init__(
        self,
        rank: dict[int, int],
        arc_tails: list[int],
        arc_heads: list[int],
        arc_edges: list[RoadEdge | None],
        triangles: list[tuple[int, int, int]],
        original_arcs: int,
    ) -> None:
        self._rank = rank
        self._arc_tails = arc_tails
        self._arc_heads = arc_heads
        self._arc_edges = arc_edges
        self._triangles = triangles
        self._original_arcs = original_arcs
        #: Vectorised-sweep batches, built lazily on first customisation.
        self._sweep_batches: list[tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None
        #: Row-replicated sweep plans for stacked customisation, keyed by
        #: row count (see :meth:`customize_many`).
        self._stacked_plans: dict[int, list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = {}
        # One stable tuple: batch evaluators key their static per-arc
        # arrays by the identity of this sequence.
        self._original_edges = tuple(arc_edges)
        # Forward search graph: arcs leaving ``tail`` toward higher rank.
        up_out: dict[int, list[tuple[int, int]]] = {n: [] for n in rank}
        # Backward search graph: arcs entering ``head`` from higher rank,
        # traversed head -> tail (i.e. the reverse of the downward arcs).
        up_in: dict[int, list[tuple[int, int]]] = {n: [] for n in rank}
        for arc_id, (tail, head) in enumerate(zip(arc_tails, arc_heads)):
            if rank[tail] < rank[head]:
                up_out[tail].append((head, arc_id))
            else:
                up_in[head].append((tail, arc_id))
        self._up_out = up_out
        self._up_in = up_in
        # Dense-id fast path for search spaces: when node ids pack into a
        # small contiguous span (every synthetic builder emits 0..n-1),
        # distances can live in a flat list indexed by node id instead of
        # a dict — the per-relaxation probe is an index load, not a hash.
        span = (max(rank) + 1) if rank else 0
        dense = 0 < span <= 2 * len(rank) + 1024 and min(rank, default=0) >= 0
        self._node_span = span if dense else 0

    # -- preprocessing ------------------------------------------------------

    @classmethod
    def build(cls, network: RoadNetwork, ordering: str = "nd") -> "ContractionHierarchy":
        """Contract every node and record the closed lower triangles.

        ``ordering`` selects the contraction order: ``"nd"`` (default)
        uses geometric nested dissection over the node coordinates —
        separators are contracted last, which keeps both the shortcut
        count and the upward search spaces near the theoretical optimum
        for planar-ish road graphs; ``"edge_difference"`` is the classic
        greedy ``shortcuts_added - arcs_removed`` heuristic with lazy
        re-evaluation.  Both are deterministic (node-id tie-breaks).  No
        witness search is run: like CCH preprocessing, *every* lower
        triangle gets a shortcut so the topology stays valid for
        arbitrary non-negative metrics.
        """
        arc_tails: list[int] = []
        arc_heads: list[int] = []
        arc_edges: list[RoadEdge | None] = []
        fwd: dict[int, dict[int, int]] = {n: {} for n in network.node_ids()}
        bwd: dict[int, dict[int, int]] = {n: {} for n in network.node_ids()}
        for edge in network.edges():
            if edge.source == edge.target:
                continue  # self loops never lie on a shortest path
            arc_id = len(arc_tails)
            arc_tails.append(edge.source)
            arc_heads.append(edge.target)
            arc_edges.append(edge)
            fwd[edge.source][edge.target] = arc_id
            bwd[edge.target][edge.source] = arc_id
        original_arcs = len(arc_tails)

        rank: dict[int, int] = {}
        triangles: list[tuple[int, int, int]] = []

        def contract(node: int) -> None:
            rank[node] = len(rank)
            in_nbrs = list(bwd[node].items())
            out_nbrs = list(fwd[node].items())
            for u, __ in in_nbrs:
                del fwd[u][node]
            for w, __ in out_nbrs:
                del bwd[w][node]
            del fwd[node]
            del bwd[node]
            for u, arc_uv in in_nbrs:
                fu = fwd[u]
                for w, arc_vw in out_nbrs:
                    if u == w:
                        continue
                    arc_uw = fu.get(w)
                    if arc_uw is None:
                        arc_uw = len(arc_tails)
                        arc_tails.append(u)
                        arc_heads.append(w)
                        arc_edges.append(None)
                        fu[w] = arc_uw
                        bwd[w][u] = arc_uw
                    triangles.append((arc_uv, arc_vw, arc_uw))

        if ordering == "nd":
            for node in _nested_dissection_order(network):
                contract(node)
        elif ordering == "edge_difference":
            def edge_difference(node: int) -> int:
                added = 0
                outs = fwd[node]
                for u in bwd[node]:
                    fu = fwd[u]
                    for w in outs:
                        if u != w and w not in fu:
                            added += 1
                return added - len(bwd[node]) - len(outs)

            heap: list[tuple[int, int]] = [(edge_difference(n), n) for n in fwd]
            heapq.heapify(heap)
            while heap:
                __, node = heapq.heappop(heap)
                if node in rank:
                    continue
                current = edge_difference(node)
                if heap and current > heap[0][0]:
                    heapq.heappush(heap, (current, node))
                    continue
                contract(node)
        else:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected 'nd' or 'edge_difference'"
            )
        return cls(rank, arc_tails, arc_heads, arc_edges, triangles, original_arcs)

    @property
    def stats(self) -> CHStats:
        return CHStats(
            nodes=len(self._rank),
            original_arcs=self._original_arcs,
            shortcut_arcs=len(self._arc_tails) - self._original_arcs,
            triangles=len(self._triangles),
        )

    @property
    def original_edges(self) -> tuple[RoadEdge | None, ...]:
        """Per-arc source edge (``None`` for shortcuts), customisation input.

        The same tuple object is returned on every access so vectorised
        evaluators can key their static arrays by its identity.
        """
        return self._original_edges

    def rank_of(self, node: int) -> int:
        """Contraction rank of ``node`` (0 = contracted first)."""
        return self._rank[node]

    # -- customisation ------------------------------------------------------

    def _sweep_plan(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Batch the triangle sweep for vectorised execution.

        Triangles are recorded in contraction order, so a triangle's input
        arcs are finalised before it runs.  Consecutive triangles are
        merged into one numpy batch as long as no batch member *reads* an
        arc another member *writes* (and no two write the same arc) —
        under that condition the batched ``minimum`` update is bitwise
        identical to the sequential scalar sweep.
        """
        if self._sweep_batches is not None:
            return self._sweep_batches
        batches: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        uv: list[int] = []
        vw: list[int] = []
        uw: list[int] = []
        written: set[int] = set()

        def flush() -> None:
            if uw:
                batches.append(
                    (
                        np.asarray(uv, dtype=np.intp),
                        np.asarray(vw, dtype=np.intp),
                        np.asarray(uw, dtype=np.intp),
                    )
                )
                uv.clear()
                vw.clear()
                uw.clear()
                written.clear()

        for arc_uv, arc_vw, arc_uw in self._triangles:
            if arc_uv in written or arc_vw in written or arc_uw in written:
                flush()
            uv.append(arc_uv)
            vw.append(arc_vw)
            uw.append(arc_uw)
            written.add(arc_uw)
        flush()
        self._sweep_batches = batches
        return batches

    def customize(
        self, cost_of: CostFn, arc_costs: Sequence[float] | None = None
    ) -> "CustomizedHierarchy":
        """Bind a metric to the topology (basic CCH customisation).

        ``arc_costs`` optionally supplies the per-*original-arc* costs as a
        precomputed sequence aligned with :attr:`original_edges` — the
        vectorised fast path used by
        :meth:`~repro.estimation.traffic.TrafficModel` specs.  When absent,
        ``cost_of`` is evaluated per original edge.  Shortcut weights are
        then resolved by one sweep over the recorded triangles (batched
        into vectorised ``minimum`` updates), which is valid because every
        triangle's constituent arcs were finalised by earlier
        contractions.
        """
        total = len(self._arc_tails)
        if arc_costs is not None:
            weights_arr = np.full(total, math.inf, dtype=np.float64)
            costs = np.asarray(arc_costs, dtype=np.float64)
            if np.any(costs[np.isfinite(costs)] < 0):
                raise ValueError("negative arc cost in customisation")
            weights_arr[: len(costs)] = costs
        else:
            weights_arr = np.full(total, math.inf, dtype=np.float64)
            for arc_id, edge in enumerate(self._arc_edges):
                if edge is None:
                    continue
                cost = cost_of(edge)
                if cost < 0:
                    raise ValueError(
                        f"negative edge cost on {edge.source}->{edge.target}"
                    )
                weights_arr[arc_id] = cost
        for uv, vw, uw in self._sweep_plan():
            # uw indices are unique within a batch, so plain fancy-index
            # assignment is a correct (and bitwise-sequential) minimum.
            weights_arr[uw] = np.minimum(
                weights_arr[uw], weights_arr[uv] + weights_arr[vw]
            )
        return CustomizedHierarchy(self, weights_arr.tolist())

    def customize_many(
        self, arc_cost_rows: Sequence[Sequence[float]]
    ) -> list["CustomizedHierarchy"]:
        """Customise several metrics in one stacked triangle sweep.

        Each row of ``arc_cost_rows`` is a per-arc cost sequence aligned
        with :attr:`original_edges` (``inf`` at shortcut positions).  The
        rows are laid end-to-end in one flat array and swept with a
        row-replicated index plan — 1D fancy indexing keeps the per-batch
        numpy overhead of ``k`` metrics at that of *one*, so customising
        the two interval-bound metrics of a segment costs barely more
        than one sweep.  Each row's result is bitwise identical to a solo
        :meth:`customize` call with the same costs (identical elementwise
        operations in identical order).
        """
        if not arc_cost_rows:
            return []
        k = len(arc_cost_rows)
        total = len(self._arc_tails)
        weights = np.full(k * total, math.inf, dtype=np.float64)
        for row, arc_costs in enumerate(arc_cost_rows):
            costs = np.asarray(arc_costs, dtype=np.float64)
            if np.any(costs[np.isfinite(costs)] < 0):
                raise ValueError("negative arc cost in customisation")
            weights[row * total : row * total + len(costs)] = costs
        for uv, vw, uw in self._stacked_plan(k):
            weights[uw] = np.minimum(weights[uw], weights[uv] + weights[vw])
        return [
            CustomizedHierarchy(self, weights[row * total : (row + 1) * total].tolist())
            for row in range(k)
        ]

    def _stacked_plan(
        self, k: int
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """The sweep plan replicated across ``k`` stacked weight rows."""
        if k == 1:
            return self._sweep_plan()
        cached = self._stacked_plans.get(k)
        if cached is not None:
            return cached
        total = len(self._arc_tails)
        offsets = [row * total for row in range(k)]
        plan = [
            tuple(
                np.concatenate([index + offset for offset in offsets])
                for index in triple
            )
            for triple in self._sweep_plan()
        ]
        self._stacked_plans[k] = plan
        return plan


class CustomizedHierarchy:
    """A :class:`ContractionHierarchy` with one metric's weights bound."""

    __slots__ = ("_ch", "_weights")

    def __init__(self, ch: ContractionHierarchy, weights: list[float]) -> None:
        self._ch = ch
        self._weights = weights

    @property
    def hierarchy(self) -> ContractionHierarchy:
        return self._ch

    # -- search spaces ------------------------------------------------------

    def _space(
        self,
        origin: int,
        adjacency: dict[int, list[tuple[int, int]]],
        max_cost: float,
    ) -> dict[int, float]:
        span = self._ch._node_span
        if span:
            return self._space_dense(origin, adjacency, max_cost, span)
        weights = self._weights
        dist: dict[int, float] = {origin: 0.0}
        heap: list[tuple[float, int]] = [(0.0, origin)]
        push, pop, get = heapq.heappush, heapq.heappop, dist.get
        inf = math.inf
        while heap:
            d, node = pop(heap)
            if d > max_cost:
                # Everything still queued is farther; entries already in
                # ``dist`` but past the budget are exactly the unsettled.
                return {n: v for n, v in dist.items() if v <= max_cost}
            if d > dist[node]:
                continue  # stale queue entry, node already settled closer
            for neighbour, arc_id in adjacency[node]:
                nd = d + weights[arc_id]
                if nd <= max_cost and nd < get(neighbour, inf):
                    dist[neighbour] = nd
                    push(heap, (nd, neighbour))
        return dist

    def _space_dense(
        self,
        origin: int,
        adjacency: dict[int, list[tuple[int, int]]],
        max_cost: float,
        span: int,
    ) -> dict[int, float]:
        """Flat-list variant of :meth:`_space` for contiguous node ids.

        Identical relaxation order and arithmetic — only the distance
        store changes (list indexed by id instead of a dict), so every
        settled value is bitwise equal to the dict path's.
        """
        if max_cost < 0.0:
            return {}  # dict path: even the origin fails the budget filter
        weights = self._weights
        inf = math.inf
        dist = [inf] * span
        dist[origin] = 0.0
        reached = [origin]
        heap: list[tuple[float, int]] = [(0.0, origin)]
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            d, node = pop(heap)
            if d > dist[node]:
                continue  # stale queue entry, node already settled closer
            for neighbour, arc_id in adjacency[node]:
                nd = d + weights[arc_id]
                if nd <= max_cost and nd < dist[neighbour]:
                    if dist[neighbour] is inf:
                        reached.append(neighbour)
                    dist[neighbour] = nd
                    push(heap, (nd, neighbour))
        return {node: dist[node] for node in reached}

    def forward_space(self, source: int, max_cost: float = math.inf) -> dict[int, float]:
        """Upward distances from ``source`` (the forward CH frontier)."""
        return self._space(source, self._ch._up_out, max_cost)

    def backward_space(self, target: int, max_cost: float = math.inf) -> dict[int, float]:
        """Upward distances *to* ``target`` over the reversed downward arcs."""
        return self._space(target, self._ch._up_in, max_cost)

    # -- queries ------------------------------------------------------------

    def distance(
        self, source: int, target: int, max_cost: float = math.inf
    ) -> float | None:
        """Shortest-path cost, or None when above ``max_cost``/unreachable."""
        best = combine_spaces(
            self.forward_space(source, max_cost), self.backward_space(target, max_cost)
        )
        return best if best <= max_cost else None

    def one_to_many(
        self,
        source: int,
        targets: Iterable[int],
        max_cost: float = math.inf,
    ) -> dict[int, float]:
        """Distances from ``source`` to each target within ``max_cost``."""
        forward = self.forward_space(source, max_cost)
        out: dict[int, float] = {}
        for target in targets:
            best = combine_spaces(forward, self.backward_space(target, max_cost))
            if best <= max_cost:
                out[target] = best
        return out

    def many_to_one(
        self,
        sources: Iterable[int],
        target: int,
        max_cost: float = math.inf,
    ) -> dict[int, float]:
        """Distances from each source *to* ``target`` within ``max_cost``."""
        backward = self.backward_space(target, max_cost)
        out: dict[int, float] = {}
        for source in sources:
            best = combine_spaces(self.forward_space(source, max_cost), backward)
            if best <= max_cost:
                out[source] = best
        return out

    def many_to_many(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        max_cost: float = math.inf,
    ) -> dict[tuple[int, int], float]:
        """Bucket-based many-to-many matrix (Knopp et al. style).

        Every target's backward space is scattered into per-node buckets
        once; each source then answers against *all* targets with a single
        forward space scan — the classic trick that prices "segment anchor
        x candidate-pool chargers" in one pass.
        """
        buckets: dict[int, list[tuple[int, float]]] = {}
        for target in targets:
            for node, d_target in self.backward_space(target, max_cost).items():
                buckets.setdefault(node, []).append((target, d_target))
        out: dict[tuple[int, int], float] = {}
        for source in sources:
            best: dict[int, float] = {}
            for node, d_source in self.forward_space(source, max_cost).items():
                for target, d_target in buckets.get(node, ()):
                    total = d_source + d_target
                    if total <= max_cost and total < best.get(target, math.inf):
                        best[target] = total
            for target, total in best.items():
                out[(source, target)] = total
        return out


def combine_spaces(
    forward: Mapping[int, float], backward: Mapping[int, float]
) -> float:
    """min over meeting nodes of up-distance + down-distance (inf if none)."""
    if len(backward) < len(forward):
        smaller, larger = backward, forward
    else:
        smaller, larger = forward, backward
    best = math.inf
    for node, d_small in smaller.items():
        d_large = larger.get(node)
        if d_large is not None and d_small + d_large < best:
            best = d_small + d_large
    return best
