"""Road-network substrate: graphs, shortest paths, builders, and trips."""

from .builders import (
    ARTERIAL_KMH,
    COLLECTOR_KMH,
    RESIDENTIAL_KMH,
    NetworkSpec,
    build_city_network,
    build_grid_network,
    build_radial_network,
)
from .graph import (
    DEFAULT_CO2_KG_PER_KWH,
    DEFAULT_KWH_PER_KM,
    EdgeWeight,
    RoadEdge,
    RoadNetwork,
    RoadNode,
)
from .landmarks import LandmarkSet, alt_astar, select_landmarks
from .path import DEFAULT_SEGMENT_KM, Trip, TripSegment, resample_polyline
from .shortest_path import (
    NoPathError,
    PathResult,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_all,
    dijkstra_to_targets,
    path_cost,
)

__all__ = [
    "ARTERIAL_KMH",
    "COLLECTOR_KMH",
    "DEFAULT_CO2_KG_PER_KWH",
    "DEFAULT_KWH_PER_KM",
    "DEFAULT_SEGMENT_KM",
    "EdgeWeight",
    "LandmarkSet",
    "NetworkSpec",
    "NoPathError",
    "PathResult",
    "RESIDENTIAL_KMH",
    "RoadEdge",
    "RoadNetwork",
    "RoadNode",
    "Trip",
    "TripSegment",
    "alt_astar",
    "astar",
    "bidirectional_dijkstra",
    "build_city_network",
    "build_grid_network",
    "build_radial_network",
    "dijkstra",
    "dijkstra_all",
    "dijkstra_to_targets",
    "path_cost",
    "resample_polyline",
    "select_landmarks",
]
