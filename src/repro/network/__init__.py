"""Road-network substrate: graphs, shortest paths, builders, and trips."""

from .contraction import CHStats, ContractionHierarchy, CustomizedHierarchy
from .distance_engine import (
    BACKENDS,
    DISTANCE_DECIMALS,
    DistanceEngine,
    EngineStats,
    WeightSpec,
)
from .builders import (
    ARTERIAL_KMH,
    COLLECTOR_KMH,
    RESIDENTIAL_KMH,
    NetworkSpec,
    build_city_network,
    build_grid_network,
    build_radial_network,
)
from .graph import (
    DEFAULT_CO2_KG_PER_KWH,
    DEFAULT_KWH_PER_KM,
    EdgeWeight,
    RoadEdge,
    RoadNetwork,
    RoadNode,
)
from .landmarks import LandmarkSet, alt_astar, select_landmarks
from .path import DEFAULT_SEGMENT_KM, Trip, TripSegment, resample_polyline
from .shortest_path import (
    NoPathError,
    PathResult,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_all,
    dijkstra_all_backward,
    dijkstra_to_targets,
    path_cost,
)

__all__ = [
    "ARTERIAL_KMH",
    "BACKENDS",
    "CHStats",
    "COLLECTOR_KMH",
    "ContractionHierarchy",
    "CustomizedHierarchy",
    "DEFAULT_CO2_KG_PER_KWH",
    "DEFAULT_KWH_PER_KM",
    "DEFAULT_SEGMENT_KM",
    "DISTANCE_DECIMALS",
    "DistanceEngine",
    "EdgeWeight",
    "EngineStats",
    "LandmarkSet",
    "NetworkSpec",
    "NoPathError",
    "PathResult",
    "RESIDENTIAL_KMH",
    "RoadEdge",
    "RoadNetwork",
    "RoadNode",
    "Trip",
    "TripSegment",
    "WeightSpec",
    "alt_astar",
    "astar",
    "bidirectional_dijkstra",
    "build_city_network",
    "build_grid_network",
    "build_radial_network",
    "dijkstra",
    "dijkstra_all",
    "dijkstra_all_backward",
    "dijkstra_to_targets",
    "path_cost",
    "resample_polyline",
    "select_landmarks",
]
