"""Trips, path segments, and trip segmentation.

The paper's Step 1 (Section III-A): a scheduled trip ``P`` is partitioned
into path segments ``p`` of roughly 3-5 km each; the CkNN-EC query then
produces one kNN result per segment.  Simulation time is measured in hours
from an arbitrary day-0 midnight, so ``7.5`` means 07:30 on day 0 and
``31.0`` means 07:00 on day 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..spatial.geometry import Point, polyline_length
from .graph import EdgeWeight, RoadNetwork
from .shortest_path import PathResult, dijkstra

#: Paper default: segments of "approximately 3-5 km"; we use the midpoint.
DEFAULT_SEGMENT_KM = 4.0


@dataclass(frozen=True, slots=True)
class TripSegment:
    """A contiguous stretch of a trip.

    ``start_offset_km`` is the distance already travelled when the segment
    begins, enabling per-segment ETA computation.
    """

    index: int
    node_ids: tuple[int, ...]
    points: tuple[Point, ...]
    start_offset_km: float
    length_km: float

    @property
    def start(self) -> Point:
        return self.points[0]

    @property
    def end(self) -> Point:
        return self.points[-1]

    @property
    def end_offset_km(self) -> float:
        return self.start_offset_km + self.length_km

    @property
    def midpoint(self) -> Point:
        """Representative query point for the segment (used by ranking)."""
        if len(self.points) == 1:
            return self.points[0]
        target = self.length_km / 2.0
        walked = 0.0
        for a, b in zip(self.points, self.points[1:]):
            step = a.distance_to(b)
            if walked + step >= target and step > 0:
                fraction = (target - walked) / step
                return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)
            walked += step
        return self.points[-1]

    @property
    def anchor_node(self) -> int:
        """Network node used for road-distance queries from this segment
        (the node closest to the segment midpoint)."""
        mid = self.midpoint
        best = min(
            range(len(self.points)), key=lambda i: self.points[i].squared_distance_to(mid)
        )
        return self.node_ids[best]


@dataclass(frozen=True)
class Trip:
    """A scheduled trip ``P``: a node path plus its departure time."""

    network: RoadNetwork
    node_ids: tuple[int, ...]
    departure_time_h: float = 8.0

    def __post_init__(self) -> None:
        if len(self.node_ids) < 1:
            raise ValueError("a trip needs at least one node")
        for a, b in zip(self.node_ids, self.node_ids[1:]):
            if not self.network.has_edge(a, b):
                raise ValueError(f"trip uses missing edge {a}->{b}")

    @classmethod
    def route(
        cls,
        network: RoadNetwork,
        source: int,
        target: int,
        departure_time_h: float = 8.0,
        weight: EdgeWeight = EdgeWeight.DISTANCE_KM,
    ) -> "Trip":
        """Build a trip along the shortest path from source to target."""
        result: PathResult = dijkstra(network, source, target, weight)
        return cls(network, result.nodes, departure_time_h)

    @property
    def points(self) -> tuple[Point, ...]:
        return tuple(self.network.node(n).point for n in self.node_ids)

    @property
    def length_km(self) -> float:
        return sum(
            self.network.edge(a, b).length_km
            for a, b in zip(self.node_ids, self.node_ids[1:])
        )

    @property
    def source(self) -> int:
        return self.node_ids[0]

    @property
    def destination(self) -> int:
        return self.node_ids[-1]

    def travel_time_h(self) -> float:
        """Free-flow travel time over the whole trip."""
        return sum(
            self.network.edge(a, b).weight(EdgeWeight.TRAVEL_TIME_H)
            for a, b in zip(self.node_ids, self.node_ids[1:])
        )

    def segments(self, segment_km: float = DEFAULT_SEGMENT_KM) -> tuple[TripSegment, ...]:
        """Partition into segments of roughly ``segment_km`` each.

        Edges are never split: a segment closes at the first node at which
        its accumulated length reaches ``segment_km``.  Every segment
        therefore starts and ends on network nodes, and consecutive
        segments share their boundary node — the *split points* ``SL`` of
        the continuous query.
        """
        if segment_km <= 0:
            raise ValueError("segment_km must be positive")
        if len(self.node_ids) == 1:
            only = self.network.node(self.node_ids[0]).point
            return (TripSegment(0, self.node_ids, (only,), 0.0, 0.0),)

        segments: list[TripSegment] = []
        seg_nodes: list[int] = [self.node_ids[0]]
        seg_length = 0.0
        offset = 0.0
        for a, b in zip(self.node_ids, self.node_ids[1:]):
            seg_nodes.append(b)
            seg_length += self.network.edge(a, b).length_km
            if seg_length >= segment_km and b != self.node_ids[-1]:
                segments.append(self._make_segment(len(segments), seg_nodes, offset, seg_length))
                offset += seg_length
                seg_nodes = [b]
                seg_length = 0.0
        if len(seg_nodes) > 1 or not segments:
            segments.append(self._make_segment(len(segments), seg_nodes, offset, seg_length))
        return tuple(segments)

    def _make_segment(
        self, index: int, node_ids: list[int], offset: float, length: float
    ) -> TripSegment:
        points = tuple(self.network.node(n).point for n in node_ids)
        return TripSegment(index, tuple(node_ids), points, offset, length)

    def eta_at_offset_h(self, offset_km: float, average_speed_kmh: float = 40.0) -> float:
        """Estimated clock time (hours) at which the vehicle reaches
        ``offset_km`` into the trip, under a flat average speed.  The
        traffic-aware ETA lives in :mod:`repro.estimation.eta`; this is the
        zero-knowledge fallback."""
        if average_speed_kmh <= 0:
            raise ValueError("average speed must be positive")
        return self.departure_time_h + max(0.0, offset_km) / average_speed_kmh


def resample_polyline(points: Sequence[Point], step_km: float) -> list[Point]:
    """Uniformly spaced points along a polyline, endpoints included.

    Used when converting node paths to GPS-like traces and when sampling a
    segment for continuous-query verification.
    """
    if step_km <= 0:
        raise ValueError("step_km must be positive")
    if not points:
        return []
    if len(points) == 1:
        return [points[0]]
    total = polyline_length(points)
    if total == 0.0:
        return [points[0]]
    count = max(1, round(total / step_km))
    spacing = total / count
    out = [points[0]]
    walked = 0.0
    next_mark = spacing
    for a, b in zip(points, points[1:]):
        edge_len = a.distance_to(b)
        while edge_len > 0 and next_mark <= walked + edge_len + 1e-12:
            fraction = (next_mark - walked) / edge_len
            fraction = min(1.0, max(0.0, fraction))
            out.append(Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction))
            next_mark += spacing
        walked += edge_len
    if out[-1] != points[-1]:
        out[-1] = points[-1]
    return out
