"""Sustainable Charging Level ``L`` estimator (Eq. 1, Algorithm 1 lines 5-6).

``L`` is the clean power a charger can deliver around the vehicle's ETA:
the site's solar production (clear-sky curve x forecast attenuation),
capped by the charger's rated power — the paper considers only solar
excess, never grid imports.  The result is an interval because the weather
attenuation is an interval, normalised by the environment maximum so it is
comparable with ``A`` and ``D`` in the weighted sum.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chargers.charger import Charger
from ..chargers.registry import ChargerRegistry
from ..chargers.solar import SolarProfile
from ..intervals import Interval
from .weather import WeatherModel


@dataclass(frozen=True, slots=True)
class SustainableLevel:
    """Raw and normalised ``L`` for one charger at one ETA."""

    charger_id: int
    power_kw: Interval
    normalised: Interval


class SustainableChargingEstimator:
    """Computes ``[L_min, L_max]`` per charger.

    Parameters
    ----------
    registry:
        The charger set ``B``; its maximum rate provides the paper's
        "environment maximum charging level" normaliser.
    weather:
        Ground-truth-plus-forecast weather service.
    sunrise_h / sunset_h / peak_fraction:
        Regional clear-sky parameters shared by all sites.
    """

    def __init__(
        self,
        registry: ChargerRegistry,
        weather: WeatherModel,
        sunrise_h: float = 6.0,
        sunset_h: float = 20.0,
        peak_fraction: float = 0.85,
    ):
        self._registry = registry
        self._weather = weather
        self._sunrise_h = sunrise_h
        self._sunset_h = sunset_h
        self._peak_fraction = peak_fraction
        self._profiles: dict[int, SolarProfile] = {}
        #: Memoised estimates: the model is a deterministic function of
        #: (charger, eta, now, window), and continuous serving re-asks the
        #: same question every warm pass — a warm segment's ``L`` is one
        #: dict probe.  The memo sits *below* the resilience proxies, so
        #: fault injection and the degradation ladder see every call.
        self._memo: dict[tuple[int, float, float, float], SustainableLevel] = {}
        # Environment maximum deliverable clean power: the best any charger
        # could do under clear sky, bounded by its rate.
        self._max_power_kw = max(
            min(c.rate_kw, c.solar_capacity_kw * peak_fraction) for c in registry
        )
        if self._max_power_kw <= 0:
            raise ValueError("registry has no charger able to deliver clean power")

    @property
    def max_power_kw(self) -> float:
        return self._max_power_kw

    def _profile(self, charger: Charger) -> SolarProfile:
        profile = self._profiles.get(charger.charger_id)
        if profile is None:
            profile = SolarProfile(
                capacity_kw=charger.solar_capacity_kw,
                sunrise_h=self._sunrise_h,
                sunset_h=self._sunset_h,
                peak_fraction=self._peak_fraction,
            )
            self._profiles[charger.charger_id] = profile
        return profile

    def power_interval_kw(
        self, charger: Charger, eta_h: float, now_h: float, window_h: float = 1.0
    ) -> Interval:
        """Deliverable clean power (kW interval) during the charging window
        ``[eta_h, eta_h + window_h]`` as forecast from ``now_h``."""
        attenuation = self._weather.window_attenuation(eta_h, eta_h + window_h, now_h)
        return self.power_with_attenuation(charger, eta_h, window_h, attenuation)

    def power_with_attenuation(
        self, charger: Charger, eta_h: float, window_h: float, attenuation: Interval
    ) -> Interval:
        """Deliverable clean power for a *given* attenuation interval.

        The clear-sky envelope is pure local computation; only the
        attenuation needs the weather provider — which is why the
        resilient serving stack can keep the diurnal shape even when the
        weather endpoint is down and the attenuation degrades to its
        conservative bounds.
        """
        if window_h <= 0:
            raise ValueError("charging window must be positive")
        profile = self._profile(charger)
        # Clear-sky envelope over the window: min and max of the diurnal
        # curve bound the achievable production regardless of weather.
        samples = [
            profile.clear_sky_kw(eta_h + window_h * i / 4.0) for i in range(5)
        ]
        clear_sky = Interval(min(samples), max(samples))
        produced = clear_sky * attenuation
        # A charger can never push more than its rated power.
        return Interval(
            min(produced.lo, charger.rate_kw), min(produced.hi, charger.rate_kw)
        )

    def normalised_level(self, charger: Charger, power: Interval) -> SustainableLevel:
        """Assemble a :class:`SustainableLevel` from a power interval."""
        return SustainableLevel(
            charger_id=charger.charger_id,
            power_kw=power,
            normalised=power.scaled_by_max(self._max_power_kw).clamp(0.0, 1.0),
        )

    def estimate(
        self, charger: Charger, eta_h: float, now_h: float, window_h: float = 1.0
    ) -> SustainableLevel:
        """Full ``L`` estimate: raw kW interval plus the normalised one."""
        key = (charger.charger_id, eta_h, now_h, window_h)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        power = self.power_interval_kw(charger, eta_h, now_h, window_h)
        level = self.normalised_level(charger, power)
        if len(self._memo) >= 65_536:
            self._memo.clear()
        self._memo[key] = level
        return level

    def true_power_kw(self, charger: Charger, time_h: float) -> float:
        """Ground-truth deliverable clean power (no forecast error) —
        the quantity the evaluation's oracle SC uses."""
        produced = self._profile(charger).clear_sky_kw(time_h) * self._weather.attenuation_at(
            time_h
        )
        return min(produced, charger.rate_kw)
