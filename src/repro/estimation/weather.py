"""Markov-chain weather process and forecast service.

Substitute for OpenWeatherMap: a seeded hourly Markov chain over sky
states drives the true solar attenuation, and the forecast service returns
the true state blurred by the horizon-dependent confidence model — exactly
the behaviour that makes ``L`` an interval rather than a number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..intervals import Interval
from .component import DEFAULT_CONFIDENCE, ForecastConfidence


class SkyState(enum.Enum):
    """Discrete sky conditions, ordered from clearest to darkest."""

    SUNNY = 0
    PARTLY_CLOUDY = 1
    CLOUDY = 2
    OVERCAST = 3
    RAIN = 4


#: Fraction of clear-sky PV output achieved under each state.
ATTENUATION: dict[SkyState, float] = {
    SkyState.SUNNY: 1.0,
    SkyState.PARTLY_CLOUDY: 0.75,
    SkyState.CLOUDY: 0.45,
    SkyState.OVERCAST: 0.25,
    SkyState.RAIN: 0.10,
}

#: Hourly transition matrix.  Weather is sticky (strong diagonal) and moves
#: mostly to adjacent states, which produces realistic multi-hour spells.
_TRANSITIONS = np.array(
    [
        # SUNNY  PARTLY CLOUDY OVERC. RAIN
        [0.80, 0.15, 0.04, 0.01, 0.00],  # from SUNNY
        [0.15, 0.65, 0.15, 0.04, 0.01],  # from PARTLY_CLOUDY
        [0.04, 0.16, 0.60, 0.15, 0.05],  # from CLOUDY
        [0.01, 0.05, 0.18, 0.60, 0.16],  # from OVERCAST
        [0.00, 0.02, 0.10, 0.28, 0.60],  # from RAIN
    ]
)


@dataclass(frozen=True, slots=True)
class WeatherForecast:
    """A forecast for a single future hour.

    ``degraded`` marks forecasts assembled by the resilient serving path
    from stale or absent provider data (interval widened accordingly)
    rather than from a live upstream response.
    """

    time_h: float
    expected_state: SkyState
    attenuation: Interval
    degraded: bool = False

    @property
    def horizon_certain(self) -> bool:
        return self.attenuation.is_exact


class WeatherModel:
    """Ground-truth weather realisation plus a forecast interface.

    The realisation is generated lazily in whole-day blocks so arbitrarily
    long simulations stay cheap; everything is a pure function of the seed.
    """

    def __init__(
        self,
        seed: int = 0,
        initial_state: SkyState = SkyState.SUNNY,
        confidence: ForecastConfidence = DEFAULT_CONFIDENCE,
    ):
        self._seed = seed
        self._initial = initial_state
        self.confidence = confidence
        self._days: dict[int, tuple[SkyState, ...]] = {}

    def _day_states(self, day: int) -> tuple[SkyState, ...]:
        """The 24 hourly states of ``day`` (generated deterministically)."""
        if day < 0:
            raise ValueError("day must be non-negative")
        if day in self._days:
            return self._days[day]
        # Generate forward from the last materialised day (or day 0).
        start_day = max((d for d in self._days if d < day), default=-1)
        state = self._initial if start_day < 0 else self._days[start_day][-1]
        for d in range(start_day + 1, day + 1):
            rng = np.random.default_rng((self._seed, d))
            states = []
            for __ in range(24):
                row = _TRANSITIONS[state.value]
                state = SkyState(int(rng.choice(len(row), p=row)))
                states.append(state)
            self._days[d] = tuple(states)
        return self._days[day]

    def state_at(self, time_h: float) -> SkyState:
        """True sky state at clock time ``time_h``."""
        if time_h < 0:
            raise ValueError("time must be non-negative")
        day, hour = divmod(int(time_h), 24)
        return self._day_states(day)[hour]

    def attenuation_at(self, time_h: float) -> float:
        """True solar attenuation factor at ``time_h``."""
        return ATTENUATION[self.state_at(time_h)]

    def forecast(self, target_h: float, now_h: float) -> WeatherForecast:
        """Forecast for ``target_h`` issued at ``now_h``.

        The centre of the attenuation interval is the true value (the
        simulated provider is unbiased); its width follows the quoted
        GFS/ECMWF accuracy-vs-horizon curve.  Forecasts are never narrower
        than the present-time observation error (exact at horizon <= 0).
        """
        state = self.state_at(max(target_h, 0.0))
        truth = ATTENUATION[state]
        horizon = target_h - now_h
        if horizon <= 0:
            return WeatherForecast(target_h, state, Interval.exact(truth))
        interval = self.confidence.interval_around(truth, horizon)
        return WeatherForecast(target_h, state, interval)

    def window_attenuation(self, start_h: float, end_h: float, now_h: float) -> Interval:
        """Hull of hourly forecast attenuations over ``[start_h, end_h]``.

        Used when a charging session spans multiple hours: the optimistic
        bound assumes the best forecast hour, the pessimistic the worst.
        """
        if end_h < start_h:
            raise ValueError("window end before start")
        hours = range(int(start_h), int(end_h) + 1)
        forecasts = [self.forecast(float(h) + 0.5, now_h) for h in hours] or [
            self.forecast(start_h, now_h)
        ]
        lo = min(f.attenuation.lo for f in forecasts)
        hi = max(f.attenuation.hi for f in forecasts)
        return Interval(lo, hi)
