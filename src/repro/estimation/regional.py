"""Regionalised weather: different sky over different parts of the map.

The base :class:`~repro.estimation.weather.WeatherModel` is spatially
uniform — adequate for city-scale areas (one METAR station's worth of
sky).  The California-scale workload spans hundreds of km where coastal
fog and inland sun coexist; this model tiles the map into zones, each
with its own Markov chain, and blends neighbouring zones smoothly so a
charger near a zone border does not see a discontinuous forecast.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..intervals import Interval
from ..spatial.bbox import BoundingBox
from ..spatial.geometry import Point
from .component import DEFAULT_CONFIDENCE, ForecastConfidence
from .weather import SkyState, WeatherForecast, WeatherModel


@dataclass(frozen=True, slots=True)
class WeatherZone:
    """One weather cell: its extent and its own realisation."""

    bounds: BoundingBox
    model: WeatherModel


class RegionalWeatherModel:
    """A grid of independent weather zones with bilinear-ish blending.

    Implements the same ``attenuation_at`` / ``forecast`` /
    ``window_attenuation`` surface as :class:`WeatherModel` (duck-typed),
    extended with a ``location`` argument; the location-free calls fall
    back to the map centre so existing estimator code keeps working.
    """

    def __init__(
        self,
        bounds: BoundingBox,
        zones_x: int = 3,
        zones_y: int = 3,
        seed: int = 0,
        confidence: ForecastConfidence = DEFAULT_CONFIDENCE,
    ):
        if zones_x < 1 or zones_y < 1:
            raise ValueError("need at least one zone per axis")
        self.bounds = bounds
        self.confidence = confidence
        self._zones: list[WeatherZone] = []
        width = bounds.width / zones_x
        height = bounds.height / zones_y
        for row in range(zones_y):
            for col in range(zones_x):
                zone_bounds = BoundingBox(
                    bounds.min_x + col * width,
                    bounds.min_y + row * height,
                    bounds.min_x + (col + 1) * width,
                    bounds.min_y + (row + 1) * height,
                )
                self._zones.append(
                    WeatherZone(
                        zone_bounds,
                        WeatherModel(
                            seed=seed * 7_919 + row * zones_x + col,
                            confidence=confidence,
                        ),
                    )
                )
        self._zones_x = zones_x
        self._zones_y = zones_y

    @property
    def zone_count(self) -> int:
        return len(self._zones)

    def _zone_weights(self, location: Point) -> list[tuple[WeatherZone, float]]:
        """Zones influencing ``location``: inverse-distance weights over
        the zone whose cell contains the point plus adjacent centres."""
        weights: list[tuple[WeatherZone, float]] = []
        for zone in self._zones:
            centre = zone.bounds.center
            dist = centre.distance_to(location)
            # Influence radius: one cell diagonal; beyond it, no effect.
            reach = (zone.bounds.width**2 + zone.bounds.height**2) ** 0.5
            if dist < reach:
                weights.append((zone, 1.0 / (0.1 + dist)))
        if not weights:
            nearest = min(
                self._zones, key=lambda z: z.bounds.center.distance_to(location)
            )
            weights = [(nearest, 1.0)]
        return weights

    def attenuation_at(self, time_h: float, location: Point | None = None) -> float:
        """True blended attenuation at ``location`` (map centre default)."""
        location = location if location is not None else self.bounds.center
        weights = self._zone_weights(location)
        total = sum(w for __, w in weights)
        return sum(z.model.attenuation_at(time_h) * w for z, w in weights) / total

    def state_at(self, time_h: float, location: Point | None = None) -> SkyState:
        """Dominant zone's sky state (for display purposes)."""
        location = location if location is not None else self.bounds.center
        zone = max(self._zone_weights(location), key=lambda zw: zw[1])[0]
        return zone.model.state_at(time_h)

    def forecast(
        self, target_h: float, now_h: float, location: Point | None = None
    ) -> WeatherForecast:
        """Blended forecast at ``location`` with horizon widening."""
        truth = self.attenuation_at(target_h, location)
        state = self.state_at(target_h, location)
        horizon = target_h - now_h
        if horizon <= 0:
            return WeatherForecast(target_h, state, Interval.exact(truth))
        return WeatherForecast(
            target_h, state, self.confidence.interval_around(truth, horizon)
        )

    def window_attenuation(
        self,
        start_h: float,
        end_h: float,
        now_h: float,
        location: Point | None = None,
    ) -> Interval:
        """Hull of hourly blended forecasts over the window."""
        if end_h < start_h:
            raise ValueError("window end before start")
        hours = range(int(start_h), int(end_h) + 1)
        forecasts = [
            self.forecast(float(h) + 0.5, now_h, location) for h in hours
        ] or [self.forecast(start_h, now_h, location)]
        return Interval(
            min(f.attenuation.lo for f in forecasts),
            max(f.attenuation.hi for f in forecasts),
        )
