"""Estimated Time of Arrival.

The paper takes ETA from a cooperating navigation app (Google Maps/Waze);
here it is derived from the trip geometry and the traffic model: expected
progress along the trip at congestion-adjusted speeds, with an uncertainty
band that inherits the traffic forecast's horizon widening.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..intervals import Interval
from ..network.graph import EdgeWeight
from ..network.path import Trip, TripSegment
from .traffic import TrafficModel


@dataclass(frozen=True, slots=True)
class EtaEstimate:
    """Arrival-time estimate at a trip segment."""

    segment_index: int
    expected_h: float
    interval: Interval


class EtaEstimator:
    """Per-segment arrival times for a trip under traffic."""

    def __init__(self, traffic: TrafficModel):
        self._traffic = traffic

    def segment_etas(self, trip: Trip, segment_km: float | None = None) -> list[EtaEstimate]:
        """ETA at the *start* of every segment of ``trip``.

        Edge travel times are evaluated at the running clock so morning
        trips slow down through the rush-hour window; the interval uses
        the optimistic/pessimistic traffic bounds accumulated along the
        way.  ``segment_km`` must match the segmentation the caller ranks
        with (defaults to the trip's default segmentation).
        """
        from ..network.path import DEFAULT_SEGMENT_KM

        now = trip.departure_time_h
        clock = now
        clock_lo = now
        clock_hi = now
        estimates: list[EtaEstimate] = []
        for segment in trip.segments(segment_km if segment_km is not None else DEFAULT_SEGMENT_KM):
            estimates.append(
                EtaEstimate(
                    segment_index=segment.index,
                    expected_h=clock,
                    interval=Interval(clock_lo, clock_hi),
                )
            )
            for a, b in zip(segment.node_ids, segment.node_ids[1:]):
                edge = trip.network.edge(a, b)
                base = edge.weight(EdgeWeight.TRAVEL_TIME_H)
                clock += base * self._traffic.multiplier(edge, clock)
                band = self._traffic.multiplier_interval(edge, clock, now)
                clock_lo += base * band.lo
                clock_hi += base * band.hi
        return estimates

    def eta_at_segment(
        self, trip: Trip, segment: TripSegment, segment_km: float | None = None
    ) -> EtaEstimate:
        """ETA at one segment (computes the prefix up to it)."""
        for estimate in self.segment_etas(trip, segment_km=segment_km):
            if estimate.segment_index == segment.index:
                return estimate
        raise ValueError(f"segment {segment.index} is not part of the trip")

    def point_to_point_h(self, trip: Trip) -> float:
        """Expected total travel time for the whole trip under traffic."""
        clock = trip.departure_time_h
        for a, b in zip(trip.node_ids, trip.node_ids[1:]):
            edge = trip.network.edge(a, b)
            clock += edge.weight(EdgeWeight.TRAVEL_TIME_H) * self._traffic.multiplier(
                edge, clock
            )
        return clock - trip.departure_time_h
