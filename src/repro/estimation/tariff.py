"""Time-of-use grid tariffs — the paper's smart-grid extension.

Section VII plans to extend EcoCharge "with smart grid technologies and
taking advantage of off-peak electricity rates and grid stabilization
services".  This module provides the tariff substrate: a weekly
time-of-use price curve with peak/shoulder/off-peak bands, plus an
interval-valued *monetary cost* Estimated Component that slots into an
extended four-objective Sustainability Score (see
:mod:`repro.core.extensions`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..intervals import Interval
from .component import DEFAULT_CONFIDENCE, ForecastConfidence


class TariffBand(enum.Enum):
    """Price band of a time-of-use tariff."""

    OFF_PEAK = "off_peak"
    SHOULDER = "shoulder"
    PEAK = "peak"


@dataclass(frozen=True, slots=True)
class TimeOfUseTariff:
    """Weekday time-of-use tariff (EUR/kWh) with weekend flattening.

    Default bands follow typical EU utility schedules: off-peak overnight,
    peak in the early evening, shoulder otherwise; weekends are shoulder
    all day.
    """

    off_peak_eur: float = 0.18
    shoulder_eur: float = 0.28
    peak_eur: float = 0.42
    peak_start_h: float = 17.0
    peak_end_h: float = 21.0
    off_peak_start_h: float = 22.0
    off_peak_end_h: float = 6.0

    def __post_init__(self) -> None:
        if not 0 < self.off_peak_eur <= self.shoulder_eur <= self.peak_eur:
            raise ValueError("need 0 < off_peak <= shoulder <= peak prices")

    def band_at(self, time_h: float) -> TariffBand:
        """Tariff band at clock time ``time_h`` (hours since Monday 00:00)."""
        day = int(time_h // 24) % 7
        hod = time_h % 24.0
        if day >= 5:
            return TariffBand.SHOULDER
        if hod >= self.off_peak_start_h or hod < self.off_peak_end_h:
            return TariffBand.OFF_PEAK
        if self.peak_start_h <= hod < self.peak_end_h:
            return TariffBand.PEAK
        return TariffBand.SHOULDER

    def price_at(self, time_h: float) -> float:
        """Price (EUR/kWh) of the band active at ``time_h``."""
        band = self.band_at(time_h)
        if band is TariffBand.OFF_PEAK:
            return self.off_peak_eur
        if band is TariffBand.PEAK:
            return self.peak_eur
        return self.shoulder_eur

    def window_price(self, start_h: float, end_h: float) -> Interval:
        """Price envelope over a charging window (hull of hourly prices)."""
        if end_h < start_h:
            raise ValueError("window end before start")
        prices = [self.price_at(start_h + 0.25 * i) for i in range(int((end_h - start_h) * 4) + 1)]
        return Interval(min(prices), max(prices))


class TariffEstimator:
    """Interval-valued normalised *energy cost* EC.

    The cost component is the grid price the session would pay for the
    energy the charger's solar excess does *not* cover (price applies only
    when hoarding falls back to the grid).  Normalised by the peak price
    so 0 = free (fully solar / off-peak) and 1 = worst case.  Day-ahead
    prices are known, so the horizon widening is milder than weather.
    """

    def __init__(
        self,
        tariff: TimeOfUseTariff | None = None,
        confidence: ForecastConfidence | None = None,
    ):
        self.tariff = tariff if tariff is not None else TimeOfUseTariff()
        # Day-ahead markets publish prices: tighter bands than weather.
        self.confidence = confidence if confidence is not None else ForecastConfidence(
            near_accuracy=0.99, far_accuracy=0.97, floor_accuracy=0.9
        )

    def estimate(self, eta_h: float, now_h: float, window_h: float = 1.0) -> Interval:
        """Normalised price interval for a session at ``eta_h``."""
        if window_h <= 0:
            raise ValueError("window must be positive")
        envelope = self.tariff.window_price(eta_h, eta_h + window_h)
        normalised = envelope.scaled_by_max(self.tariff.peak_eur)
        horizon = eta_h - now_h
        if horizon <= 0:
            return normalised.clamp(0.0, 1.0)
        widening = 1.0 - self.confidence.accuracy(horizon)
        return Interval(
            normalised.lo * (1.0 - widening), normalised.hi * (1.0 + widening)
        ).clamp(0.0, 1.0)
