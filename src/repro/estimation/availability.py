"""Charger availability ``A`` estimator (Eq. 2, Algorithm 1 lines 7-8).

Substitute for Google-Maps-style "popular times": every charger carries a
weekly 168-bin busy histogram with commuter peaks and weekend structure.
Availability at the ETA is ``1 - busyness`` adjusted for plug count, and
the returned interval widens with forecast horizon exactly like the other
ECs.  The paper expresses busyness in percent (0 % free, 100 % busy); we
keep the [0, 1] normalised form and expose ``A`` directly (1 = surely
free) so that bigger is better in the weighted sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chargers.charger import Charger
from ..chargers.registry import ChargerRegistry
from ..intervals import Interval
from .component import DEFAULT_CONFIDENCE, ForecastConfidence

HOURS_PER_WEEK = 168


@dataclass(frozen=True, slots=True)
class BusyTimetable:
    """Weekly busy profile: ``busyness[h]`` in [0, 1] for h in 0..167.

    Hour 0 is Monday midnight.
    """

    busyness: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.busyness) != HOURS_PER_WEEK:
            raise ValueError(f"timetable needs {HOURS_PER_WEEK} hourly bins")
        if any(not 0.0 <= b <= 1.0 for b in self.busyness):
            raise ValueError("busyness values must be in [0, 1]")

    def busy_at(self, time_h: float) -> float:
        """Busyness at clock time ``time_h`` (hours since day-0 Monday)."""
        return self.busyness[int(time_h) % HOURS_PER_WEEK]

    @classmethod
    def generate(
        cls,
        seed: int,
        base_load: float = 0.25,
        morning_peak: float = 0.5,
        midday_peak: float = 0.55,
        evening_peak: float = 0.65,
        weekend_scale: float = 0.8,
    ) -> "BusyTimetable":
        """Synthesise a realistic weekly profile.

        Weekday shape: low overnight, a commuter bump around 08:00, a
        commercial midday bump around 13:00 (shopping-centre chargers are
        busiest exactly when hoarding trips happen), and the strongest
        evening bump around 18:00.  Weekends flatten and shift later.
        Per-site multiplicative noise differentiates sites.
        """
        rng = np.random.default_rng(seed)
        site_factor = float(rng.uniform(0.5, 1.4))
        values = []
        for hour in range(HOURS_PER_WEEK):
            day, hod = divmod(hour, 24)
            weekend = day >= 5
            morning_centre = 10.0 if weekend else 8.0
            midday_centre = 14.0 if weekend else 13.0
            evening_centre = 16.0 if weekend else 18.0
            level = base_load
            level += morning_peak * np.exp(-((hod - morning_centre) ** 2) / (2 * 2.0**2))
            level += midday_peak * np.exp(-((hod - midday_centre) ** 2) / (2 * 2.0**2))
            level += evening_peak * np.exp(-((hod - evening_centre) ** 2) / (2 * 2.5**2))
            if weekend:
                level *= weekend_scale
            level *= site_factor * float(rng.uniform(0.85, 1.15))
            values.append(min(1.0, max(0.0, level)))
        return cls(tuple(values))


class AvailabilityEstimator:
    """Computes ``[A_min, A_max]`` per charger at the ETA."""

    def __init__(
        self,
        registry: ChargerRegistry,
        seed: int = 0,
        confidence: ForecastConfidence = DEFAULT_CONFIDENCE,
    ):
        self._registry = registry
        self.confidence = confidence
        self._timetables: dict[int, BusyTimetable] = {
            charger.charger_id: BusyTimetable.generate(seed * 1_000_003 + charger.charger_id)
            for charger in registry
        }
        # Deterministic model of (charger, eta, now) — continuous serving
        # re-estimates the same triples every warm pass, so a bounded memo
        # turns warm ``A`` into a dict probe.  Lives below the resilience
        # proxies so fault injection still sees every logical call.
        self._memo: dict[tuple[int, float, float], Interval] = {}

    def timetable(self, charger_id: int) -> BusyTimetable:
        """The weekly busy profile backing ``charger_id``."""
        return self._timetables[charger_id]

    def true_availability(self, charger: Charger, time_h: float) -> float:
        """Ground-truth availability in [0, 1] (oracle view).

        Multi-plug sites stay available at higher busyness: the chance all
        plugs are taken falls roughly geometrically with plug count.
        """
        busy = self._timetables[charger.charger_id].busy_at(time_h)
        all_taken = busy**charger.plugs
        return 1.0 - all_taken

    def estimate(self, charger: Charger, eta_h: float, now_h: float) -> Interval:
        """``[A_min, A_max]``: true availability widened by horizon."""
        key = (charger.charger_id, eta_h, now_h)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        truth = self.true_availability(charger, eta_h)
        horizon = eta_h - now_h
        if horizon <= 0:
            result = Interval.exact(truth)
        else:
            result = self.confidence.interval_around(truth, horizon)
        if len(self._memo) >= 65_536:
            self._memo.clear()
        self._memo[key] = result
        return result
