"""Time-varying traffic model.

Substitute for Google/HERE real-time traffic feeds: each edge's free-flow
travel time is inflated by a congestion multiplier that follows the
commuter double peak, scaled by road class (arterials congest more), with
an uncertainty band that widens with forecast horizon.  The model hands
the shortest-path layer min/max cost functions, which is exactly how the
derouting cost ``D`` becomes an interval.

**Live incidents.** When a :class:`~repro.network.epochs.
GraphEpochManager` is attached (:meth:`TrafficModel.set_epochs`), every
travel-time metric is additionally scaled by the current epoch's
per-edge incident factor (``inf`` = closed).  Factors are *observed*
state, not a forecast, so they multiply the optimistic and pessimistic
bounds identically and interval validity is preserved.  Cost functions
capture the epoch's immutable factor table at construction — a metric
built on epoch *e* prices epoch *e* forever — and spec keys embed the
weights version, so the distance engine can never join results across a
weight change.  Raw static-map metrics (``EdgeWeight`` specs) and the
energy metric deliberately never see incidents: they are the map view,
not the traffic view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from typing import Mapping, Sequence

from ..intervals import Interval
from ..network.distance_engine import WeightSpec
from ..network.epochs import GraphEpochManager
from ..network.graph import EdgeWeight, RoadEdge
from ..network.shortest_path import CostFn
from .component import DEFAULT_CONFIDENCE, ForecastConfidence


@dataclass(frozen=True, slots=True)
class TrafficParams:
    """Shape of the diurnal congestion curve.

    The multiplier is 1 (free flow) overnight and rises to
    ``1 + peak_gain`` at the rush-hour centres.  Arterials (fast roads)
    attract through traffic and congest hardest, which
    ``speed_sensitivity`` captures.
    """

    morning_peak_h: float = 8.0
    evening_peak_h: float = 17.5
    peak_width_h: float = 1.75
    peak_gain: float = 1.2
    weekend_scale: float = 0.4
    speed_sensitivity: float = 0.5

    def __post_init__(self) -> None:
        if self.peak_width_h <= 0:
            raise ValueError("peak width must be positive")
        if self.peak_gain < 0:
            raise ValueError("peak gain must be non-negative")
        if not 0.0 <= self.weekend_scale <= 1.0:
            raise ValueError("weekend_scale must be in [0, 1]")


class TrafficModel:
    """Deterministic congestion field over (edge, time)."""

    def __init__(
        self,
        params: TrafficParams | None = None,
        seed: int = 0,
        confidence: ForecastConfidence = DEFAULT_CONFIDENCE,
    ):
        self.params = params or TrafficParams()
        self.confidence = confidence
        self._rng_seed = seed
        self._noise_cache: dict[tuple[int, int], float] = {}
        #: Static per-edge arrays for the vectorised spec evaluators, keyed
        #: by the identity of the (stable) edge sequence a DistanceEngine
        #: hierarchy hands us.  Tiny: one entry per hierarchy.
        self._batch_arrays: dict[int, tuple[object, tuple]] = {}
        #: Live-graph epoch manager; ``None`` keeps the model static.
        self._epochs: GraphEpochManager | None = None
        #: Incident factor arrays per (arc-list id, weights version) —
        #: one entry per hierarchy per epoch, cleared when it grows.
        self._factor_arrays: dict[tuple[int, int], tuple[object, np.ndarray]] = {}

    def set_epochs(self, epochs: GraphEpochManager | None) -> None:
        """Attach the live-graph epoch manager (``None`` detaches).

        Only metrics built *after* this call see incident factors; metrics
        already handed out keep pricing the epoch they captured, which is
        exactly the in-flight-completes-on-admission-epoch contract.
        """
        self._epochs = epochs

    @property
    def epochs(self) -> GraphEpochManager | None:
        return self._epochs

    def _epoch_state(
        self,
    ) -> tuple[int, Mapping[tuple[int, int], float]] | tuple[None, None]:
        """(weights version, immutable factor snapshot) or (None, None).

        Read once per metric construction so the key, the scalar closure,
        and the batch evaluator all price the *same* epoch even if a bump
        lands mid-call.
        """
        manager = self._epochs
        if manager is None:
            return (None, None)
        return manager.snapshot()

    def _diurnal_gain(self, time_h: float) -> float:
        p = self.params
        hod = time_h % 24.0
        day = int(time_h // 24) % 7
        gain = p.peak_gain * (
            math.exp(-((hod - p.morning_peak_h) ** 2) / (2 * p.peak_width_h**2))
            + math.exp(-((hod - p.evening_peak_h) ** 2) / (2 * p.peak_width_h**2))
        )
        if day >= 5:
            gain *= p.weekend_scale
        return gain

    def _edge_noise(self, edge: RoadEdge) -> float:
        """Stable per-edge congestion idiosyncrasy in [0.8, 1.2] (cached:
        this sits on the hot path of every shortest-path relaxation)."""
        key = (edge.source, edge.target)
        noise = self._noise_cache.get(key)
        if noise is None:
            rng = np.random.default_rng(
                self._rng_seed * 2_000_003 + edge.source * 65_537 + edge.target
            )
            noise = float(rng.uniform(0.8, 1.2))
            self._noise_cache[key] = noise
        return noise

    def multiplier(self, edge: RoadEdge, time_h: float) -> float:
        """True congestion multiplier (>= 1) on ``edge`` at ``time_h``."""
        p = self.params
        speed_factor = 1.0 + p.speed_sensitivity * (edge.speed_kmh - 30.0) / 50.0
        speed_factor = max(0.5, speed_factor)
        return 1.0 + self._diurnal_gain(time_h) * speed_factor * self._edge_noise(edge)

    def multiplier_interval(self, edge: RoadEdge, time_h: float, now_h: float) -> Interval:
        """Forecast congestion multiplier with horizon widening.

        The band is multiplicative: a ``1 - accuracy`` relative error on
        the predicted multiplier.
        """
        truth = self.multiplier(edge, time_h)
        horizon = time_h - now_h
        if horizon <= 0:
            return Interval.exact(truth)
        rel = self.confidence.half_width(horizon)
        return Interval(max(1.0, truth * (1.0 - rel)), truth * (1.0 + rel))

    # -- cost-function factories for the shortest-path layer ---------------

    @staticmethod
    def _with_factors(
        base: CostFn, factors: Mapping[tuple[int, int], float] | None
    ) -> CostFn:
        """Scale ``base`` by the captured epoch's incident factors.

        A closed edge (factor ``inf``) returns ``inf`` directly — never
        ``base * inf``, which would be NaN on a zero-length edge.  The
        default factor 1.0 multiplies through so the operation sequence
        matches the batch evaluator exactly (``x * 1.0`` is bitwise
        ``x``, so detached and no-incident costs are identical).
        """
        if factors is None:
            return base

        def cost(edge: RoadEdge) -> float:
            factor = factors.get((edge.source, edge.target), 1.0)
            if math.isinf(factor):
                return math.inf
            return base(edge) * factor

        return cost

    def travel_time_fn(self, time_h: float) -> CostFn:
        """True travel-time cost (hours) at ``time_h``."""
        _, factors = self._epoch_state()
        base = lambda edge: edge.weight(EdgeWeight.TRAVEL_TIME_H) * self.multiplier(
            edge, time_h
        )
        return self._with_factors(base, factors)

    def _bound_fns(self, time_h: float, now_h: float) -> tuple[CostFn, CostFn]:
        """The raw (incident-free) optimistic/pessimistic cost closures."""

        def low(edge: RoadEdge) -> float:
            return edge.weight(EdgeWeight.TRAVEL_TIME_H) * self.multiplier_interval(
                edge, time_h, now_h
            ).lo

        def high(edge: RoadEdge) -> float:
            return edge.weight(EdgeWeight.TRAVEL_TIME_H) * self.multiplier_interval(
                edge, time_h, now_h
            ).hi

        return low, high

    def travel_time_bounds(self, time_h: float, now_h: float) -> tuple[CostFn, CostFn]:
        """(optimistic, pessimistic) travel-time cost functions.

        Optimistic uses each edge's lower multiplier bound, pessimistic the
        upper — running Dijkstra under each yields ``[D_min, D_max]``.
        Incident factors are observed state and scale both bounds alike.
        """
        _, factors = self._epoch_state()
        low, high = self._bound_fns(time_h, now_h)
        return self._with_factors(low, factors), self._with_factors(high, factors)

    # -- keyed weight specs for the DistanceEngine -------------------------

    @staticmethod
    def _spec_key(kind: str, version: int | None, *times: float) -> tuple:
        """Metric cache identity; the weights version is part of the key
        when the live graph is attached, so results can never be joined
        across an epoch bump even before the engine fences."""
        if version is None:
            return (kind, *times)
        return (kind, *times, "w", version)

    def travel_time_spec(self, time_h: float) -> WeightSpec:
        """True travel-time metric with a cache identity (oracle view)."""
        version, factors = self._epoch_state()
        return WeightSpec(
            key=self._spec_key("travel_time", version, time_h),
            fn=self._with_factors(
                lambda edge: edge.weight(EdgeWeight.TRAVEL_TIME_H)
                * self.multiplier(edge, time_h),
                factors,
            ),
            batch=lambda edges: self._batch_travel_time(
                edges, time_h, time_h, "true", factors, version
            ),
            epoch_version=version,
        )

    def travel_time_bound_specs(
        self, time_h: float, now_h: float
    ) -> tuple[WeightSpec, WeightSpec]:
        """(optimistic, pessimistic) keyed metrics for ``[D_min, D_max]``.

        The spec keys make one segment's four searches, the baselines'
        re-pricings, and chaos re-rankings share cached distance maps; the
        ``batch`` evaluators mirror the scalar cost functions operation-
        for-operation so CH customisation is bitwise-consistent with the
        Dijkstra fallback.  Both specs capture one epoch snapshot — the
        lower and upper bound always price the same graph.
        """
        version, factors = self._epoch_state()
        base_low, base_high = self._bound_fns(time_h, now_h)
        low = self._with_factors(base_low, factors)
        high = self._with_factors(base_high, factors)
        return (
            WeightSpec(
                key=self._spec_key("travel_time_lo", version, time_h, now_h),
                fn=low,
                batch=lambda edges: self._batch_travel_time(
                    edges, time_h, now_h, "lo", factors, version
                ),
                epoch_version=version,
            ),
            WeightSpec(
                key=self._spec_key("travel_time_hi", version, time_h, now_h),
                fn=high,
                batch=lambda edges: self._batch_travel_time(
                    edges, time_h, now_h, "hi", factors, version
                ),
                epoch_version=version,
            ),
        )

    def _edge_arrays(self, edges: "Sequence[RoadEdge | None]") -> tuple:
        """Static (index, length, speed, noise) arrays for an arc list."""
        key = id(edges)
        cached = self._batch_arrays.get(key)
        if cached is not None and cached[0] is edges:
            return cached[1]
        index = [i for i, edge in enumerate(edges) if edge is not None]
        real = [edges[i] for i in index]
        arrays = (
            np.asarray(index, dtype=np.intp),
            len(edges),
            np.array([edge.length_km for edge in real], dtype=np.float64),
            np.array([edge.speed_kmh for edge in real], dtype=np.float64),
            np.array([self._edge_noise(edge) for edge in real], dtype=np.float64),
        )
        if len(self._batch_arrays) > 8:
            self._batch_arrays.clear()
        self._batch_arrays[key] = (edges, arrays)
        return arrays

    def _factor_array(
        self,
        edges: "Sequence[RoadEdge | None]",
        index: "np.ndarray",
        factors: Mapping[tuple[int, int], float],
        version: int,
    ) -> "np.ndarray":
        """Incident factors aligned with the real (non-shortcut) arcs of
        ``edges``, cached per (arc list, weights version)."""
        key = (id(edges), version)
        cached = self._factor_arrays.get(key)
        if cached is not None and cached[0] is edges:
            return cached[1]
        farr = np.array(
            [
                factors.get((edges[i].source, edges[i].target), 1.0)  # type: ignore[union-attr]
                for i in index
            ],
            dtype=np.float64,
        )
        if len(self._factor_arrays) > 16:
            self._factor_arrays.clear()
        self._factor_arrays[key] = (edges, farr)
        return farr

    def _batch_travel_time(
        self,
        edges: "Sequence[RoadEdge | None]",
        time_h: float,
        now_h: float,
        bound: str,
        factors: Mapping[tuple[int, int], float] | None = None,
        version: int | None = None,
    ) -> "np.ndarray":
        """Vectorised travel-time costs over an arc list (inf for shortcuts).

        Every operation replays :meth:`multiplier` /
        :meth:`multiplier_interval` in the same order and association so
        each element is bitwise equal to the scalar cost function —
        verified by ``tests/test_distance_engine.py``.  Incident factors
        multiply last, exactly as :meth:`_with_factors` does in the
        scalar closure (closures become ``inf``, never ``0 * inf`` NaN).
        """
        index, total, length, speed, noise = self._edge_arrays(edges)
        p = self.params
        speed_factor = np.maximum(
            0.5, 1.0 + p.speed_sensitivity * (speed - 30.0) / 50.0
        )
        truth = 1.0 + self._diurnal_gain(time_h) * speed_factor * noise
        horizon = time_h - now_h
        if bound == "true" or horizon <= 0:
            multiplier = truth
        else:
            rel = self.confidence.half_width(horizon)
            if bound == "lo":
                multiplier = np.maximum(1.0, truth * (1.0 - rel))
            else:
                multiplier = truth * (1.0 + rel)
        out = np.full(total, math.inf, dtype=np.float64)
        costs = (length / speed) * multiplier
        if factors is not None:
            farr = self._factor_array(edges, index, factors, version or 0)
            costs = np.where(np.isinf(farr), math.inf, costs * farr)
        out[index] = costs
        return out

    def energy_fn(self, time_h: float, congestion_energy_gain: float = 0.25) -> CostFn:
        """Energy cost (kWh) at ``time_h``.

        Stop-and-go traffic raises consumption, but far less than it raises
        travel time; ``congestion_energy_gain`` converts excess multiplier
        into excess energy.
        """

        def cost(edge: RoadEdge) -> float:
            excess = self.multiplier(edge, time_h) - 1.0
            return edge.weight(EdgeWeight.ENERGY_KWH) * (
                1.0 + congestion_energy_gain * excess
            )

        return cost
