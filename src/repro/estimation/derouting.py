"""Derouting cost ``D`` estimator (Eq. 3, Algorithm 1 lines 9-10).

The cost of leaving the scheduled trip to visit a charger: travel from the
current segment to the charger plus the cheaper of returning to the same
segment or joining the next one (Section III-C, Filtering phase).  Costs
are travel-time hours under the traffic model's optimistic/pessimistic
bounds, so ``D`` is an interval; it is normalised by an environment-wide
maximum so every method scores against the same yardstick.

All shortest-path work goes through the shared
:class:`~repro.network.distance_engine.DistanceEngine` (repro-check rule
R8): the engine memoises distance maps across segments, query modes, and
re-rankings, and transparently swaps truncated Dijkstra for the
contraction-hierarchy backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..chargers.charger import Charger
from ..interval_array import IntervalArray
from ..intervals import Interval
from ..network.distance_engine import DistanceEngine
from ..network.graph import RoadNetwork
from ..network.path import TripSegment
from .traffic import TrafficModel

#: Reference speed used to convert the environment diameter into the
#: normalising maximum derouting time.
REFERENCE_SPEED_KMH = 40.0


@dataclass(frozen=True, slots=True)
class DeroutingCost:
    """Raw and normalised ``D`` for one charger relative to one segment."""

    charger_id: int
    hours: Interval
    normalised: Interval


@dataclass(frozen=True, slots=True)
class DeroutingArrays:
    """A pool's derouting costs in flat form: row ``i`` belongs to
    ``charger_ids[i]``.  The array counterpart of
    ``dict[int, DeroutingCost]`` — bitwise-equal values, no per-charger
    dataclasses (see :meth:`DeroutingEstimator.batch_estimate_arrays`)."""

    charger_ids: np.ndarray
    hours: IntervalArray
    normalised: IntervalArray


class DeroutingEstimator:
    """Batch derouting estimator for a candidate pool.

    A naive implementation runs two shortest-path searches per charger;
    this one prices an entire pool with four single-source searches per
    segment (optimistic and pessimistic, outbound and return), which is
    what keeps the Brute-Force baseline's per-point cost linear in |B|
    rather than |B| x Dijkstra.  The searches themselves ride the shared
    :class:`DistanceEngine`, so repeated pricings of the same segment time
    (by other query modes, the oracle grader, or chaos re-runs) are cache
    hits rather than new searches.
    """

    def __init__(
        self,
        network: RoadNetwork,
        traffic: TrafficModel,
        max_derouting_h: float | None = None,
        engine: DistanceEngine | None = None,
    ):
        self._network = network
        self._traffic = traffic
        self._engine = engine if engine is not None else DistanceEngine(network)
        if max_derouting_h is None:
            bounds = network.bounds()
            diameter = math.hypot(bounds.width, bounds.height)
            # Out to the far corner and back at the reference speed.
            max_derouting_h = 2.0 * diameter / REFERENCE_SPEED_KMH
        if max_derouting_h <= 0:
            raise ValueError("max_derouting_h must be positive")
        self.max_derouting_h = max_derouting_h

    @property
    def engine(self) -> DistanceEngine:
        return self._engine

    def batch_estimate(
        self,
        segment: TripSegment,
        chargers: Iterable[Charger],
        time_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
        search_budget_h: float | None = None,
    ) -> dict[int, DeroutingCost]:
        """``[D_min, D_max]`` for every charger in the pool.

        ``time_h`` is when the deroute would happen (ETA at the segment);
        ``now_h`` is when the forecast is made.  Chargers unreachable
        within ``search_budget_h`` (default: the normalising maximum) get
        the saturated cost of 1.0 rather than being dropped, mirroring the
        paper's treatment of chargers "outside the initial scheduled trip".
        """
        pool = list(chargers)
        if not pool:
            return {}
        (
            out_low,
            out_high,
            back_same_low,
            back_same_high,
            back_next_low,
            back_next_high,
        ) = self._query_round_trip_maps(
            segment, pool, time_h, now_h, next_segment, search_budget_h
        )

        results: dict[int, DeroutingCost] = {}
        for charger in pool:
            node = charger.node_id
            lo = self._round_trip(node, out_low, back_same_low, back_next_low)
            hi = self._round_trip(node, out_high, back_same_high, back_next_high)
            if lo is None or hi is None:
                hours = Interval.exact(self.max_derouting_h)
            else:
                hours = Interval(min(lo, hi), max(lo, hi))
            results[charger.charger_id] = DeroutingCost(
                charger_id=charger.charger_id,
                hours=hours,
                normalised=hours.scaled_by_max(self.max_derouting_h).clamp(0.0, 1.0),
            )
        return results

    def batch_estimate_arrays(
        self,
        segment: TripSegment,
        chargers: Iterable[Charger],
        time_h: float,
        now_h: float,
        next_segment: TripSegment | None = None,
        search_budget_h: float | None = None,
    ) -> DeroutingArrays:
        """Array form of :func:`batch_estimate`: same engine queries, same
        values, no per-charger ``Interval``/``DeroutingCost`` objects.

        Missing distance-map entries become ``inf`` so that
        ``out + min(back_same, back_next)`` reproduces the scalar
        ``None``-propagation exactly: any leg unreachable makes the total
        ``inf``, and ``inf`` rows collapse to the saturated
        ``max_derouting_h`` cost.  Elementwise arithmetic matches the
        scalar path operation-for-operation, so results are bitwise equal.
        """
        pool = list(chargers)
        ids = np.array([charger.charger_id for charger in pool], dtype=np.int64)
        if not pool:
            empty = IntervalArray.exact(np.empty(0, dtype=np.float64))
            return DeroutingArrays(charger_ids=ids, hours=empty, normalised=empty)
        (
            out_low,
            out_high,
            back_same_low,
            back_same_high,
            back_next_low,
            back_next_high,
        ) = self._query_round_trip_maps(
            segment, pool, time_h, now_h, next_segment, search_budget_h
        )

        inf = math.inf
        nodes = [charger.node_id for charger in pool]

        def gather(dist: Mapping[int, float]) -> np.ndarray:
            return np.array([dist.get(node, inf) for node in nodes], dtype=np.float64)

        total_lo = gather(out_low) + np.minimum(
            gather(back_same_low), gather(back_next_low)
        )
        total_hi = gather(out_high) + np.minimum(
            gather(back_same_high), gather(back_next_high)
        )
        unreachable = np.isinf(total_lo) | np.isinf(total_hi)
        max_h = self.max_derouting_h
        hours = IntervalArray(
            lo=np.where(unreachable, max_h, np.minimum(total_lo, total_hi)),
            hi=np.where(unreachable, max_h, np.maximum(total_lo, total_hi)),
        )
        return DeroutingArrays(
            charger_ids=ids,
            hours=hours,
            normalised=hours.scaled_by_max(max_h).clamp(0.0, 1.0),
        )

    def _query_round_trip_maps(
        self,
        segment: TripSegment,
        pool: list[Charger],
        time_h: float,
        now_h: float,
        next_segment: TripSegment | None,
        search_budget_h: float | None,
    ) -> tuple[
        Mapping[int, float],
        Mapping[int, float],
        Mapping[int, float],
        Mapping[int, float],
        Mapping[int, float],
        Mapping[int, float],
    ]:
        """The six distance maps both estimate paths share: optimistic and
        pessimistic bounds for outbound, return-to-same-segment, and
        return-to-next-segment legs (four engine searches per bound pair
        when the rejoin points coincide)."""
        budget = search_budget_h if search_budget_h is not None else self.max_derouting_h
        spec_low, spec_high = self._traffic.travel_time_bound_specs(time_h, now_h)
        # One stacked sweep customises both bound metrics (CH backend).
        self._engine.prepare(spec_low, spec_high)

        origin = segment.anchor_node
        rejoin_same = segment.node_ids[-1]
        rejoin_next = next_segment.node_ids[-1] if next_segment is not None else None
        nodes = {charger.node_id for charger in pool}

        engine = self._engine
        out_low = engine.one_to_many(origin, nodes, spec_low, max_cost=budget)
        out_high = engine.one_to_many(origin, nodes, spec_high, max_cost=budget)
        back_same_low = engine.many_to_one(nodes, rejoin_same, spec_low, max_cost=budget)
        back_same_high = engine.many_to_one(nodes, rejoin_same, spec_high, max_cost=budget)
        if rejoin_next is not None and rejoin_next != rejoin_same:
            back_next_low = engine.many_to_one(nodes, rejoin_next, spec_low, max_cost=budget)
            back_next_high = engine.many_to_one(nodes, rejoin_next, spec_high, max_cost=budget)
        else:
            back_next_low = back_same_low
            back_next_high = back_same_high
        return (
            out_low,
            out_high,
            back_same_low,
            back_same_high,
            back_next_low,
            back_next_high,
        )

    @staticmethod
    def _round_trip(
        node: int,
        outbound: Mapping[int, float],
        back_same: Mapping[int, float],
        back_next: Mapping[int, float],
    ) -> float | None:
        out = outbound.get(node)
        if out is None:
            return None
        returns = [cost for cost in (back_same.get(node), back_next.get(node)) if cost is not None]
        if not returns:
            return None
        # Whichever rejoin point costs less is taken (Section III-C).
        return out + min(returns)

    def true_cost_h(
        self,
        segment: TripSegment,
        charger: Charger,
        time_h: float,
        next_segment: TripSegment | None = None,
    ) -> float:
        """Ground-truth derouting time (oracle view, exact traffic)."""
        spec = self._traffic.travel_time_spec(time_h)
        max_h = self.max_derouting_h
        out = self._engine.one_to_many(
            segment.anchor_node, (charger.node_id,), spec, max_cost=max_h
        )
        cost_out = out.get(charger.node_id)
        if cost_out is None:
            return max_h
        rejoins = {segment.node_ids[-1]}
        if next_segment is not None:
            rejoins.add(next_segment.node_ids[-1])
        back = self._engine.one_to_many(charger.node_id, rejoins, spec, max_cost=max_h)
        if not back:
            return max_h
        return min(max_h, cost_out + min(back.values()))
