"""Estimated Components: weather, sustainability, availability, traffic,
derouting, and ETA estimators — all interval-valued."""

from .availability import HOURS_PER_WEEK, AvailabilityEstimator, BusyTimetable
from .component import (
    DEFAULT_CONFIDENCE,
    EstimatedComponent,
    ForecastConfidence,
)
from .derouting import REFERENCE_SPEED_KMH, DeroutingCost, DeroutingEstimator
from .eta import EtaEstimate, EtaEstimator
from .regional import RegionalWeatherModel, WeatherZone
from .sustainable import SustainableChargingEstimator, SustainableLevel
from .tariff import TariffBand, TariffEstimator, TimeOfUseTariff
from .traffic import TrafficModel, TrafficParams
from .weather import ATTENUATION, SkyState, WeatherForecast, WeatherModel

__all__ = [
    "ATTENUATION",
    "AvailabilityEstimator",
    "BusyTimetable",
    "DEFAULT_CONFIDENCE",
    "DeroutingCost",
    "DeroutingEstimator",
    "EstimatedComponent",
    "EtaEstimate",
    "EtaEstimator",
    "ForecastConfidence",
    "HOURS_PER_WEEK",
    "REFERENCE_SPEED_KMH",
    "RegionalWeatherModel",
    "SkyState",
    "SustainableChargingEstimator",
    "SustainableLevel",
    "TariffBand",
    "TariffEstimator",
    "TimeOfUseTariff",
    "TrafficModel",
    "TrafficParams",
    "WeatherForecast",
    "WeatherModel",
    "WeatherZone",
]
