"""Estimated Component (EC) abstraction.

An EC is "a function that can have a fuzzy value based on some estimates"
(Section I): the value is an :class:`~repro.core.intervals.Interval` whose
width reflects forecast confidence.  This module defines the common
horizon-dependent confidence model quoted by the paper for GFS/ECMWF
weather products — 95-96 % accuracy up to 12 hours out, 85-95 % up to
three days — and the small protocol every estimator implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..intervals import Interval

HOURS_12 = 12.0
HOURS_3_DAYS = 72.0


@dataclass(frozen=True, slots=True)
class ForecastConfidence:
    """Piecewise-linear forecast accuracy as a function of horizon.

    ``accuracy(h)`` is interpreted as the probability mass captured by the
    estimate; the interval half-width applied to a normalised quantity is
    ``1 - accuracy``.  Defaults follow the paper's quoted model figures.
    """

    near_accuracy: float = 0.955  # up to 12 hours (95-96 %)
    far_accuracy: float = 0.90  # at 3 days (85-95 %)
    floor_accuracy: float = 0.75  # beyond 3 days, degrade toward this

    def __post_init__(self) -> None:
        for value in (self.near_accuracy, self.far_accuracy, self.floor_accuracy):
            if not 0.0 < value <= 1.0:
                raise ValueError("accuracies must be in (0, 1]")
        if not self.floor_accuracy <= self.far_accuracy <= self.near_accuracy:
            raise ValueError("accuracy must be non-increasing with horizon")

    def accuracy(self, horizon_h: float) -> float:
        """Forecast accuracy for a prediction ``horizon_h`` hours out."""
        horizon = max(0.0, horizon_h)
        if horizon <= HOURS_12:
            return self.near_accuracy
        if horizon <= HOURS_3_DAYS:
            frac = (horizon - HOURS_12) / (HOURS_3_DAYS - HOURS_12)
            return self.near_accuracy + frac * (self.far_accuracy - self.near_accuracy)
        # Exponential-free long tail: linear decay over the next week,
        # clipped at the floor.
        frac = min(1.0, (horizon - HOURS_3_DAYS) / (7 * 24.0))
        return max(
            self.floor_accuracy,
            self.far_accuracy + frac * (self.floor_accuracy - self.far_accuracy),
        )

    def half_width(self, horizon_h: float) -> float:
        """Interval half-width for a unit-normalised estimated quantity."""
        return 1.0 - self.accuracy(horizon_h)

    def interval_around(
        self, center: float, horizon_h: float, lo: float = 0.0, hi: float = 1.0
    ) -> Interval:
        """Symmetric horizon-widened interval around a normalised value,
        clamped into the admissible range ``[lo, hi]``."""
        return Interval.around(center, self.half_width(horizon_h)).clamp(lo, hi)

    # -- graceful degradation (serve-stale / no-data fallbacks) -------------

    def degraded_half_width(self, age_h: float = 0.0) -> float:
        """Extra half-width for an estimate served *past* its validity.

        The floor tail mass ``1 - floor_accuracy`` is the uncertainty we
        admit even at infinite forecast horizon; staleness compounds it
        linearly with the age of the served data, because a stale
        estimate suffers both forecast error *and* drift since it was
        fetched.
        """
        if age_h < 0:
            raise ValueError("age_h must be non-negative")
        return (1.0 - self.floor_accuracy) * (1.0 + age_h)

    def stale_interval(
        self, stale: Interval, age_h: float, lo: float = 0.0, hi: float = 1.0
    ) -> Interval:
        """Honest widening of a stale estimate served on upstream error.

        The served interval contains the original and grows by
        :meth:`degraded_half_width` on each side — wider-but-correct
        rather than fresh-but-unavailable.
        """
        margin = self.degraded_half_width(age_h)
        return Interval(stale.lo - margin, stale.hi + margin).clamp(lo, hi)

    def fallback_interval(self, lo: float = 0.0, hi: float = 1.0) -> Interval:
        """The no-data degradation floor.

        With neither a fresh response nor a stale one there is nothing
        to centre an estimate on, so the only interval guaranteed to
        contain the truth is the whole admissible range ``[lo, hi]`` —
        the conservative bound every estimator degrades to when its
        provider is fully unavailable.
        """
        if lo > hi:
            raise ValueError("fallback bounds must satisfy lo <= hi")
        return Interval(lo, hi)


#: Shared default used by every estimator unless overridden.
DEFAULT_CONFIDENCE = ForecastConfidence()


@runtime_checkable
class EstimatedComponent(Protocol):
    """Anything that produces a normalised interval for (charger, time)."""

    def estimate(self, charger_id: int, time_h: float, now_h: float) -> Interval:
        """Interval estimate for ``charger_id`` at clock time ``time_h``
        when the forecast is made at ``now_h``."""
        ...
