"""Interval arithmetic for Estimated Components.

The paper's central modelling device (Section III-B): every Estimated
Component — sustainable charging level ``L``, availability ``A``, derouting
cost ``D`` — is not a point value but a *range* ``[min, max]`` reflecting
forecast uncertainty.  The Sustainability Score is therefore itself an
interval, and ranking happens on the interval endpoints (Eq. 4-6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from .analysis.contracts import ensure, require


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed real interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"interval lower bound {self.lo} exceeds upper bound {self.hi}")

    @classmethod
    def exact(cls, value: float) -> "Interval":
        """Degenerate interval ``[value, value]`` for known quantities."""
        return cls(value, value)

    @classmethod
    def around(cls, center: float, half_width: float) -> "Interval":
        """Symmetric interval ``[center - hw, center + hw]``."""
        if half_width < 0:
            raise ValueError("half_width must be non-negative")
        return cls(center - half_width, center + half_width)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return (self.lo + self.hi) / 2.0

    @property
    def is_exact(self) -> bool:
        return self.lo == self.hi

    def __add__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.lo + other.lo, self.hi + other.hi)
        return Interval(self.lo + other, self.hi + other)

    __radd__ = __add__

    def __sub__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.lo - other.hi, self.hi - other.lo)
        return Interval(self.lo - other, self.hi - other)

    def __mul__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            products = (
                self.lo * other.lo,
                self.lo * other.hi,
                self.hi * other.lo,
                self.hi * other.hi,
            )
            return Interval(min(products), max(products))
        if other >= 0:
            return Interval(self.lo * other, self.hi * other)
        return Interval(self.hi * other, self.lo * other)

    __rmul__ = __mul__

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __contains__(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def complement_to_one(self) -> "Interval":
        """The interval ``1 - self`` used by the derouting term of Eq. 4-5
        (lower derouting cost means a better score)."""
        return Interval(1.0 - self.hi, 1.0 - self.lo)

    @ensure(
        lambda result, lo, hi: result.within_bounds(lo, hi),
        "clamped interval must lie inside the clamp bounds",
    )
    def clamp(self, lo: float = 0.0, hi: float = 1.0) -> "Interval":
        """Clip both endpoints into ``[lo, hi]``."""
        if lo > hi:
            raise ValueError("clamp bounds must satisfy lo <= hi")
        return Interval(min(max(self.lo, lo), hi), min(max(self.hi, lo), hi))

    def scaled_by_max(self, maximum: float) -> "Interval":
        """Normalise by the environment maximum, the paper's normalisation
        for ``L`` and ``D``.  A non-positive maximum yields the zero
        interval (empty environment)."""
        if maximum <= 0:
            return Interval.exact(0.0)
        return Interval(self.lo / maximum, self.hi / maximum)

    def intersects(self, other: "Interval") -> bool:
        """True when the two intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlap interval or None when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    @ensure(
        lambda result, self, other: result.lo <= min(self.lo, other.lo)
        and result.hi >= max(self.hi, other.hi),
        "hull must contain both input intervals",
    )
    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def certainly_less_than(self, other: "Interval") -> bool:
        """True when every value of self is below every value of other."""
        return self.hi < other.lo

    def certainly_greater_than(self, other: "Interval") -> bool:
        """True when every value of self is above every value of other."""
        return self.lo > other.hi

    def within_bounds(self, lo: float, hi: float, tol: float = 0.0) -> bool:
        """True when the whole interval lies inside ``[lo - tol, hi + tol]``.

        The named form of the normalisation checks (``repro-check`` rule
        R1 forbids raw endpoint comparisons outside this module).
        """
        if tol < 0:
            raise ValueError("tol must be non-negative")
        return self.lo >= lo - tol and self.hi <= hi + tol

    @property
    def is_strictly_positive(self) -> bool:
        """True when every value of the interval is above zero."""
        return self.lo > 0.0

    @require(lambda factor: math.isfinite(factor), "widening factor must be finite")
    @ensure(
        lambda result, self: result.lo <= self.lo and result.hi >= self.hi,
        "widened interval must contain the original",
    )
    def widened(self, factor: float) -> "Interval":
        """Grow the interval symmetrically by ``factor`` of its width.

        Used to model forecast-horizon degradation: a 12-hour-out weather
        forecast is wider than a 1-hour-out one.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        margin = self.width * factor / 2.0
        return Interval(self.lo - margin, self.hi + margin)


def weighted_sum(terms: Iterable[tuple[Interval, float]]) -> Interval:
    """Interval-valued weighted sum ``sum(interval_i * weight_i)``.

    The building block of the Sustainability Score (Eq. 4-5).
    """
    total = Interval.exact(0.0)
    for interval, weight in terms:
        total = total + interval * weight
    return total


def hull_of(intervals: Iterable[Interval]) -> Interval:
    """Smallest interval covering all inputs; raises on empty input."""
    iterator = iter(intervals)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("hull of an empty collection is undefined") from None
    for interval in iterator:
        result = result.hull(interval)
    return result
