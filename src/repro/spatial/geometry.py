"""Planar geometry primitives shared by every spatial subsystem.

The synthetic road networks used throughout the reproduction live in a
planar coordinate system measured in kilometers (the paper's areas are
"45km x 35km" style rectangles, small enough that a local projection is
accurate).  Geographic helpers (haversine) are provided for workloads that
carry real longitude/latitude, such as the Geolife- and T-drive-style
profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the planar (km) coordinate system."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in km."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt on hot paths)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def chebyshev_distance_to(self, other: "Point") -> float:
        """L-infinity distance."""
        return max(abs(self.x - other.x), abs(self.y - other.y))

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway to ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> tuple[float, float]:
        """The coordinates as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed line segment between two planar points."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        return self.start.distance_to(self.end)

    def interpolate(self, fraction: float) -> Point:
        """Point at ``fraction`` in [0, 1] of the way from start to end."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        return Point(
            self.start.x + (self.end.x - self.start.x) * fraction,
            self.start.y + (self.end.y - self.start.y) * fraction,
        )

    def project(self, point: Point) -> tuple[float, Point]:
        """Project ``point`` onto the segment.

        Returns ``(fraction, closest)`` where ``fraction`` is the clamped
        parametric position of the projection and ``closest`` the nearest
        point on the segment.
        """
        vx = self.end.x - self.start.x
        vy = self.end.y - self.start.y
        denom = vx * vx + vy * vy
        if denom == 0.0:
            return 0.0, self.start
        t = ((point.x - self.start.x) * vx + (point.y - self.start.y) * vy) / denom
        t = min(1.0, max(0.0, t))
        return t, Point(self.start.x + t * vx, self.start.y + t * vy)

    def distance_to_point(self, point: Point) -> float:
        """Minimum distance from ``point`` to the segment."""
        __, closest = self.project(point)
        return closest.distance_to(point)

    def sample(self, step_km: float) -> Iterator[Point]:
        """Yield points every ``step_km`` along the segment, inclusive of
        both endpoints."""
        if step_km <= 0.0:
            raise ValueError("step_km must be positive")
        length = self.length
        if length == 0.0:
            yield self.start
            return
        steps = max(1, math.ceil(length / step_km))
        for i in range(steps + 1):
            yield self.interpolate(min(1.0, i / steps))


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the globe, in degrees."""

    lat: float
    lon: float

    def distance_to(self, other: "GeoPoint") -> float:
        """Great-circle (haversine) distance in km."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (lat, lon) pairs in km."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


class LocalProjection:
    """Equirectangular projection of geographic points to a local km plane.

    Accurate for the city-scale areas the paper evaluates (tens to a few
    hundred km).  The origin maps to ``Point(0, 0)``.
    """

    def __init__(self, origin: GeoPoint) -> None:
        self.origin = origin
        self._cos_lat = math.cos(math.radians(origin.lat))
        self._deg_lat_km = math.pi * EARTH_RADIUS_KM / 180.0

    def to_plane(self, geo: GeoPoint) -> Point:
        """Project a geographic point into the local km plane."""
        x = (geo.lon - self.origin.lon) * self._deg_lat_km * self._cos_lat
        y = (geo.lat - self.origin.lat) * self._deg_lat_km
        return Point(x, y)

    def to_geo(self, point: Point) -> GeoPoint:
        """Invert the projection back to latitude/longitude."""
        lon = self.origin.lon + point.x / (self._deg_lat_km * self._cos_lat)
        lat = self.origin.lat + point.y / self._deg_lat_km
        return GeoPoint(lat, lon)


def polyline_length(points: Sequence[Point]) -> float:
    """Total length of the polyline through ``points``."""
    return sum(a.distance_to(b) for a, b in zip(points, points[1:]))


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    xs = ys = 0.0
    count = 0
    for point in points:
        xs += point.x
        ys += point.y
        count += 1
    if count == 0:
        raise ValueError("centroid of an empty collection is undefined")
    return Point(xs / count, ys / count)
