"""Spatial substrate: geometry primitives and in-memory spatial indexes."""

from .bbox import BoundingBox
from .geometry import (
    EARTH_RADIUS_KM,
    GeoPoint,
    LocalProjection,
    Point,
    Segment,
    centroid,
    haversine_km,
    polyline_length,
)
from .grid import GridIndex
from .kdtree import KDTree
from .knn import SpatialIndex, brute_force_knn, brute_force_radius, knn_along_polyline
from .quadtree import QuadTree, QuadTreeStats
from .rtree import RTree

__all__ = [
    "BoundingBox",
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "GridIndex",
    "KDTree",
    "LocalProjection",
    "Point",
    "QuadTree",
    "QuadTreeStats",
    "RTree",
    "Segment",
    "SpatialIndex",
    "brute_force_knn",
    "brute_force_radius",
    "centroid",
    "haversine_km",
    "knn_along_polyline",
    "polyline_length",
]
