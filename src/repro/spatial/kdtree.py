"""Static k-d tree over planar points.

A bulk-loaded balanced 2-d tree used where the point set is known up front
(charger registries are static within an experiment run).  Complements the
incremental :class:`~repro.spatial.quadtree.QuadTree` and
:class:`~repro.spatial.grid.GridIndex`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Generic, Sequence, TypeVar

from .bbox import BoundingBox
from .geometry import Point

T = TypeVar("T")


@dataclass(slots=True)
class _KDNode(Generic[T]):
    point: Point
    item: T
    axis: int
    left: "_KDNode[T] | None" = None
    right: "_KDNode[T] | None" = None


class KDTree(Generic[T]):
    """Balanced k-d tree bulk-loaded by median splitting."""

    def __init__(self, entries: Sequence[tuple[Point, T]]) -> None:
        self._size = len(entries)
        self._root = self._build(list(entries), axis=0)

    def __len__(self) -> int:
        return self._size

    @classmethod
    def _build(
        cls, entries: list[tuple[Point, T]], axis: int
    ) -> "_KDNode[T] | None":
        if not entries:
            return None
        key = (lambda e: e[0].x) if axis == 0 else (lambda e: e[0].y)
        entries.sort(key=key)
        mid = len(entries) // 2
        point, item = entries[mid]
        node = _KDNode(point, item, axis)
        node.left = cls._build(entries[:mid], 1 - axis)
        node.right = cls._build(entries[mid + 1 :], 1 - axis)
        return node

    def nearest(self, center: Point, k: int = 1) -> list[tuple[float, Point, T]]:
        """kNN via branch-and-bound descent with a bounded max-heap."""
        if k < 1:
            raise ValueError("k must be at least 1")
        # Max-heap on negated distance; tiebreak by insertion order.
        best: list[tuple[float, int, Point, T]] = []
        counter = [0]

        def visit(node: _KDNode[T] | None) -> None:
            if node is None:
                return
            dist = node.point.distance_to(center)
            if len(best) < k:
                heapq.heappush(best, (-dist, counter[0], node.point, node.item))
                counter[0] += 1
            elif dist < -best[0][0]:
                heapq.heapreplace(best, (-dist, counter[0], node.point, node.item))
                counter[0] += 1
            diff = (center.x - node.point.x) if node.axis == 0 else (center.y - node.point.y)
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            # The far subtree can only help if the splitting plane is closer
            # than the current kth-best distance (or we still lack k hits).
            if len(best) < k or abs(diff) < -best[0][0]:
                visit(far)

        visit(self._root)
        return sorted(((-d, p, i) for d, __, p, i in best), key=lambda t: t[0])

    def query_radius(self, center: Point, radius: float) -> list[tuple[Point, T]]:
        """All entries within ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        results: list[tuple[Point, T]] = []
        r2 = radius * radius

        def visit(node: _KDNode[T] | None) -> None:
            if node is None:
                return
            if node.point.squared_distance_to(center) <= r2:
                results.append((node.point, node.item))
            diff = (center.x - node.point.x) if node.axis == 0 else (center.y - node.point.y)
            if diff - radius < 0:
                visit(node.left)
            if diff + radius >= 0:
                visit(node.right)

        visit(self._root)
        return results

    def query_range(self, box: BoundingBox) -> list[tuple[Point, T]]:
        """All entries whose point lies inside ``box``."""
        results: list[tuple[Point, T]] = []

        def visit(node: _KDNode[T] | None) -> None:
            if node is None:
                return
            if box.contains(node.point):
                results.append((node.point, node.item))
            coord = node.point.x if node.axis == 0 else node.point.y
            lo = box.min_x if node.axis == 0 else box.min_y
            hi = box.max_x if node.axis == 0 else box.max_y
            if lo <= coord:
                visit(node.left)
            if hi >= coord:
                visit(node.right)

        visit(self._root)
        return results
