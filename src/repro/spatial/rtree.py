"""STR-packed R-tree.

The continuous-NN literature the paper builds on (Tao et al., VLDB'02;
Frentzos et al.; Huan et al.) runs on R-trees; this implementation
completes the index substrate with the canonical structure.  Static
workloads (charger registries) suit bulk loading, so the tree is packed
with the Sort-Tile-Recursive algorithm: sort by x, slice into vertical
tiles, sort each tile by y, pack leaves bottom-up.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Generic, Sequence, TypeVar

from .bbox import BoundingBox
from .geometry import Point

T = TypeVar("T")


@dataclass(slots=True)
class _Leaf(Generic[T]):
    bounds: BoundingBox
    entries: tuple[tuple[Point, T], ...]


@dataclass(slots=True)
class _Branch(Generic[T]):
    bounds: BoundingBox
    children: tuple["_Branch[T] | _Leaf[T]", ...]


class RTree(Generic[T]):
    """Static R-tree bulk-loaded with Sort-Tile-Recursive packing."""

    def __init__(self, entries: Sequence[tuple[Point, T]], leaf_capacity: int = 16) -> None:
        if leaf_capacity < 2:
            raise ValueError("leaf_capacity must be at least 2")
        self.leaf_capacity = leaf_capacity
        self._size = len(entries)
        self._root: _Branch[T] | _Leaf[T] | None = (
            self._build(list(entries)) if entries else None
        )

    def __len__(self) -> int:
        return self._size

    # -- STR packing -----------------------------------------------------------

    def _build(self, entries: list[tuple[Point, T]]) -> "_Branch[T] | _Leaf[T]":
        leaves = self._pack_leaves(entries)
        nodes: list[_Branch[T] | _Leaf[T]] = list(leaves)
        while len(nodes) > 1:
            nodes = self._pack_level(nodes)
        return nodes[0]

    def _pack_leaves(self, entries: list[tuple[Point, T]]) -> list[_Leaf[T]]:
        capacity = self.leaf_capacity
        leaf_count = math.ceil(len(entries) / capacity)
        slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
        per_slice = slice_count * capacity
        entries.sort(key=lambda e: (e[0].x, e[0].y))
        leaves: list[_Leaf[T]] = []
        for i in range(0, len(entries), per_slice):
            tile = sorted(entries[i : i + per_slice], key=lambda e: (e[0].y, e[0].x))
            for j in range(0, len(tile), capacity):
                chunk = tuple(tile[j : j + capacity])
                bounds = BoundingBox.from_points(p for p, __ in chunk)
                leaves.append(_Leaf(bounds, chunk))
        return leaves

    def _pack_level(
        self, nodes: list["_Branch[T] | _Leaf[T]"]
    ) -> list["_Branch[T] | _Leaf[T]"]:
        capacity = self.leaf_capacity
        parent_count = math.ceil(len(nodes) / capacity)
        slice_count = max(1, math.ceil(math.sqrt(parent_count)))
        per_slice = slice_count * capacity
        nodes.sort(key=lambda n: (n.bounds.center.x, n.bounds.center.y))
        parents: list[_Branch[T] | _Leaf[T]] = []
        for i in range(0, len(nodes), per_slice):
            tile = sorted(
                nodes[i : i + per_slice],
                key=lambda n: (n.bounds.center.y, n.bounds.center.x),
            )
            for j in range(0, len(tile), capacity):
                chunk = tuple(tile[j : j + capacity])
                bounds = chunk[0].bounds
                for child in chunk[1:]:
                    bounds = BoundingBox(
                        min(bounds.min_x, child.bounds.min_x),
                        min(bounds.min_y, child.bounds.min_y),
                        max(bounds.max_x, child.bounds.max_x),
                        max(bounds.max_y, child.bounds.max_y),
                    )
                parents.append(_Branch(bounds, chunk))
        return parents

    # -- queries ----------------------------------------------------------------

    def query_range(self, box: BoundingBox) -> list[tuple[Point, T]]:
        """All entries whose point lies inside ``box``."""
        if self._root is None:
            return []
        results: list[tuple[Point, T]] = []
        stack: list[_Branch[T] | _Leaf[T]] = [self._root]
        while stack:
            node = stack.pop()
            if not node.bounds.intersects(box):
                continue
            if isinstance(node, _Leaf):
                results.extend(
                    (point, item) for point, item in node.entries if box.contains(point)
                )
            else:
                stack.extend(node.children)
        return results

    def query_radius(self, center: Point, radius: float) -> list[tuple[Point, T]]:
        """All entries within Euclidean ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if self._root is None:
            return []
        results: list[tuple[Point, T]] = []
        r2 = radius * radius
        stack: list[_Branch[T] | _Leaf[T]] = [self._root]
        while stack:
            node = stack.pop()
            if node.bounds.min_distance_to(center) > radius:
                continue
            if isinstance(node, _Leaf):
                results.extend(
                    (point, item)
                    for point, item in node.entries
                    if point.squared_distance_to(center) <= r2
                )
            else:
                stack.extend(node.children)
        return results

    def nearest(self, center: Point, k: int = 1) -> list[tuple[float, Point, T]]:
        """Best-first kNN (Hjaltason & Samet incremental search)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        if self._root is None:
            return []
        counter = itertools.count()
        heap: list[tuple[float, int, object]] = [
            (self._root.bounds.min_distance_to(center), next(counter), self._root)
        ]
        results: list[tuple[float, Point, T]] = []
        while heap and len(results) < k:
            dist, __, obj = heapq.heappop(heap)
            if isinstance(obj, _Leaf):
                for point, item in obj.entries:
                    heapq.heappush(
                        heap, (point.distance_to(center), next(counter), (point, item))
                    )
            elif isinstance(obj, _Branch):
                for child in obj.children:
                    heapq.heappush(
                        heap,
                        (child.bounds.min_distance_to(center), next(counter), child),
                    )
            else:
                point, item = obj  # a materialised entry
                results.append((dist, point, item))
        return results

    def height(self) -> int:
        """Tree height (1 for a single leaf, 0 when empty)."""
        node = self._root
        if node is None:
            return 0
        height = 1
        while isinstance(node, _Branch):
            height += 1
            node = node.children[0]
        return height
