"""Uniform grid index.

The CkNN literature the paper builds on (Xiong et al., Mouratidis et al.,
Yu et al. — Section VI-B) indexes moving objects with an in-memory regular
grid and answers kNN by iteratively deepening a range search around the
query cell.  This module provides that substrate; EcoCharge uses it for
charger candidate generation when a quadtree is not requested.
"""

from __future__ import annotations

import math
from typing import Generic, Iterator, TypeVar

from .bbox import BoundingBox
from .geometry import Point

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Fixed-resolution uniform grid over a bounding box."""

    def __init__(self, bounds: BoundingBox, cell_size_km: float) -> None:
        if cell_size_km <= 0:
            raise ValueError("cell_size_km must be positive")
        self.bounds = bounds
        self.cell_size = cell_size_km
        self.cols = max(1, math.ceil(bounds.width / cell_size_km))
        self.rows = max(1, math.ceil(bounds.height / cell_size_km))
        self._cells: dict[tuple[int, int], list[tuple[Point, T]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[tuple[Point, T]]:
        for cell in self._cells.values():
            yield from cell

    def _cell_of(self, point: Point) -> tuple[int, int]:
        col = int((point.x - self.bounds.min_x) / self.cell_size)
        row = int((point.y - self.bounds.min_y) / self.cell_size)
        return (min(max(col, 0), self.cols - 1), min(max(row, 0), self.rows - 1))

    def insert(self, point: Point, item: T) -> None:
        """Insert ``item`` at ``point`` (ValueError outside bounds)."""
        if not self.bounds.contains(point):
            raise ValueError(f"point {point} outside index bounds {self.bounds}")
        self._cells.setdefault(self._cell_of(point), []).append((point, item))
        self._size += 1

    def remove(self, point: Point, item: T) -> bool:
        """Remove one matching entry; True when something was removed."""
        cell = self._cells.get(self._cell_of(point))
        if not cell:
            return False
        for i, (p, stored) in enumerate(cell):
            if p == point and stored == item:
                cell.pop(i)
                self._size -= 1
                return True
        return False

    def query_radius(self, center: Point, radius: float) -> list[tuple[Point, T]]:
        """All entries within ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        col_lo = int((center.x - radius - self.bounds.min_x) / self.cell_size)
        col_hi = int((center.x + radius - self.bounds.min_x) / self.cell_size)
        row_lo = int((center.y - radius - self.bounds.min_y) / self.cell_size)
        row_hi = int((center.y + radius - self.bounds.min_y) / self.cell_size)
        r2 = radius * radius
        results: list[tuple[Point, T]] = []
        for col in range(max(0, col_lo), min(self.cols - 1, col_hi) + 1):
            for row in range(max(0, row_lo), min(self.rows - 1, row_hi) + 1):
                for point, item in self._cells.get((col, row), ()):
                    if point.squared_distance_to(center) <= r2:
                        results.append((point, item))
        return results

    def query_range(self, box: BoundingBox) -> list[tuple[Point, T]]:
        """All entries whose point lies inside ``box``."""
        col_lo = int((box.min_x - self.bounds.min_x) / self.cell_size)
        col_hi = int((box.max_x - self.bounds.min_x) / self.cell_size)
        row_lo = int((box.min_y - self.bounds.min_y) / self.cell_size)
        row_hi = int((box.max_y - self.bounds.min_y) / self.cell_size)
        results: list[tuple[Point, T]] = []
        for col in range(max(0, col_lo), min(self.cols - 1, col_hi) + 1):
            for row in range(max(0, row_lo), min(self.rows - 1, row_hi) + 1):
                for point, item in self._cells.get((col, row), ()):
                    if box.contains(point):
                        results.append((point, item))
        return results

    def nearest(self, center: Point, k: int = 1) -> list[tuple[float, Point, T]]:
        """kNN by iterative range deepening.

        Expands the search radius ring by ring (the stateless strategy of
        the grid-based CkNN monitoring papers) until ``k`` hits are
        confirmed or the whole grid is exhausted.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if self._size == 0:
            return []
        radius = self.cell_size
        max_radius = math.hypot(self.bounds.width, self.bounds.height) + self.cell_size
        while True:
            hits = self.query_radius(center, radius)
            if len(hits) >= k or radius > max_radius:
                hits.sort(key=lambda pair: pair[0].squared_distance_to(center))
                return [
                    (point.distance_to(center), point, item) for point, item in hits[:k]
                ]
            radius *= 2.0

    def occupied_cells(self) -> int:
        """Number of grid cells currently holding entries."""
        return sum(1 for cell in self._cells.values() if cell)
