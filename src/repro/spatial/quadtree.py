"""Point-region (PR) quadtree.

This is the index behind the paper's *Index-Quadtree* baseline (Section
V-A): a tree that recursively partitions 2-D space into four quadrants,
bringing charger lookup from ``O(n)`` brute force down to logarithmic
behaviour for range and kNN queries.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Generic, Iterator, TypeVar

from .bbox import BoundingBox
from .geometry import Point

T = TypeVar("T")


@dataclass(slots=True)
class _Entry(Generic[T]):
    point: Point
    item: T


class _Node(Generic[T]):
    __slots__ = ("bounds", "entries", "children", "depth")

    def __init__(self, bounds: BoundingBox, depth: int) -> None:
        self.bounds = bounds
        self.entries: list[_Entry[T]] = []
        self.children: tuple["_Node[T]", ...] | None = None
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree(Generic[T]):
    """PR quadtree over planar points.

    Parameters
    ----------
    bounds:
        The spatial extent indexed.  Inserting a point outside raises
        ``ValueError``.
    capacity:
        Leaf capacity before splitting (paper-style small fanout; default 8).
    max_depth:
        Hard split limit so co-located points cannot recurse forever.
    """

    def __init__(self, bounds: BoundingBox, capacity: int = 8, max_depth: int = 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.bounds = bounds
        self.capacity = capacity
        self.max_depth = max_depth
        self._root: _Node[T] = _Node(bounds, depth=0)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[tuple[Point, T]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                yield entry.point, entry.item
            if node.children is not None:
                stack.extend(node.children)

    def insert(self, point: Point, item: T) -> None:
        """Insert ``item`` at ``point``."""
        if not self.bounds.contains(point):
            raise ValueError(f"point {point} outside index bounds {self.bounds}")
        node = self._root
        while True:
            if node.is_leaf:
                node.entries.append(_Entry(point, item))
                self._size += 1
                if len(node.entries) > self.capacity and node.depth < self.max_depth:
                    self._split(node)
                return
            node = self._child_for(node, point)

    def remove(self, point: Point, item: T) -> bool:
        """Remove one entry matching ``(point, item)``.

        Returns True when an entry was removed.  Leaves are not merged back
        (the workloads here are insert-heavy; removal exists for cache
        invalidation tests).
        """
        node = self._root
        while node is not None:
            for i, entry in enumerate(node.entries):
                if entry.point == point and entry.item == item:
                    node.entries.pop(i)
                    self._size -= 1
                    return True
            if node.is_leaf:
                return False
            node = self._child_for(node, point)
        return False

    def _split(self, node: _Node[T]) -> None:
        node.children = tuple(
            _Node(quad, node.depth + 1) for quad in node.bounds.quadrants()
        )
        entries, node.entries = node.entries, []
        for entry in entries:
            self._child_for(node, entry.point).entries.append(entry)
        # Over-full children are split lazily on the next insert that lands
        # in them, keeping the split cost amortised.

    @staticmethod
    def _child_for(node: _Node[T], point: Point) -> _Node[T]:
        assert node.children is not None
        cx, cy = node.bounds.center.x, node.bounds.center.y
        if point.y >= cy:
            return node.children[1] if point.x >= cx else node.children[0]
        return node.children[3] if point.x >= cx else node.children[2]

    def query_range(self, box: BoundingBox) -> list[tuple[Point, T]]:
        """All entries whose point lies inside ``box``."""
        results: list[tuple[Point, T]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.bounds.intersects(box):
                continue
            for entry in node.entries:
                if box.contains(entry.point):
                    results.append((entry.point, entry.item))
            if node.children is not None:
                stack.extend(node.children)
        return results

    def query_radius(self, center: Point, radius: float) -> list[tuple[Point, T]]:
        """All entries within Euclidean ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        results: list[tuple[Point, T]] = []
        stack = [self._root]
        r2 = radius * radius
        while stack:
            node = stack.pop()
            if not node.bounds.intersects_circle(center, radius):
                continue
            for entry in node.entries:
                if entry.point.squared_distance_to(center) <= r2:
                    results.append((entry.point, entry.item))
            if node.children is not None:
                stack.extend(node.children)
        return results

    def nearest(self, center: Point, k: int = 1) -> list[tuple[float, Point, T]]:
        """Best-first kNN search.

        Returns up to ``k`` ``(distance, point, item)`` triples sorted by
        ascending distance.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        counter = itertools.count()
        # Heap of (min possible distance, tiebreak, node-or-entry).
        heap: list[tuple[float, int, object]] = [
            (self._root.bounds.min_distance_to(center), next(counter), self._root)
        ]
        results: list[tuple[float, Point, T]] = []
        while heap and len(results) < k:
            dist, __, obj = heapq.heappop(heap)
            if isinstance(obj, _Node):
                for entry in obj.entries:
                    heapq.heappush(
                        heap, (entry.point.distance_to(center), next(counter), entry)
                    )
                if obj.children is not None:
                    for child in obj.children:
                        heapq.heappush(
                            heap,
                            (child.bounds.min_distance_to(center), next(counter), child),
                        )
            else:
                entry = obj  # type: ignore[assignment]
                results.append((dist, entry.point, entry.item))
        return results

    def depth(self) -> int:
        """Maximum depth of the tree (0 for a single-leaf tree)."""
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            best = max(best, node.depth)
            if node.children is not None:
                stack.extend(node.children)
        return best

    def node_count(self) -> int:
        """Total number of tree nodes (leaves and branches)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if node.children is not None:
                stack.extend(node.children)
        return count


@dataclass(slots=True)
class QuadTreeStats:
    """Summary statistics used by the index ablation bench."""

    size: int
    depth: int
    nodes: int
    capacity: int

    @classmethod
    def of(cls, tree: QuadTree) -> "QuadTreeStats":
        return cls(size=len(tree), depth=tree.depth(), nodes=tree.node_count(), capacity=tree.capacity)
