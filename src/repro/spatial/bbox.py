"""Axis-aligned bounding boxes used by the spatial indexes."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from .geometry import Point


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bounding box: {self}")

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot bound an empty collection") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for point in iterator:
            min_x = min(min_x, point.x)
            max_x = max(max_x, point.x)
            min_y = min(min_y, point.y)
            max_y = max(max_y, point.y)
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def around(cls, center: Point, radius: float) -> "BoundingBox":
        """Square box of half-width ``radius`` centred on ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return cls(center.x - radius, center.y - radius, center.x + radius, center.y + radius)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    def contains_box(self, other: "BoundingBox") -> bool:
        """True when ``other`` lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two boxes overlap (boundaries count)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def intersects_circle(self, center: Point, radius: float) -> bool:
        """True if the box intersects the closed disk of ``radius`` around
        ``center``."""
        return self.min_distance_to(center) <= radius

    def min_distance_to(self, point: Point) -> float:
        """Minimum Euclidean distance from ``point`` to the box (0 inside)."""
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        # hypot, not sqrt(dx*dx + dy*dy): squaring subnormal gaps underflows
        # to zero and would report "inside" for points just off the edge.
        return math.hypot(dx, dy)

    def max_distance_to(self, point: Point) -> float:
        """Maximum Euclidean distance from ``point`` to any point of the box."""
        dx = max(abs(point.x - self.min_x), abs(point.x - self.max_x))
        dy = max(abs(point.y - self.min_y), abs(point.y - self.max_y))
        return math.hypot(dx, dy)

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` on every side."""
        return BoundingBox(
            self.min_x - margin, self.min_y - margin, self.max_x + margin, self.max_y + margin
        )

    def quadrants(self) -> tuple["BoundingBox", "BoundingBox", "BoundingBox", "BoundingBox"]:
        """Split into (NW, NE, SW, SE) quadrants."""
        cx, cy = self.center.x, self.center.y
        return (
            BoundingBox(self.min_x, cy, cx, self.max_y),
            BoundingBox(cx, cy, self.max_x, self.max_y),
            BoundingBox(self.min_x, self.min_y, cx, cy),
            BoundingBox(cx, self.min_y, self.max_x, cy),
        )
