"""Index-agnostic kNN helpers and the common spatial-index protocol.

Every index in this package (:class:`QuadTree`, :class:`GridIndex`,
:class:`KDTree`) exposes ``nearest`` / ``query_radius`` / ``query_range``
with identical signatures; :class:`SpatialIndex` captures that contract so
the ranking layer can be parameterised by index type.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Protocol, Sequence, TypeVar, runtime_checkable

from .bbox import BoundingBox
from .geometry import Point

T = TypeVar("T")


@runtime_checkable
class SpatialIndex(Protocol[T]):
    """Structural type implemented by all indexes in this package."""

    def nearest(self, center: Point, k: int = 1) -> list[tuple[float, Point, T]]:
        """Up to ``k`` nearest entries as (distance, point, item)."""
        ...

    def query_radius(self, center: Point, radius: float) -> list[tuple[Point, T]]:
        """All entries within ``radius`` of ``center``."""
        ...

    def query_range(self, box: BoundingBox) -> list[tuple[Point, T]]:
        """All entries inside ``box``."""
        ...

    def __len__(self) -> int:
        ...


def brute_force_knn(
    entries: Iterable[tuple[Point, T]], center: Point, k: int = 1
) -> list[tuple[float, Point, T]]:
    """Exhaustive kNN over arbitrary (point, item) pairs.

    The reference implementation every index is validated against in the
    test suite, and the engine of the paper's Brute-Force baseline.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    heap: list[tuple[float, int, Point, T]] = []
    for order, (point, item) in enumerate(entries):
        dist = point.distance_to(center)
        if len(heap) < k:
            heapq.heappush(heap, (-dist, order, point, item))
        elif dist < -heap[0][0]:
            heapq.heapreplace(heap, (-dist, order, point, item))
    return sorted(((-d, p, i) for d, __, p, i in heap), key=lambda t: t[0])


def brute_force_radius(
    entries: Iterable[tuple[Point, T]], center: Point, radius: float
) -> list[tuple[Point, T]]:
    """Exhaustive radius search; reference for index validation."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    r2 = radius * radius
    return [
        (point, item)
        for point, item in entries
        if point.squared_distance_to(center) <= r2
    ]


def knn_along_polyline(
    index: SpatialIndex[T],
    polyline: Sequence[Point],
    k: int = 1,
    step_km: float = 0.5,
) -> list[tuple[Point, list[tuple[float, Point, T]]]]:
    """Sampled kNN along a polyline.

    Evaluates ``index.nearest`` at every ``step_km`` along the polyline and
    returns ``(sample_point, knn_result)`` pairs.  This is the discretised
    view of a continuous kNN query that :mod:`repro.core.cknn` refines into
    exact split points.
    """
    from .geometry import Segment  # local import to avoid cycle in typing

    results: list[tuple[Point, list[tuple[float, Point, T]]]] = []
    seen_first = False
    for start, end in zip(polyline, polyline[1:]):
        samples = list(Segment(start, end).sample(step_km))
        if seen_first:
            samples = samples[1:]  # avoid duplicating shared vertices
        seen_first = True
        for sample in samples:
            results.append((sample, index.nearest(sample, k)))
    if not results and polyline:
        results.append((polyline[0], index.nearest(polyline[0], k)))
    return results
