"""The ``repro-check`` analysis engine.

Walks a set of Python files, parses each with :mod:`ast`, runs every
registered :class:`~repro.analysis.rules.Rule` against them, honours
inline suppressions, and renders the violations.  Whole-program rules
(:mod:`repro.analysis.passes`) additionally receive a
:class:`~repro.analysis.graph.ProjectGraph` assembled from every file
in the run.

The engine is deliberately dependency-free (stdlib only) so it can be
imported from anywhere in the codebase — including ``conftest.py`` and the
tier-1 lint-gate tests — without dragging in the domain packages it
checks.

Suppression syntax (documented in ``docs/static_analysis.md``):

* ``# repro-check: disable=R2`` on a line suppresses the named rule(s)
  for that line (comma-separated ids, e.g. ``disable=R1,R4``).
* ``# repro-check: disable-next-line=R2`` suppresses the rule(s) on the
  following line — for when the flagged line has no room for a pragma.
* ``# repro-check: disable-file=R2`` anywhere in the first ten lines of a
  file suppresses the rule(s) for the whole file.
* ``disable=all`` / ``disable-file=all`` suppress every rule.

Parallelism: ``check_paths(..., jobs=N)`` fans file loading, per-file
rules, and fact extraction out to worker processes; the whole-program
passes then run in the parent over the gathered facts.  Findings are
sorted on ``(path, line, rule)`` last, so the output is byte-identical
to a serial run.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

if TYPE_CHECKING:
    from .graph import ModuleFacts

#: Lines scanned for ``disable-file`` pragmas.
_FILE_PRAGMA_WINDOW = 10

_PRAGMA_RE = re.compile(
    r"#\s*repro-check:\s*(?P<kind>disable(?:-file|-next-line)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule fired at a source location."""

    rule_id: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(slots=True)
class Suppressions:
    """Parsed ``# repro-check:`` pragmas for one file."""

    #: rule ids disabled for the whole file ("all" disables everything)
    file_level: frozenset[str] = frozenset()
    #: line number -> rule ids disabled on that line
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_level or rule_id in self.file_level:
            return True
        on_line = self.by_line.get(line)
        if on_line is None:
            return False
        return "all" in on_line or rule_id in on_line

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        # Normalise newlines first: CRLF (and bare-CR) files must parse
        # `disable=R1,R2` identically to LF files — a trailing `\r` on
        # the last token previously defeated the id match.
        normalized = source.replace("\r\n", "\n").replace("\r", "\n")
        file_level: set[str] = set()
        by_line: dict[int, frozenset[str]] = {}

        def add_line(lineno: int, rules: frozenset[str]) -> None:
            existing = by_line.get(lineno, frozenset())
            by_line[lineno] = existing | rules

        for lineno, text in enumerate(normalized.split("\n"), start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = frozenset(
                token.strip().upper() if token.strip().lower() != "all" else "all"
                for token in match.group("rules").split(",")
                if token.strip()
            )
            kind = match.group("kind")
            if kind == "disable-file":
                if lineno <= _FILE_PRAGMA_WINDOW:
                    file_level.update(rules)
            elif kind == "disable-next-line":
                add_line(lineno + 1, rules)
            else:
                add_line(lineno, rules)
        return cls(file_level=frozenset(file_level), by_line=by_line)


@dataclass(slots=True)
class SourceFile:
    """A parsed source file handed to every rule."""

    path: Path
    #: path relative to the analysis root, POSIX-style — what rules match
    #: their applicability scopes against and what reports print.
    rel_path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def is_test(self) -> bool:
        name = self.path.name
        return name.startswith(("test_", "conftest")) or "/tests/" in f"/{self.rel_path}"

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile | None":
        """Parse ``path``; returns None for unparseable files (reported
        separately by the analyzer as a hard error)."""
        from .cache import GLOBAL_CACHE

        source = path.read_text(encoding="utf-8")
        rel = _rel_path(path, root)
        tree, suppressions = GLOBAL_CACHE.entry_for(rel, source)
        return cls(
            path=path,
            rel_path=rel,
            source=source,
            tree=tree,
            suppressions=suppressions,
        )


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


_SKIP_DIR_NAMES = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
}


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, skipping
    caches, VCS internals, and packaging artefacts (``*.egg-info``)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIR_NAMES:
                continue
            if any(part.endswith(".egg-info") for part in candidate.parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class AnalysisError(Exception):
    """Raised when a target cannot be analysed at all (missing path,
    syntax error) — distinct from rule violations."""


@dataclass(slots=True)
class AnalysisReport:
    """The outcome of one analyzer run."""

    violations: list[Violation]
    files_checked: int
    rules_run: tuple[str, ...]
    #: findings matched (and absorbed) by the baseline file, when one
    #: was applied; they do not affect :attr:`ok`.
    baselined: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render_text(self) -> str:
        lines = [violation.render() for violation in self.violations]
        summary = (
            f"repro-check: {len(self.violations)} violation(s) in "
            f"{self.files_checked} file(s) [{', '.join(self.rules_run)}]"
        )
        if self.baselined:
            summary += f" ({len(self.baselined)} baselined)"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        payload: dict[str, object] = {
            "violations": [v.as_dict() for v in self.violations],
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "ok": self.ok,
        }
        if self.baselined:
            payload["baselined"] = [v.as_dict() for v in self.baselined]
        return json.dumps(payload, indent=2)


def _worker_check(
    payload: tuple[str, str, tuple[str, ...], bool],
) -> tuple[str, list[Violation], "ModuleFacts | None"]:
    """Process-pool worker: load one file, run the per-file rules, and
    (when whole-program rules are active) extract its module facts.

    Everything returned is picklable; ASTs never cross the process
    boundary.  Runs in a fresh interpreter, so rules are re-selected
    from their ids.
    """
    from .cache import GLOBAL_CACHE
    from .rules import select_rules

    path_str, root_str, rule_ids, need_facts = payload
    path = Path(path_str)
    try:
        source = SourceFile.load(path, Path(root_str))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    assert source is not None
    violations: list[Violation] = []
    if rule_ids:
        for rule in select_rules(rule_ids):
            if not rule.applies_to(source):
                continue
            for violation in rule.check(source):
                if source.suppressions.is_suppressed(violation.rule_id, violation.line):
                    continue
                violations.append(violation)
    facts = GLOBAL_CACHE.facts_for(source) if need_facts else None
    return source.rel_path, violations, facts


class Analyzer:
    """Runs a set of rules — per-file and whole-program — over files."""

    def __init__(self, rules: Sequence["RuleProtocol"]) -> None:
        if not rules:
            raise ValueError("at least one rule is required")
        self.rules = list(rules)
        self.file_rules = [
            rule for rule in self.rules if not getattr(rule, "is_project_rule", False)
        ]
        self.project_rules = [
            rule for rule in self.rules if getattr(rule, "is_project_rule", False)
        ]

    def check_paths(
        self,
        paths: Sequence[Path],
        root: Path | None = None,
        jobs: int = 1,
    ) -> AnalysisReport:
        """Analyse files/directories rooted at ``root`` (defaults to the
        common parent used for relative-path reporting).  ``jobs > 1``
        fans per-file work out to that many worker processes."""
        resolved = [Path(p) for p in paths]
        for path in resolved:
            if not path.exists():
                raise AnalysisError(f"no such file or directory: {path}")
        base = root if root is not None else _common_root(resolved)
        file_paths = list(iter_python_files(resolved))
        if jobs > 1:
            return self._check_parallel(file_paths, base, jobs)
        files: list[SourceFile] = []
        for file_path in file_paths:
            try:
                loaded = SourceFile.load(file_path, base)
            except SyntaxError as exc:
                raise AnalysisError(f"cannot parse {file_path}: {exc}") from exc
            if loaded is not None:
                files.append(loaded)
        return self.check_files(files)

    def _check_parallel(
        self, file_paths: Sequence[Path], base: Path, jobs: int
    ) -> AnalysisReport:
        need_facts = bool(self.project_rules)
        rule_ids = tuple(rule.rule_id for rule in self.file_rules)
        payloads = [
            (str(path), str(base), rule_ids, need_facts) for path in file_paths
        ]
        violations: list[Violation] = []
        facts: list["ModuleFacts"] = []
        suppression_map: dict[str, Suppressions] = {}
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for rel_path, file_violations, module_facts in pool.map(
                _worker_check, payloads
            ):
                violations.extend(file_violations)
                if module_facts is not None:
                    facts.append(module_facts)
        if self.project_rules:
            # Suppressions for project findings come from the parent's
            # cache — cheap re-parse of only the flagged-able files.
            for path in file_paths:
                loaded = SourceFile.load(path, base)
                if loaded is not None:
                    suppression_map[loaded.rel_path] = loaded.suppressions
            violations.extend(self._run_project_rules(facts, suppression_map))
        violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
        return AnalysisReport(
            violations=violations,
            files_checked=len(file_paths),
            rules_run=tuple(rule.rule_id for rule in self.rules),
        )

    def check_files(self, files: Sequence[SourceFile]) -> AnalysisReport:
        from .cache import GLOBAL_CACHE

        violations: list[Violation] = []
        for source in files:
            for rule in self.file_rules:
                if not rule.applies_to(source):
                    continue
                for violation in rule.check(source):
                    if source.suppressions.is_suppressed(violation.rule_id, violation.line):
                        continue
                    violations.append(violation)
        if self.project_rules:
            facts = [GLOBAL_CACHE.facts_for(source) for source in files]
            suppression_map = {
                source.rel_path: source.suppressions for source in files
            }
            violations.extend(self._run_project_rules(facts, suppression_map))
        violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
        return AnalysisReport(
            violations=violations,
            files_checked=len(files),
            rules_run=tuple(rule.rule_id for rule in self.rules),
        )

    def _run_project_rules(
        self,
        facts: Sequence["ModuleFacts"],
        suppressions: Mapping[str, Suppressions],
    ) -> list[Violation]:
        from .graph import build_graph

        graph = build_graph(facts)
        violations: list[Violation] = []
        for rule in self.project_rules:
            for violation in rule.check_project(graph):
                per_file = suppressions.get(violation.path)
                if per_file is not None and per_file.is_suppressed(
                    violation.rule_id, violation.line
                ):
                    continue
                violations.append(violation)
        return violations

    def check_source(self, source: str, rel_path: str = "<snippet>.py") -> list[Violation]:
        """Analyse an in-memory snippet — the fixture-test entry point."""
        return self.check_snippets({rel_path: source})

    def check_snippets(self, snippets: Mapping[str, str]) -> list[Violation]:
        """Analyse a set of in-memory files as one project — the
        multi-file fixture entry point for whole-program rules."""
        files = []
        for rel_path, source in snippets.items():
            tree = ast.parse(source)
            files.append(
                SourceFile(
                    path=Path(rel_path),
                    rel_path=rel_path,
                    source=source,
                    tree=tree,
                    suppressions=Suppressions.parse(source),
                )
            )
        report = self.check_files(files)
        return report.violations


def _common_root(paths: Iterable[Path]) -> Path:
    resolved = [p.resolve() for p in paths]
    if not resolved:
        return Path.cwd()
    common = resolved[0] if resolved[0].is_dir() else resolved[0].parent
    for path in resolved[1:]:
        candidate = path if path.is_dir() else path.parent
        while common not in (candidate, *candidate.parents):
            if common.parent == common:
                break
            common = common.parent
    return common


class RuleProtocol:
    """Structural interface every rule implements (kept as a plain base
    class so the engine has zero typing-time dependencies)."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, source: SourceFile) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def check(self, source: SourceFile) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError


def main_stream() -> "object":
    """Default output stream (separated for test capture)."""
    return sys.stdout
