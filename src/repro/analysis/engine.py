"""The ``repro-check`` analysis engine.

Walks a set of Python files, parses each with :mod:`ast`, runs every
registered :class:`~repro.analysis.rules.Rule` against them, honours
inline suppressions, and renders the violations.

The engine is deliberately dependency-free (stdlib only) so it can be
imported from anywhere in the codebase — including ``conftest.py`` and the
tier-1 lint-gate tests — without dragging in the domain packages it
checks.

Suppression syntax (documented in ``docs/static_analysis.md``):

* ``# repro-check: disable=R2`` on a line suppresses the named rule(s)
  for that line (comma-separated ids, e.g. ``disable=R1,R4``).
* ``# repro-check: disable-file=R2`` anywhere in the first ten lines of a
  file suppresses the rule(s) for the whole file.
* ``disable=all`` / ``disable-file=all`` suppress every rule.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Lines scanned for ``disable-file`` pragmas.
_FILE_PRAGMA_WINDOW = 10

_PRAGMA_RE = re.compile(
    r"#\s*repro-check:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule fired at a source location."""

    rule_id: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(slots=True)
class Suppressions:
    """Parsed ``# repro-check:`` pragmas for one file."""

    #: rule ids disabled for the whole file ("all" disables everything)
    file_level: frozenset[str] = frozenset()
    #: line number -> rule ids disabled on that line
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_level or rule_id in self.file_level:
            return True
        on_line = self.by_line.get(line)
        if on_line is None:
            return False
        return "all" in on_line or rule_id in on_line

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        file_level: set[str] = set()
        by_line: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = frozenset(
                token.strip().upper() if token.strip().lower() != "all" else "all"
                for token in match.group("rules").split(",")
                if token.strip()
            )
            if match.group("kind") == "disable-file":
                if lineno <= _FILE_PRAGMA_WINDOW:
                    file_level.update(rules)
            else:
                by_line[lineno] = rules
        return cls(file_level=frozenset(file_level), by_line=by_line)


@dataclass(slots=True)
class SourceFile:
    """A parsed source file handed to every rule."""

    path: Path
    #: path relative to the analysis root, POSIX-style — what rules match
    #: their applicability scopes against and what reports print.
    rel_path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def is_test(self) -> bool:
        name = self.path.name
        return name.startswith(("test_", "conftest")) or "/tests/" in f"/{self.rel_path}"

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile | None":
        """Parse ``path``; returns None for unparseable files (reported
        separately by the analyzer as a hard error)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(
            path=path,
            rel_path=rel,
            source=source,
            tree=tree,
            suppressions=Suppressions.parse(source),
        )


_SKIP_DIR_NAMES = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
}


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, skipping
    caches, VCS internals, and packaging artefacts (``*.egg-info``)."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIR_NAMES:
                continue
            if any(part.endswith(".egg-info") for part in candidate.parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class AnalysisError(Exception):
    """Raised when a target cannot be analysed at all (missing path,
    syntax error) — distinct from rule violations."""


@dataclass(slots=True)
class AnalysisReport:
    """The outcome of one analyzer run."""

    violations: list[Violation]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render_text(self) -> str:
        lines = [violation.render() for violation in self.violations]
        summary = (
            f"repro-check: {len(self.violations)} violation(s) in "
            f"{self.files_checked} file(s) [{', '.join(self.rules_run)}]"
        )
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "violations": [v.as_dict() for v in self.violations],
                "files_checked": self.files_checked,
                "rules": list(self.rules_run),
                "ok": self.ok,
            },
            indent=2,
        )


class Analyzer:
    """Runs a set of rules over a set of files."""

    def __init__(self, rules: Sequence["RuleProtocol"]) -> None:
        if not rules:
            raise ValueError("at least one rule is required")
        self.rules = list(rules)

    def check_paths(self, paths: Sequence[Path], root: Path | None = None) -> AnalysisReport:
        """Analyse files/directories rooted at ``root`` (defaults to the
        common parent used for relative-path reporting)."""
        resolved = [Path(p) for p in paths]
        for path in resolved:
            if not path.exists():
                raise AnalysisError(f"no such file or directory: {path}")
        base = root if root is not None else _common_root(resolved)
        files: list[SourceFile] = []
        for file_path in iter_python_files(resolved):
            try:
                loaded = SourceFile.load(file_path, base)
            except SyntaxError as exc:
                raise AnalysisError(f"cannot parse {file_path}: {exc}") from exc
            if loaded is not None:
                files.append(loaded)
        return self.check_files(files)

    def check_files(self, files: Sequence[SourceFile]) -> AnalysisReport:
        violations: list[Violation] = []
        for source in files:
            for rule in self.rules:
                if not rule.applies_to(source):
                    continue
                for violation in rule.check(source):
                    if source.suppressions.is_suppressed(violation.rule_id, violation.line):
                        continue
                    violations.append(violation)
        violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
        return AnalysisReport(
            violations=violations,
            files_checked=len(files),
            rules_run=tuple(rule.rule_id for rule in self.rules),
        )

    def check_source(self, source: str, rel_path: str = "<snippet>.py") -> list[Violation]:
        """Analyse an in-memory snippet — the fixture-test entry point."""
        tree = ast.parse(source)
        file = SourceFile(
            path=Path(rel_path),
            rel_path=rel_path,
            source=source,
            tree=tree,
            suppressions=Suppressions.parse(source),
        )
        report = self.check_files([file])
        return report.violations


def _common_root(paths: Iterable[Path]) -> Path:
    resolved = [p.resolve() for p in paths]
    if not resolved:
        return Path.cwd()
    common = resolved[0] if resolved[0].is_dir() else resolved[0].parent
    for path in resolved[1:]:
        candidate = path if path.is_dir() else path.parent
        while common not in (candidate, *candidate.parents):
            if common.parent == common:
                break
            common = common.parent
    return common


class RuleProtocol:
    """Structural interface every rule implements (kept as a plain base
    class so the engine has zero typing-time dependencies)."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, source: SourceFile) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def check(self, source: SourceFile) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError


def main_stream() -> "object":
    """Default output stream (separated for test capture)."""
    return sys.stdout
