"""Fixpoint dataflow over the project graph: summaries and taint.

The interprocedural rules share one machinery:

1. every function's IR (:class:`repro.analysis.graph.FunctionFacts`) is
   *evaluated* under a :class:`TaintPolicy` that decides which terms are
   sources, which calls sanitise, and how combinators propagate;
2. each function gets a :class:`Summary` — does it *return* tainted
   data, which parameters *flow through* to its return value, and which
   parameters *reach a sink* inside it (directly or through further
   calls);
3. summaries are iterated to a fixpoint over the whole
   :class:`~repro.analysis.graph.ProjectGraph`, so taint tracks through
   arbitrarily many call hops and through class attributes
   (``self.x = tainted`` in one method, read in another);
4. a final reporting pass re-evaluates each function against the
   converged table and emits :class:`SinkHit` records.

Taint values are ``str | None``: ``None`` is clean, a string is the
human-readable *reason* ("wall-clock read 'time.time()'") threaded all
the way into the finding message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .graph import (
    AssignEv,
    AttrOf,
    CallT,
    Combine,
    Const,
    FunctionFacts,
    IterOf,
    ModuleFacts,
    NameRef,
    ProjectGraph,
    ReturnEv,
    StoreEv,
    Term,
)

_MAX_FIXPOINT_ROUNDS = 32


# ---------------------------------------------------------------------------
# policy surface
# ---------------------------------------------------------------------------


class TaintPolicy:
    """What a specific pass considers a source, a sink, and a sanitiser.

    The base class is maximally conservative-clean: nothing is a source,
    nothing is a sink, taint propagates through any combinator that
    carries a tainted part.  Passes override the hooks they care about.
    """

    #: callee names whose result is always clean regardless of arguments.
    sanitizers: frozenset[str] = frozenset()
    #: ``Combine`` ops that *kill* taint (e.g. comparisons yield bools).
    killing_ops: frozenset[str] = frozenset()

    def call_source(self, call: CallT, module: ModuleFacts) -> str | None:
        """Reason string if this call introduces taint, else ``None``."""
        return None

    def attr_source(
        self, term: AttrOf, fn: FunctionFacts, module: ModuleFacts
    ) -> str | None:
        """Reason string if reading this attribute introduces taint."""
        return None

    def iter_source(self, term: IterOf, module: ModuleFacts) -> str | None:
        """Reason string if iterating this value introduces taint."""
        return None

    def call_sink(self, call: CallT, module: ModuleFacts) -> str | None:
        """Sink description if tainted *arguments* to this call are bad."""
        return None

    def sink_args(
        self, call: CallT, module: ModuleFacts
    ) -> list[tuple[Term, str]]:
        """``(argument term, sink description)`` pairs to check at this
        call.  The default checks every argument when :meth:`call_sink`
        marks the call; override for keyword-precise sinks."""
        description = self.call_sink(call, module)
        if description is None:
            return []
        return [(arg, description) for arg in call.args]

    def store_sink(self, store: StoreEv, module: ModuleFacts) -> str | None:
        """Sink description if a tainted *value* stored here is bad."""
        return None

    def unknown_call(
        self,
        call: CallT,
        arg_reasons: list[str | None],
        receiver_reason: str | None,
    ) -> str | None:
        """Taint of a call the graph cannot resolve (builtins, stdlib)."""
        for reason in (*arg_reasons, receiver_reason):
            if reason is not None:
                return reason
        return None

    def force_clean_module(self, module: ModuleFacts) -> bool:
        """Modules whose functions are sanctioned boundaries (summaries
        forced clean, bodies never reported)."""
        return False


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Summary:
    """What callers need to know about one function."""

    returns_reason: str | None = None
    #: parameter names whose taint flows through to the return value.
    taint_through: frozenset[str] = frozenset()
    #: parameter name -> sink description it reaches inside the callee.
    param_to_sink: Mapping[str, str] = field(default_factory=dict)

    def same_as(self, other: "Summary") -> bool:
        return (
            (self.returns_reason is None) == (other.returns_reason is None)
            and self.taint_through == other.taint_through
            and set(self.param_to_sink) == set(other.param_to_sink)
        )


@dataclass(frozen=True, slots=True)
class SinkHit:
    """A tainted value reaching a sink inside one function."""

    line: int
    reason: str
    sink: str


@dataclass(slots=True)
class SummaryTable:
    """Converged whole-program state for one policy."""

    summaries: dict[str, Summary]
    #: ``(class name, attribute)`` -> reason, for cross-method taint.
    attr_taint: dict[tuple[str, str], str]
    rounds: int


@dataclass(slots=True)
class EvalResult:
    """One evaluation of one function body."""

    returns: list[tuple[int, str | None]] = field(default_factory=list)
    sink_hits: list[SinkHit] = field(default_factory=list)
    self_stores: dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# call resolution helpers
# ---------------------------------------------------------------------------


def resolve_call(
    call: CallT, fn: FunctionFacts, module: ModuleFacts, graph: ProjectGraph
) -> FunctionFacts | None:
    """Resolve a call site, using local type facts for method dispatch."""
    direct = graph.resolve_callee(call, module)
    if direct is not None:
        return direct
    callee = call.callee
    if callee.kind == "attr_call" and callee.receiver is not None:
        receiver_type = type_of_term(callee.receiver, fn, graph)
        if receiver_type is not None:
            return graph.methods.get(f"{receiver_type}.{callee.name}")
    return None


def type_of_term(
    term: Term,
    fn: FunctionFacts,
    graph: ProjectGraph,
    env: Mapping[str, str] | None = None,
) -> str | None:
    """Best-effort class name of a term, from annotations and ctor facts.

    ``env`` (see :func:`infer_local_types`) augments the extraction-time
    ``local_types`` with flow-derived bindings.  Subscripts resolve to
    the container's element class (extraction conflates them on
    purpose: ``dict[str, T]`` annotations record ``T``).
    """
    if isinstance(term, NameRef):
        if env is not None:
            resolved = env.get(term.name)
            if resolved is not None:
                return resolved
        return fn.local_types.get(term.name)
    if isinstance(term, AttrOf):
        if isinstance(term.base, NameRef) and term.base.name == "self":
            if fn.class_name is not None:
                return graph.class_attr_type(fn.class_name, term.attr)
            return None
        base_type = type_of_term(term.base, fn, graph, env)
        if base_type is not None:
            return graph.class_attr_type(base_type, term.attr)
        return None
    if isinstance(term, CallT):
        name = term.callee.name
        if name in graph.classes:
            return name
        if term.callee.kind in ("method", "attr_call"):
            receiver = term.callee.receiver
            owner: str | None = None
            if term.callee.kind == "method" and fn.class_name is not None:
                owner = fn.class_name
            elif receiver is not None:
                owner = type_of_term(receiver, fn, graph, env)
            if owner is not None:
                target = graph.methods.get(f"{owner}.{name}")
                if target is not None:
                    return target.return_type
        return None
    if isinstance(term, Combine) and term.op == "subscript" and term.parts:
        return type_of_term(term.parts[0], fn, graph, env)
    return None


def infer_local_types(fn: FunctionFacts, graph: ProjectGraph) -> dict[str, str]:
    """Flow-derived local type bindings for one function.

    Starts from the extraction-time facts (annotations, direct
    constructor calls) and folds assignment events through
    :func:`type_of_term`, so ``endpoint = self.endpoints[name]`` /
    ``health = endpoint.health`` chains resolve.  Two passes handle
    forward references within the body.
    """
    env: dict[str, str] = dict(fn.local_types)
    for _ in range(2):
        for event in fn.events:
            if isinstance(event, AssignEv) and len(event.targets) == 1:
                resolved = type_of_term(event.value, fn, graph, env)
                if resolved is not None:
                    env.setdefault(event.targets[0], resolved)
    return env


def arg_param_pairs(
    call: CallT, callee: FunctionFacts
) -> Iterator[tuple[Term, str | None]]:
    """Pair each call argument with the callee parameter it binds to."""
    params = list(callee.params)
    if params and params[0] in ("self", "cls") and call.callee.kind in (
        "method",
        "attr_call",
    ):
        params = params[1:]
    positional = len(call.args) - len(call.keywords)
    for index, arg in enumerate(call.args):
        if index < positional:
            yield arg, params[index] if index < len(params) else None
        else:
            keyword = call.keywords[index - positional]
            yield arg, keyword if keyword in params else None


# ---------------------------------------------------------------------------
# the evaluator
# ---------------------------------------------------------------------------


class _Evaluator:
    """Interprets one function's events under a policy + summary table."""

    def __init__(
        self,
        fn: FunctionFacts,
        module: ModuleFacts,
        graph: ProjectGraph,
        policy: TaintPolicy,
        summaries: Mapping[str, Summary],
        attr_taint: Mapping[tuple[str, str], str],
        tainted_params: frozenset[str] = frozenset(),
        sources_enabled: bool = True,
    ) -> None:
        self.fn = fn
        self.module = module
        self.graph = graph
        self.policy = policy
        self.summaries = summaries
        self.attr_taint = attr_taint
        self.sources_enabled = sources_enabled
        self.env: dict[str, str | None] = {
            p: f"parameter '{p}'" for p in tainted_params
        }
        self.result = EvalResult()
        self._reported: set[tuple[int, str]] = set()

    def run(self) -> EvalResult:
        # Two passes give loop-carried assignments a chance to converge
        # (the abstract state is tiny, one reason per name).
        for _ in range(2):
            before = dict(self.env)
            self._pass()
            if self.env == before:
                break
        return self.result

    def _pass(self) -> None:
        self.result.returns.clear()
        self.result.sink_hits.clear()
        self._reported.clear()
        for event in self.fn.events:
            if isinstance(event, AssignEv):
                reason = self.eval(event.value)
                for name in event.targets:
                    self.env[name] = reason
            elif isinstance(event, ReturnEv):
                self.result.returns.append((event.line, self.eval(event.value)))
            elif isinstance(event, StoreEv):
                value_reason = self.eval(event.value) if event.value is not None else None
                if (
                    isinstance(event.owner, NameRef)
                    and event.owner.name == "self"
                    and value_reason is not None
                ):
                    self.result.self_stores.setdefault(event.attr, value_reason)
                sink = self.policy.store_sink(event, self.module)
                if sink is not None and value_reason is not None:
                    self._hit(event.line, value_reason, sink)
        # Sink checks on every call site (including nested call terms).
        for call in self.fn.calls:
            self._check_call_sinks(call)

    def _hit(self, line: int, reason: str, sink: str) -> None:
        key = (line, sink)
        if key not in self._reported:
            self._reported.add(key)
            self.result.sink_hits.append(SinkHit(line=line, reason=reason, sink=sink))

    def _check_call_sinks(self, call: CallT) -> None:
        for arg, sink in self.policy.sink_args(call, self.module):
            reason = self.eval(arg)
            if reason is not None:
                self._hit(call.line, reason, sink)
                break
        callee = resolve_call(call, self.fn, self.module, self.graph)
        if callee is not None:
            summary = self.summaries.get(callee.qualname)
            if summary is not None and summary.param_to_sink:
                for arg, param in arg_param_pairs(call, callee):
                    if param is None:
                        continue
                    chained = summary.param_to_sink.get(param)
                    if chained is None:
                        continue
                    reason = self.eval(arg)
                    if reason is not None:
                        self._hit(
                            call.line,
                            reason,
                            f"{chained} (via {callee.name}())",
                        )

    # -- term evaluation --------------------------------------------------

    def eval(self, term: Term) -> str | None:
        if isinstance(term, Const):
            return None
        if isinstance(term, NameRef):
            return self.env.get(term.name)
        if isinstance(term, AttrOf):
            return self._eval_attr(term)
        if isinstance(term, CallT):
            return self._eval_call(term)
        if isinstance(term, Combine):
            if term.op in self.policy.killing_ops:
                for part in term.parts:
                    self.eval(part)  # still visit for nested sinks/assigns
                return None
            for part in term.parts:
                reason = self.eval(part)
                if reason is not None:
                    return reason
            return None
        if isinstance(term, IterOf):
            if self.sources_enabled:
                source = self.policy.iter_source(term, self.module)
                if source is not None:
                    return source
            return self.eval(term.base)
        return None

    def _eval_attr(self, term: AttrOf) -> str | None:
        if self.sources_enabled:
            source = self.policy.attr_source(term, self.fn, self.module)
            if source is not None:
                return source
        if isinstance(term.base, NameRef):
            if term.base.name == "self" and self.fn.class_name is not None:
                return self.attr_taint.get((self.fn.class_name, term.attr))
            base_type = type_of_term(term.base, self.fn, self.graph)
            if base_type is not None:
                tainted = self.attr_taint.get((base_type, term.attr))
                if tainted is not None:
                    return tainted
        return self.eval(term.base)

    def _eval_call(self, call: CallT) -> str | None:
        if self.sources_enabled:
            source = self.policy.call_source(call, self.module)
            if source is not None:
                return source
        if call.callee.name in self.policy.sanitizers:
            for arg in call.args:
                self.eval(arg)
            return None
        callee = resolve_call(call, self.fn, self.module, self.graph)
        if callee is not None:
            summary = self.summaries.get(callee.qualname)
            if summary is not None:
                if summary.returns_reason is not None:
                    return f"{summary.returns_reason} (via {callee.name}())"
                for arg, param in arg_param_pairs(call, callee):
                    if param is not None and param in summary.taint_through:
                        reason = self.eval(arg)
                        if reason is not None:
                            return reason
                return None
        arg_reasons = [self.eval(arg) for arg in call.args]
        receiver_reason = (
            self.eval(call.callee.receiver) if call.callee.receiver is not None else None
        )
        return self.policy.unknown_call(call, arg_reasons, receiver_reason)


# ---------------------------------------------------------------------------
# fixpoint driver
# ---------------------------------------------------------------------------


def _evaluate(
    fn: FunctionFacts,
    module: ModuleFacts,
    graph: ProjectGraph,
    policy: TaintPolicy,
    summaries: Mapping[str, Summary],
    attr_taint: Mapping[tuple[str, str], str],
    tainted_params: frozenset[str] = frozenset(),
    sources_enabled: bool = True,
) -> EvalResult:
    return _Evaluator(
        fn,
        module,
        graph,
        policy,
        summaries,
        attr_taint,
        tainted_params=tainted_params,
        sources_enabled=sources_enabled,
    ).run()


def _compute_summary(
    fn: FunctionFacts,
    module: ModuleFacts,
    graph: ProjectGraph,
    policy: TaintPolicy,
    summaries: Mapping[str, Summary],
    attr_taint: Mapping[tuple[str, str], str],
) -> tuple[Summary, dict[str, str]]:
    base = _evaluate(fn, module, graph, policy, summaries, attr_taint)
    returns_reason = next(
        (reason for _, reason in base.returns if reason is not None), None
    )
    taint_through: set[str] = set()
    param_to_sink: dict[str, str] = {}
    for param in fn.params:
        if param in ("self", "cls"):
            continue
        probe = _evaluate(
            fn,
            module,
            graph,
            policy,
            summaries,
            attr_taint,
            tainted_params=frozenset({param}),
            sources_enabled=False,
        )
        if any(reason is not None for _, reason in probe.returns):
            taint_through.add(param)
        if probe.sink_hits:
            param_to_sink[param] = probe.sink_hits[0].sink
    return (
        Summary(
            returns_reason=returns_reason,
            taint_through=frozenset(taint_through),
            param_to_sink=param_to_sink,
        ),
        base.self_stores,
    )


def compute_summaries(graph: ProjectGraph, policy: TaintPolicy) -> SummaryTable:
    """Iterate function summaries + class-attribute taint to a fixpoint."""
    summaries: dict[str, Summary] = {}
    attr_taint: dict[tuple[str, str], str] = {}
    clean = Summary()
    rounds = 0
    for rounds in range(1, _MAX_FIXPOINT_ROUNDS + 1):
        changed = False
        for module in graph.modules.values():
            forced = policy.force_clean_module(module)
            for fn in module.functions:
                if forced:
                    if summaries.get(fn.qualname) is None:
                        summaries[fn.qualname] = clean
                    continue
                new_summary, self_stores = _compute_summary(
                    fn, module, graph, policy, summaries, attr_taint
                )
                old = summaries.get(fn.qualname)
                if old is None or not old.same_as(new_summary):
                    summaries[fn.qualname] = new_summary
                    changed = True
                if fn.class_name is not None:
                    for attr, reason in self_stores.items():
                        key = (fn.class_name, attr)
                        if key not in attr_taint:
                            attr_taint[key] = reason
                            changed = True
        if not changed:
            break
    return SummaryTable(summaries=summaries, attr_taint=attr_taint, rounds=rounds)


def report_sinks(
    graph: ProjectGraph, policy: TaintPolicy, table: SummaryTable
) -> Iterator[tuple[ModuleFacts, FunctionFacts, SinkHit]]:
    """Final pass: every tainted-value-reaches-sink occurrence."""
    for module in graph.modules.values():
        if module.is_test or policy.force_clean_module(module):
            continue
        for fn in module.functions:
            result = _evaluate(
                fn, module, graph, policy, table.summaries, table.attr_taint
            )
            for hit in result.sink_hits:
                yield module, fn, hit


def evaluate_returns(
    fn: FunctionFacts,
    module: ModuleFacts,
    graph: ProjectGraph,
    policy: TaintPolicy,
    table: SummaryTable,
) -> list[tuple[int, str | None]]:
    """Per-return taint for one function under the converged table."""
    result = _evaluate(fn, module, graph, policy, table.summaries, table.attr_taint)
    return result.returns
