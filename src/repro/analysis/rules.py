"""The seventeen domain rules enforced by ``repro-check``.

Each rule encodes one invariant from the paper that Python's type system
cannot express on its own (see ``docs/static_analysis.md`` for the
paper-section mapping):

========  ======================  =====================================================
Rule id   Name                    Invariant
========  ======================  =====================================================
R1        interval-comparison     Interval endpoints are ranked via the Eq. 4-6
                                  comparators, never by raw ``.lo``/``.hi`` floats
R2        metric-consistency      Haversine and planar metrics never mix in one module
                                  without an explicit :class:`LocalProjection` bridge
R3        dataclass-slots         Hot-path dataclasses declare ``slots=True``
R4        mutable-default         No mutable default arguments
R5        cache-expiry            Cache writes always carry an expiry/validity signal
R6        exception-hygiene       No bare/silently-swallowed exceptions in serving and
                                  experiment code
R7        resilience-bypass       Server-tier code reaches external APIs only through
                                  the resilience gateway, never directly
R8        engine-bypass           Ranking hot loops (``core/``, ``estimation/``) run
                                  shortest paths only through the shared
                                  :class:`DistanceEngine`, never raw ``dijkstra*``
R9        journal-bypass          Server-tier code mutates durable session state only
                                  through :class:`SessionManager` transactions, never
                                  by touching caches or run lists directly
R10       clock-bypass            Time is read only through the injected
                                  :class:`~repro.observability.clock.Clock`; raw
                                  ``time.time()``/``perf_counter()`` calls live only
                                  inside ``observability/``
R11       determinism-taint       Values derived from clocks, unseeded RNGs, ``id()``,
                                  or set-iteration order never reach journals,
                                  snapshots, trace ids, or Offering Tables
                                  (whole-program taint, `passes/determinism.py`)
R12       interval-escape         Raw ``.lo``/``.hi`` floats never cross a public
                                  function boundary out of ``intervals``/``core``
                                  (whole-program, `passes/interval_escape.py`)
R13       shared-state-mutation   Shared caches/registries mutate only through their
                                  owning module's transactional APIs
                                  (whole-program, `passes/shared_state.py`)
R14       layer-conformance       Module-scope imports follow the architecture layer
                                  DAG — no upward imports
                                  (whole-program, `passes/layering.py`)
R15       backpressure-bypass     The serving tier admits load only through bounded
                                  queues and never blocks without a timeout
R16       epoch-bypass            Engine and dynamic-cache reads in ``core/`` and
                                  ``server/`` flow through the epoch-fenced API —
                                  no reach-ins past ``_observe_epoch`` /
                                  ``observe_epoch``
R17       label-cardinality-bypass  Metric labels outside ``observability/`` are
                                  bounded enumerations or registry-guarded — no
                                  user-derived/interpolated label values
========  ======================  =====================================================

R1-R10 and R15-R17 are per-file AST rules defined below; R11-R14 are
whole-program passes over the project graph, defined in
:mod:`repro.analysis.passes` and registered here so selection,
suppression, listing, and docs treat all seventeen uniformly.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .engine import RuleProtocol, SourceFile, Violation

# --------------------------------------------------------------------------
# R1 — interval endpoint comparisons
# --------------------------------------------------------------------------

#: Files allowed to compare endpoints directly: the interval
#: implementations themselves (they *define* the comparators) — the
#: scalar dataclass and its structure-of-arrays mirror.
_R1_ALLOWED_SUFFIXES = ("intervals.py", "interval_array.py")

_RELATIONAL_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _is_endpoint(node: ast.expr) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in ("lo", "hi")


class IntervalComparisonRule(RuleProtocol):
    """R1: no raw relational comparison against ``Interval.lo`` / ``.hi``.

    The paper's ranking semantics (Eq. 4-6) are defined on whole
    intervals; ad-hoc endpoint comparisons are where dominance bugs creep
    in during refactors.  Code must use the named comparators
    (``certainly_less_than``, ``intersects``, ``within_bounds``,
    ``is_strictly_positive``, ...) which live next to their proofs in
    ``intervals.py``.
    """

    rule_id = "R1"
    name = "interval-comparison"
    description = "raw float comparison against Interval.lo/.hi endpoints"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        return not source.rel_path.endswith(_R1_ALLOWED_SUFFIXES)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            if not any(_is_endpoint(op) for op in operands):
                continue
            if not any(isinstance(op, _RELATIONAL_OPS) for op in node.ops):
                continue
            endpoint = next(op for op in operands if _is_endpoint(op))
            yield Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    f"relational comparison against interval endpoint "
                    f"'.{endpoint.attr}' — use the Interval comparators "
                    f"(certainly_less_than / intersects / within_bounds / "
                    f"is_strictly_positive) instead"
                ),
            )


# --------------------------------------------------------------------------
# R2 — metric consistency
# --------------------------------------------------------------------------

#: Calls that unambiguously operate in geographic (lat/lon) space.
_GEO_MARKERS = {"haversine_km", "GeoPoint"}
#: Calls that unambiguously operate in the planar km system.
_PLANAR_MARKERS = {
    "squared_distance_to",
    "manhattan_distance_to",
    "chebyshev_distance_to",
    "distance_to_point",
    "polyline_length",
    "hypot",
}
#: The sanctioned conversion layer: a module that projects explicitly may
#: hold both coordinate systems.
_BRIDGE_MARKERS = {"LocalProjection", "to_plane", "to_geo"}

#: The module that defines both metrics (and the bridge).
_R2_ALLOWED_SUFFIXES = ("spatial/geometry.py",)


def _call_names(tree: ast.AST) -> Iterator[tuple[str, int]]:
    """(name, line) of every called function/method/constructor."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            yield func.id, node.lineno
        elif isinstance(func, ast.Attribute):
            yield func.attr, node.lineno


class MetricConsistencyRule(RuleProtocol):
    """R2: haversine and planar distance calls must not mix in a module.

    A module works either in the planar km system of the synthetic
    networks or in geographic lat/lon — mixing them silently (e.g. feeding
    degrees into a planar index) is the classic units bug of spatial
    stacks.  Crossing between the systems is allowed only through the
    explicit :class:`LocalProjection` bridge.
    """

    rule_id = "R2"
    name = "metric-consistency"
    description = "haversine and planar metrics mixed without a projection bridge"

    def applies_to(self, source: SourceFile) -> bool:
        return not source.rel_path.endswith(_R2_ALLOWED_SUFFIXES)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        geo: list[tuple[str, int]] = []
        planar: list[tuple[str, int]] = []
        bridged = False
        for name, line in _call_names(source.tree):
            if name in _GEO_MARKERS:
                geo.append((name, line))
            elif name in _PLANAR_MARKERS:
                planar.append((name, line))
            if name in _BRIDGE_MARKERS:
                bridged = True
        if geo and planar and not bridged:
            geo_name, geo_line = geo[0]
            planar_name, planar_line = planar[0]
            yield Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=min(geo_line, planar_line),
                message=(
                    f"module mixes geographic metric ({geo_name}, line {geo_line}) "
                    f"with planar metric ({planar_name}, line {planar_line}) "
                    f"without a LocalProjection bridge"
                ),
            )


# --------------------------------------------------------------------------
# R3 — dataclass slots in hot-path packages
# --------------------------------------------------------------------------

#: Packages whose dataclasses sit on the per-segment hot path — millions
#: of Interval / ComponentScores / candidate instances per experiment run.
_R3_PACKAGES = ("core/", "spatial/", "estimation/")


def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | None:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _has_true_keyword(call: ast.expr, keyword: str) -> bool:
    if not isinstance(call, ast.Call):
        return False
    for kw in call.keywords:
        if kw.arg == keyword and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


class DataclassSlotsRule(RuleProtocol):
    """R3: every ``@dataclass`` in ``core/``, ``spatial/``,
    ``estimation/`` declares ``slots=True``.

    These packages allocate candidate/score objects per charger per
    segment; ``__dict__``-backed instances cost ~3x the memory and a dict
    lookup per attribute access on the scoring hot path.
    """

    rule_id = "R3"
    name = "dataclass-slots"
    description = "hot-path dataclass missing slots=True"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        return any(f"/{pkg}" in f"/{source.rel_path}" for pkg in _R3_PACKAGES)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if _has_true_keyword(decorator, "slots"):
                continue
            yield Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    f"dataclass '{node.name}' in a hot-path package must declare "
                    f"slots=True"
                ),
            )


# --------------------------------------------------------------------------
# R4 — mutable default arguments
# --------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultRule(RuleProtocol):
    """R4: no mutable default arguments, anywhere.

    A shared-by-all-calls default list/dict is state leaking across
    queries — in a server that means across *users*.
    """

    rule_id = "R4"
    name = "mutable-default"
    description = "mutable default argument"

    def applies_to(self, source: SourceFile) -> bool:
        return True

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in (*args.defaults, *args.kw_defaults):
                if default is not None and _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield Violation(
                        rule_id=self.rule_id,
                        path=source.rel_path,
                        line=default.lineno,
                        message=(
                            f"mutable default argument in '{label}' — use None or "
                            f"field(default_factory=...)"
                        ),
                    )


# --------------------------------------------------------------------------
# R5 — cache writes must carry validity
# --------------------------------------------------------------------------

#: The cache modules of Section IV-C (client solution cache + server EIS
#: response cache), plus anything that looks like a new cache module.
_R5_SUFFIXES = ("core/caching.py", "server/cache.py")
_R5_BASENAMES = ("cache.py", "caching.py")

_WRITE_METHOD_NAMES = {"store", "put", "set", "add", "insert"}
_TEMPORAL_NAMES = {
    "now_h",
    "ttl_h",
    "time_h",
    "timestamp_h",
    "generated_at_h",
    "expires_at_h",
    "valid_until_h",
    "validity_h",
    "expiry_h",
}
_TTL_ATTR_FRAGMENTS = ("ttl", "expiry", "valid")


def _annotation_name(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation, e.g. "CachedSolution"
        return node.value.split(".")[-1].split("|")[0].strip()
    return None


def _temporal_dataclasses(tree: ast.Module) -> set[str]:
    """Names of module-level classes that carry a temporal field — a value
    annotated with one of those classes brings its own validity."""
    names: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id in _TEMPORAL_NAMES
            ):
                names.add(node.name)
                break
    return names


class CacheExpiryRule(RuleProtocol):
    """R5: cache-write sites must pass an expiry/validity argument.

    Section IV-C makes reuse conditional on range ``Q`` *and* temporal
    validity ``t`` — an entry written without a validity signal can never
    expire, which under production traffic is an unbounded-staleness (and
    unbounded-memory) bug.  A write method satisfies the rule when it
    takes a temporal parameter (``now_h``, ``ttl_h``, ...) or a value
    whose class carries a temporal field (e.g. ``CachedSolution`` with its
    ``generated_at_h``), and its cache class binds a TTL in ``__init__``.
    """

    rule_id = "R5"
    name = "cache-expiry"
    description = "cache write without expiry/validity argument"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        return source.rel_path.endswith(_R5_SUFFIXES) or source.path.name in _R5_BASENAMES

    def check(self, source: SourceFile) -> Iterator[Violation]:
        temporal_classes = _temporal_dataclasses(source.tree)
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef) or "Cache" not in node.name:
                continue
            yield from self._check_cache_class(source, node, temporal_classes)

    def _check_cache_class(
        self, source: SourceFile, cls: ast.ClassDef, temporal_classes: set[str]
    ) -> Iterator[Violation]:
        write_methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in _WRITE_METHOD_NAMES
        ]
        if not write_methods:
            return
        if not self._binds_ttl(cls):
            yield Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=cls.lineno,
                message=(
                    f"cache class '{cls.name}' has write methods but never binds a "
                    f"TTL/validity attribute in __init__"
                ),
            )
        for method in write_methods:
            if self._method_carries_validity(method, temporal_classes):
                continue
            yield Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=method.lineno,
                message=(
                    f"cache write '{cls.name}.{method.name}' takes no "
                    f"expiry/validity argument (expected one of "
                    f"{sorted(_TEMPORAL_NAMES)[:3]}... or a value type with a "
                    f"temporal field)"
                ),
            )

    @staticmethod
    def _binds_ttl(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == "__init__":
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Store)
                        and any(frag in node.attr.lower() for frag in _TTL_ATTR_FRAGMENTS)
                    ):
                        return True
        return False

    @staticmethod
    def _method_carries_validity(
        method: ast.FunctionDef | ast.AsyncFunctionDef, temporal_classes: set[str]
    ) -> bool:
        params = [*method.args.posonlyargs, *method.args.args, *method.args.kwonlyargs]
        for param in params:
            if param.arg == "self":
                continue
            if param.arg in _TEMPORAL_NAMES:
                return True
            annotated = _annotation_name(param.annotation)
            if annotated is not None and annotated in temporal_classes:
                return True
        return False


# --------------------------------------------------------------------------
# R6 — exception hygiene in serving and experiment code
# --------------------------------------------------------------------------

#: Packages where a swallowed exception silently corrupts results: the
#: serving layer (wrong answers to users) and the experiment harness
#: (wrong numbers in the paper-reproduction tables).
_R6_PACKAGES = ("server/", "experiments/")

_SWALLOW_BODY_TYPES = (ast.Pass, ast.Continue)


def _is_swallowing_body(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, _SWALLOW_BODY_TYPES):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


class ExceptionHygieneRule(RuleProtocol):
    """R6: no bare ``except:`` and no silently-swallowed exceptions in
    ``server/`` and ``experiments/``.

    A handler must either re-raise, return/record a value, or log —
    a body of only ``pass``/``continue`` hides failures inside the
    serving path or the experiment numbers.
    """

    rule_id = "R6"
    name = "exception-hygiene"
    description = "bare except or silently swallowed exception"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        return any(f"/{pkg}" in f"/{source.rel_path}" for pkg in _R6_PACKAGES)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=node.lineno,
                    message="bare 'except:' — catch a specific exception type",
                )
                continue
            if _is_swallowing_body(node.body):
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=node.lineno,
                    message=(
                        "exception handler silently swallows the error — re-raise, "
                        "record, or log it"
                    ),
                )


# --------------------------------------------------------------------------
# R7 — server tier must not bypass the resilience gateway
# --------------------------------------------------------------------------

#: The tier whose upstream access must ride the degradation ladder.
_R7_PACKAGES = ("server/",)
#: The definitions module itself (it *is* the raw API layer) is exempt.
_R7_ALLOWED_SUFFIXES = ("server/api.py",)

#: Raw provider client constructors — only the gateway factory may build
#: them (``ResilienceGateway.build`` wraps each in a fault injector, a
#: retry policy, and a circuit breaker before anything can call it).
_RAW_API_CONSTRUCTORS = {"WeatherApi", "BusyTimesApi", "TrafficApi", "ChargerCatalogApi"}
#: Provider entry points, flagged when invoked on a raw ``*_api`` client.
_RAW_API_METHODS = {"forecast", "window_forecast", "availability", "model_snapshot", "nearby"}


def _receiver_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ResilienceBypassRule(RuleProtocol):
    """R7: server-tier code reaches providers only through the gateway.

    A direct ``WeatherApi(...)`` construction or an ``xyz_api.forecast``
    call in ``server/`` skips retry, breaker, health accounting, and the
    serve-stale/fallback ladder — one such call path is enough to turn a
    provider outage back into a user-facing failure.  The raw clients are
    built exactly once, inside :meth:`ResilienceGateway.build`.
    """

    rule_id = "R7"
    name = "resilience-bypass"
    description = "direct external-API access bypassing the resilience gateway"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        if source.rel_path.endswith(_R7_ALLOWED_SUFFIXES):
            return False
        return any(f"/{pkg}" in f"/{source.rel_path}" for pkg in _R7_PACKAGES)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if called in _RAW_API_CONSTRUCTORS:
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=node.lineno,
                    message=(
                        f"raw provider client '{called}' constructed in the server "
                        f"tier — build it through ResilienceGateway.build so calls "
                        f"get retry/breaker/degradation handling"
                    ),
                )
            elif (
                isinstance(func, ast.Attribute)
                and called in _RAW_API_METHODS
                and (_receiver_name(func.value) or "").endswith("_api")
            ):
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=node.lineno,
                    message=(
                        f"direct provider call '.{called}()' on a raw API client — "
                        f"route it through the ResilienceGateway ladder instead"
                    ),
                )


# --------------------------------------------------------------------------
# R8 — ranking hot loops must use the shared distance engine
# --------------------------------------------------------------------------

#: Packages whose shortest-path queries sit on the per-segment hot path —
#: every call here runs once per segment per query mode per evaluation rep.
_R8_PACKAGES = ("core/", "estimation/")

#: Raw search entry points that bypass the engine's memoisation and its
#: backend switch.  Point-to-point helpers (``dijkstra``, ``astar``, ...)
#: are deliberately excluded: they answer one-off path reconstructions, not
#: the batch pricing loops the engine exists for.
_RAW_SEARCH_FUNCTIONS = {
    "dijkstra_all",
    "dijkstra_all_backward",
    "dijkstra_to_targets",
}


class EngineBypassRule(RuleProtocol):
    """R8: no direct batch ``dijkstra_*`` calls in ``core/`` or
    ``estimation/`` — hot loops must go through the DistanceEngine.

    A raw ``dijkstra_all`` in the pricing path recomputes a ball the
    engine already holds, ignores the backend flag (the CH speedup
    silently evaporates), and its un-quantised distances break the
    bit-equality contract between backends.  The engine facade
    (:class:`repro.network.distance_engine.DistanceEngine`) is the single
    sanctioned entry point for pool pricing.
    """

    rule_id = "R8"
    name = "engine-bypass"
    description = "raw dijkstra_* call in a ranking hot loop (use DistanceEngine)"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        return any(f"/{pkg}" in f"/{source.rel_path}" for pkg in _R8_PACKAGES)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if called in _RAW_SEARCH_FUNCTIONS:
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=node.lineno,
                    message=(
                        f"raw '{called}' call in a ranking hot loop — route it "
                        f"through the shared DistanceEngine (one_to_many / "
                        f"many_to_one) so results are cached, quantised, and "
                        f"backend-switchable"
                    ),
                )


# --------------------------------------------------------------------------
# R9 — server tier must not mutate session state outside the journal
# --------------------------------------------------------------------------

#: The tier whose durable-session mutations must ride the journal.
_R9_PACKAGES = ("server/",)
#: The EIS response cache is its own (non-session) cache layer.
_R9_ALLOWED_SUFFIXES = ("server/cache.py",)

#: Per-trip session state containers — only the core ranker (inside a
#: SessionManager transaction) may build one.
_SESSION_STATE_CONSTRUCTORS = {"DynamicCache"}
#: Cache checkpoint/restore entry points: the durability tier's rollback
#: primitives, never a serving-layer affordance.
_SESSION_STATE_METHODS = {"checkpoint_state", "restore_state"}
#: RankingRun accumulators that the journal must witness every write to.
_RUN_STATE_ATTRS = {"tables", "failed_segments"}


class JournalBypassRule(RuleProtocol):
    """R9: server-tier code mutates session state only through
    :class:`~repro.durability.SessionManager` transactions.

    The recovery guarantee — a resumed session reproduces the remaining
    rankings bitwise — holds only if the journal witnesses *every*
    session-state mutation.  A ``DynamicCache`` built in ``server/``, a
    direct ``checkpoint_state``/``restore_state`` call, or an append to a
    run's ``tables``/``failed_segments`` from the serving layer creates
    state the journal never saw: after a crash it is silently gone, and
    replay diverges.  The sanctioned path is
    ``DurableSessionService`` → ``SessionManager`` → session hooks.
    """

    rule_id = "R9"
    name = "journal-bypass"
    description = "server-tier session-state mutation outside a SessionManager transaction"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        if source.rel_path.endswith(_R9_ALLOWED_SUFFIXES):
            return False
        return any(f"/{pkg}" in f"/{source.rel_path}" for pkg in _R9_PACKAGES)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if called in _SESSION_STATE_CONSTRUCTORS:
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=node.lineno,
                    message=(
                        f"session-state container '{called}' constructed in the "
                        f"server tier — sessions own their cache; open one through "
                        f"SessionManager so every mutation is journaled"
                    ),
                )
            elif isinstance(func, ast.Attribute) and called in _SESSION_STATE_METHODS:
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=node.lineno,
                    message=(
                        f"direct '.{called}()' call in the server tier — cache "
                        f"checkpoint/rollback is a durability-tier transaction "
                        f"primitive, not a serving-layer affordance"
                    ),
                )
            elif (
                isinstance(func, ast.Attribute)
                and called == "append"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in _RUN_STATE_ATTRS
            ):
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=node.lineno,
                    message=(
                        f"append to '.{func.value.attr}' in the server tier — run "
                        f"state grows only inside SessionManager transactions, or "
                        f"the journal misses it and replay diverges after a crash"
                    ),
                )


# --------------------------------------------------------------------------
# R10 — raw clock reads outside the observability tier
# --------------------------------------------------------------------------

#: The only package allowed to call ``time.*`` directly: it implements
#: the real :class:`~repro.observability.clock.Clock`.
_R10_ALLOWED_PACKAGES = ("observability/",)

#: Wall/monotonic readers whose raw use breaks clock injection.  Sleeping
#: or formatting helpers (``sleep``, ``strftime``) are not clock *reads*
#: and stay allowed.
_R10_CLOCK_READERS = frozenset(
    {"time", "perf_counter", "monotonic", "time_ns", "perf_counter_ns", "monotonic_ns"}
)


class ClockBypassRule(RuleProtocol):
    """R10: time is read only through the injected ``Clock``.

    The durability tier guarantees bitwise replay and the fault injector
    crashes at deterministic points; a raw ``time.time()`` or
    ``perf_counter()`` read anywhere in the serving or experiment stack
    makes traces, bench histories, and journaled artefacts depend on the
    wall clock of one particular run.  Injecting
    :class:`~repro.observability.clock.Clock` (real in production,
    simulated in tests and replay) keeps every timed artefact a
    deterministic function of the workload.
    """

    rule_id = "R10"
    name = "clock-bypass"
    description = "raw time.time()/perf_counter() read outside the observability tier"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        return not any(
            f"/{pkg}" in f"/{source.rel_path}" for pkg in _R10_ALLOWED_PACKAGES
        )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        module_aliases: set[str] = set()
        imported_readers: dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        module_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _R10_CLOCK_READERS:
                        imported_readers[alias.asname or alias.name] = alias.name
        if not module_aliases and not imported_readers:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _R10_CLOCK_READERS
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
            ):
                read = f"{func.value.id}.{func.attr}()"
            elif isinstance(func, ast.Name) and func.id in imported_readers:
                read = f"{func.id}()"
            else:
                continue
            yield Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    f"raw clock read '{read}' — inject a "
                    f"repro.observability.Clock (SYSTEM_CLOCK in production, "
                    f"SimulatedClock in tests) so timed artefacts stay "
                    f"deterministic under replay"
                ),
            )


# --------------------------------------------------------------------------
# R15 — unbounded queues / indefinite blocking in the serving tier
# --------------------------------------------------------------------------

#: The one module allowed to construct serving-tier queues: it implements
#: the bounded, shedding :class:`BoundedShardQueue` everything else uses.
_R15_QUEUE_OWNER = "server/scheduling/queueing.py"

#: Queue constructors that grow without bound unless given a size.
_R15_SIZED_QUEUES = frozenset({"Queue", "PriorityQueue", "LifoQueue"})

#: Calls that park a thread forever when given no timeout.
_R15_BLOCKING_CALLS = frozenset({"wait", "acquire", "join"})


class BackpressureBypassRule(RuleProtocol):
    """R15: the serving tier admits load only through bounded queues and
    never blocks without a timeout.

    Overload safety is a global property with local failure modes: one
    convenience ``queue.Queue()`` (unbounded by default) reintroduces
    the exact queue-growth-until-OOM behaviour the admission controller
    and :class:`BoundedShardQueue` exist to prevent, and one zero-arg
    ``.wait()``/``.acquire()``/``.join()`` creates a worker that can
    never be stopped once its wake-up signal is lost.  Queue
    construction in ``server/`` therefore lives only in the owning
    ``scheduling/queueing.py`` module, and every park in the scheduling
    package carries a timeout.  ``time.sleep`` is doubly banned here —
    it both stalls a worker unconditionally and bypasses the injected
    clock (R10).
    """

    rule_id = "R15"
    name = "backpressure-bypass"
    description = "unbounded queue or indefinite blocking call in the serving tier"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        if source.rel_path.endswith(_R15_QUEUE_OWNER):
            return False
        return "server/" in source.rel_path

    def check(self, source: SourceFile) -> Iterator[Violation]:
        in_scheduling = "server/scheduling/" in source.rel_path
        sleep_aliases = self._sleep_aliases(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if called is None:
                continue
            violation = self._queue_violation(source, node, called)
            if violation is not None:
                yield violation
                continue
            if in_scheduling:
                violation = self._blocking_violation(
                    source, node, called, sleep_aliases
                )
                if violation is not None:
                    yield violation

    @staticmethod
    def _sleep_aliases(source: SourceFile) -> set[str]:
        aliases: set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        aliases.add(alias.asname or "sleep")
        return aliases

    def _queue_violation(
        self, source: SourceFile, node: ast.Call, called: str
    ) -> Violation | None:
        if called == "SimpleQueue":
            return Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    "SimpleQueue constructed in the server tier — it cannot be "
                    "bounded; route requests through scheduling.BoundedShardQueue"
                ),
            )
        if called in _R15_SIZED_QUEUES and not self._has_bound(node, "maxsize"):
            return Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    f"unbounded {called}() in the server tier — queues here grow "
                    f"until memory does; use scheduling.BoundedShardQueue (or "
                    f"pass an explicit maxsize in the owning queueing module)"
                ),
            )
        if called == "deque" and not self._has_bound(node, "maxlen", arg_index=1):
            return Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    "unbounded deque() in the server tier — buffers on the "
                    "request path need a maxlen (or the bounded queue module)"
                ),
            )
        return None

    @staticmethod
    def _has_bound(node: ast.Call, keyword: str, arg_index: int = 0) -> bool:
        """True when the constructor received a non-zero/non-None bound."""
        candidates: list[ast.expr] = []
        if len(node.args) > arg_index:
            candidates.append(node.args[arg_index])
        for kw in node.keywords:
            if kw.arg == keyword:
                candidates.append(kw.value)
        for value in candidates:
            if isinstance(value, ast.Constant) and value.value in (0, None):
                continue
            return True
        return False

    def _blocking_violation(
        self,
        source: SourceFile,
        node: ast.Call,
        called: str,
        sleep_aliases: set[str],
    ) -> Violation | None:
        func = node.func
        is_time_sleep = (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        )
        if is_time_sleep or (isinstance(func, ast.Name) and func.id in sleep_aliases):
            return Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    "time.sleep in the scheduling tier — a sleeping worker "
                    "serves nothing and ignores the injected clock; park on a "
                    "timed queue poll instead"
                ),
            )
        if (
            isinstance(func, ast.Attribute)
            and called in _R15_BLOCKING_CALLS
            and not node.args
            and not node.keywords
        ):
            return Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    f"zero-argument '.{called}()' in the scheduling tier parks "
                    f"a worker indefinitely — pass a timeout so overload can "
                    f"never wedge the pool"
                ),
            )
        return None


# --------------------------------------------------------------------------
# R16 — epoch-fence bypass around live-graph caches
# --------------------------------------------------------------------------

#: Packages whose distance reads must be epoch-sound: the ranking core
#: and the serving tier both hold references to fenced caches.
_R16_PACKAGES = ("core/", "server/")

#: The module that owns the dynamic cache's fence (it implements
#: ``observe_epoch`` and may touch ``_entry`` on ``self``).
_R16_CACHE_OWNER = "core/caching.py"

#: Private stores inside :class:`DistanceEngine` and
#: :class:`DynamicCache` that the epoch fence invalidates.  Reading one
#: through another object's attribute skips ``_observe_epoch`` /
#: ``observe_epoch`` entirely, so a stale-epoch distance can escape.
_R16_FENCED_STORES = frozenset({"_maps", "_customized", "_pairs", "_queries", "_entry"})

#: Engine internals that sit *below* the fence: the public
#: ``one_to_many`` / ``many_to_one`` / ``many_to_many`` entry points call
#: ``_observe_epoch`` first, these do not.
_R16_UNFENCED_METHODS = frozenset(
    {"_map", "_search", "_subset", "_ch_bipartite", "_customize", "_observe_epoch"}
)


class EpochBypassRule(RuleProtocol):
    """R16: engine and dynamic-cache reads go through the epoch-fenced API.

    The live-graph guarantee — no Offering Table ever mixes distances
    from two network epochs — is enforced at exactly two choke points:
    :class:`~repro.network.distance_engine.DistanceEngine`'s public
    query methods (which call ``_observe_epoch`` before touching any
    cache) and ``DynamicCache.observe_epoch`` (which callers must invoke
    before ``lookup``).  Reaching around either one — reading a fenced
    store (``_maps``/``_pairs``/``_queries``/``_customized``/``_entry``)
    through another object, calling a below-fence engine internal, or
    looking up a solution cache in a function that never observes the
    epoch — recreates the stale-serve bug the fence exists to prevent,
    and only under live-graph churn, where it is hardest to debug.
    """

    rule_id = "R16"
    name = "epoch-bypass"
    description = "live-graph cache read that bypasses the epoch fence"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        path = f"/{source.rel_path}"
        return any(f"/{pkg}" in path for pkg in _R16_PACKAGES)

    def check(self, source: SourceFile) -> Iterator[Violation]:
        is_owner = source.rel_path.endswith(_R16_CACHE_OWNER)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute):
                violation = self._store_violation(source, node, is_owner)
                if violation is not None:
                    yield violation
            if isinstance(node, ast.FunctionDef):
                yield from self._unfenced_lookups(source, node, is_owner)

    def _store_violation(
        self, source: SourceFile, node: ast.Attribute, is_owner: bool
    ) -> Violation | None:
        attr = node.attr
        on_self = isinstance(node.value, ast.Name) and node.value.id == "self"
        if attr in _R16_FENCED_STORES and not on_self and not is_owner:
            return Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    f"direct read of fenced cache store '.{attr}' — it is "
                    f"invalidated by the epoch fence, so reaching in can "
                    f"serve distances from a retired network epoch; use the "
                    f"public engine/cache API"
                ),
            )
        if attr in _R16_UNFENCED_METHODS and not on_self:
            return Violation(
                rule_id=self.rule_id,
                path=source.rel_path,
                line=node.lineno,
                message=(
                    f"call to below-fence engine internal '.{attr}' skips "
                    f"_observe_epoch — use one_to_many / many_to_one / "
                    f"many_to_many, which fence first"
                ),
            )
        return None

    def _unfenced_lookups(
        self, source: SourceFile, func: ast.FunctionDef, is_owner: bool
    ) -> Iterator[Violation]:
        """Flag solution-cache ``lookup`` calls in functions that never
        observe the epoch.

        Scoped to ``core/`` (R9 already keeps ``DynamicCache`` out of the
        server tier, whose response cache is a different, epoch-stamped
        layer) and to receivers whose name mentions ``cache`` — the
        project-wide naming convention for solution-cache handles.
        """
        if is_owner or "core/" not in f"/{source.rel_path}":
            return
        fenced = any(
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr == "observe_epoch"
            for inner in ast.walk(func)
        )
        if fenced:
            return
        for inner in ast.walk(func):
            if not (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "lookup"
            ):
                continue
            receiver = inner.func.value
            name = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else receiver.attr if isinstance(receiver, ast.Attribute) else ""
            )
            if "cache" in name.lower():
                yield Violation(
                    rule_id=self.rule_id,
                    path=source.rel_path,
                    line=inner.lineno,
                    message=(
                        f"'{name}.lookup()' in a function that never calls "
                        f"observe_epoch — under live-graph churn the entry "
                        f"may predate the current epoch; fence with "
                        f"observe_epoch(env.weights_token()) first"
                    ),
                )


# --------------------------------------------------------------------------
# R17 — metric label cardinality
# --------------------------------------------------------------------------

#: Metric-API methods whose keyword arguments are label values.
_R17_LABEL_METHODS = frozenset({"inc", "observe", "labels", "set"})

#: Keywords on those methods that carry *values*, not labels.
_R17_VALUE_KEYWORDS = frozenset({"amount", "value", "exemplar", "buckets"})

#: Label names with a bounded, enumerable value set (outcome enums,
#: endpoint names, ladder levels, record types, engine backends, shard
#: indices, alert metadata).  A label outside this set is either guarded
#: (below) or a cardinality bomb.
_R17_BOUNDED_LABELS = frozenset(
    {
        "outcome",
        "endpoint",
        "level",
        "record_type",
        "backend",
        "shard",
        "alertname",
        "severity",
        "to",
        "state",
        "label",
        "metric",
    }
)

#: Labels whose registry family declares ``max_label_values`` — the
#: cardinality guard bounds them at the sink, so arbitrary (user-derived)
#: values are safe to pass.
_R17_GUARDED_LABELS = frozenset({"tenant"})


class LabelCardinalityRule(RuleProtocol):
    """R17: metric labels stay bounded outside the guarded registry.

    Prometheus-style registries allocate one child series per distinct
    label-value tuple, forever: a single ``tenant=<request field>`` or
    ``trip=f"{...}"`` label on a hot counter turns an unbounded input
    domain into unbounded process memory *and* unbounded exposition size
    (the classic cardinality explosion).  The registry's guard
    (``max_label_values`` + ``__other__`` overflow bucketing) makes that
    safe — but only for families that declare it.  Outside
    ``observability/`` (which owns the guard), this rule therefore
    requires every label keyword on ``inc``/``observe``/``labels``/
    ``set`` to be either a known bounded enumeration or a guarded label,
    and rejects label values built by string interpolation — an
    f-string/``%``/``+``/``.format`` value is how request-derived
    identifiers sneak into label position.
    """

    rule_id = "R17"
    name = "label-cardinality-bypass"
    description = "unbounded or user-derived metric label outside the guarded registry"

    def applies_to(self, source: SourceFile) -> bool:
        if source.is_test:
            return False
        return "observability/" not in source.rel_path

    def check(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _R17_LABEL_METHODS
                and node.keywords
            ):
                continue
            for keyword in node.keywords:
                if keyword.arg is None:
                    yield Violation(
                        rule_id=self.rule_id,
                        path=source.rel_path,
                        line=node.lineno,
                        message=(
                            "**-splatted metric labels — the label set cannot "
                            "be checked statically; pass each label keyword "
                            "explicitly"
                        ),
                    )
                    continue
                if keyword.arg in _R17_VALUE_KEYWORDS:
                    continue
                if keyword.arg not in _R17_BOUNDED_LABELS | _R17_GUARDED_LABELS:
                    yield Violation(
                        rule_id=self.rule_id,
                        path=source.rel_path,
                        line=keyword.value.lineno,
                        message=(
                            f"metric label '{keyword.arg}' is not a known "
                            f"bounded enumeration — every distinct value "
                            f"allocates a series forever; add it to the "
                            f"bounded set or declare a max_label_values "
                            f"guard on the family"
                        ),
                    )
                    continue
                if keyword.arg not in _R17_GUARDED_LABELS and self._is_built_string(
                    keyword.value
                ):
                    yield Violation(
                        rule_id=self.rule_id,
                        path=source.rel_path,
                        line=keyword.value.lineno,
                        message=(
                            f"label '{keyword.arg}' value is built by string "
                            f"interpolation — request-derived identifiers in "
                            f"label position explode series cardinality; pass "
                            f"a bounded enumeration value (or route through a "
                            f"guarded label)"
                        ),
                    )

    @staticmethod
    def _is_built_string(value: ast.expr) -> bool:
        """True for f-strings, ``%``/``+`` concatenation, and
        ``.format``/``.join`` calls — the expression shapes that splice
        runtime data into a label value."""
        if isinstance(value, ast.JoinedStr):
            return any(isinstance(part, ast.FormattedValue) for part in value.values)
        if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.Add, ast.Mod)):
            return True
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("format", "join")
        ):
            return True
        return False


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

from .passes import PROJECT_RULES  # noqa: E402  (import after rule defs: passes subclass the same protocol)

ALL_RULES: tuple[RuleProtocol, ...] = (
    IntervalComparisonRule(),
    MetricConsistencyRule(),
    DataclassSlotsRule(),
    MutableDefaultRule(),
    CacheExpiryRule(),
    ExceptionHygieneRule(),
    ResilienceBypassRule(),
    EngineBypassRule(),
    JournalBypassRule(),
    ClockBypassRule(),
    *PROJECT_RULES,
    BackpressureBypassRule(),
    EpochBypassRule(),
    LabelCardinalityRule(),
)

RULES_BY_ID: dict[str, RuleProtocol] = {rule.rule_id: rule for rule in ALL_RULES}


def select_rules(ids: Sequence[str] | None = None) -> tuple[RuleProtocol, ...]:
    """The rule objects for ``ids`` (all seventeen when None)."""
    if ids is None:
        return ALL_RULES
    unknown = [rule_id for rule_id in ids if rule_id.upper() not in RULES_BY_ID]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return tuple(RULES_BY_ID[rule_id.upper()] for rule_id in ids)
