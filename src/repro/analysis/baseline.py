"""Baseline (grandfathered-findings) support for ``repro-check``.

A baseline lets the gate stay *ratcheting*: pre-existing findings are
recorded once (``--write-baseline``) and subsequent runs fail only on
findings **not** in the file.  Fingerprints deliberately exclude the
line number — ``(rule, path, message)`` — so pure line drift from
unrelated edits does not resurrect a grandfathered finding, while any
change to the message (which embeds the taint reason and sink) does.

Counts matter: a baseline entry with count 2 absorbs at most two
matching findings per run; a third is new and fails the gate.  The
checked-in ``.repro-check-baseline.json`` at the repo root is the CI
baseline (empty today — the tree is clean, but the mechanism is what
future PRs lean on while refactoring).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from .engine import Violation

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-check-baseline.json"


def fingerprint(violation: Violation) -> str:
    """Stable, line-independent identity of a finding."""
    payload = f"{violation.rule_id}|{violation.path}|{violation.message}"
    return hashlib.blake2s(payload.encode("utf-8"), digest_size=12).hexdigest()


@dataclass(slots=True)
class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    counts: dict[str, int] = field(default_factory=dict)
    #: human-readable context per fingerprint, for reviewable diffs.
    notes: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_violations(cls, violations: Sequence[Violation]) -> "Baseline":
        baseline = cls()
        for violation in violations:
            key = fingerprint(violation)
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
            baseline.notes.setdefault(
                key, f"{violation.rule_id} {violation.path}: {violation.message}"
            )
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline file: {path}")
        entries = data.get("findings", {})
        counts: dict[str, int] = {}
        notes: dict[str, str] = {}
        for key, entry in entries.items():
            if isinstance(entry, Mapping):
                counts[key] = int(entry.get("count", 1))
                note = entry.get("note")
                if isinstance(note, str):
                    notes[key] = note
            else:
                counts[key] = int(entry)
        return cls(counts=counts, notes=notes)

    def save(self, path: Path) -> None:
        findings = {
            key: {"count": count, "note": self.notes.get(key, "")}
            for key, count in sorted(self.counts.items())
        }
        payload = {"version": BASELINE_VERSION, "findings": findings}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    def split(
        self, violations: Sequence[Violation]
    ) -> tuple[list[Violation], list[Violation]]:
        """``(new, baselined)`` — order-preserving, counts respected."""
        remaining = dict(self.counts)
        new: list[Violation] = []
        baselined: list[Violation] = []
        for violation in violations:
            key = fingerprint(violation)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(violation)
            else:
                new.append(violation)
        return new, baselined


__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "fingerprint",
]
