"""Runtime contracts — the dynamic twin of the ``repro-check`` rules.

``@require``/``@ensure`` decorators attach executable pre/postconditions
to the functions that carry the paper's invariants (``Interval``
operations, ``sc_score``, the CkNN-EC ranking loop, the dynamic cache's
``Q``/``t`` admission check).  They are **off by default**: unless the
environment variable ``REPRO_CONTRACTS`` is ``1`` at import time, the
decorators return the function unchanged, so production hot paths pay
zero overhead.

Run the tier-1 suite with ``REPRO_CONTRACTS=1`` to execute every contract
against the full test workload — the runtime proof that the statically
enforced invariants also hold dynamically.

Predicates receive the wrapped function's arguments *by name*: a
predicate declares exactly the parameters it cares about and the
decorator binds them from the call.  ``@ensure`` predicates may also name
``result`` to receive the return value::

    @require(lambda k: k >= 1, "k must be at least 1")
    @ensure(lambda result, k: len(result) <= k, "at most k entries")
    def top_k(scores: list[ScScore], k: int) -> list[ScScore]: ...

This module is stdlib-only and must stay import-light: it is imported by
``repro.intervals``, the bottom of the dependency tree.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., Any])

#: Name an ``@ensure`` predicate uses to receive the return value.
RESULT_PARAM = "result"


class ContractViolation(AssertionError):
    """A ``@require``/``@ensure`` predicate evaluated false."""


def contracts_enabled() -> bool:
    """True when ``REPRO_CONTRACTS=1`` is set in the environment."""
    return os.environ.get("REPRO_CONTRACTS", "") == "1"


def _predicate_params(predicate: Callable[..., bool]) -> tuple[str, ...]:
    return tuple(inspect.signature(predicate).parameters)


def _bind(func_sig: inspect.Signature, args: tuple[Any, ...], kwargs: dict[str, Any]) -> dict[str, Any]:
    bound = func_sig.bind(*args, **kwargs)
    bound.apply_defaults()
    return dict(bound.arguments)


def require(predicate: Callable[..., bool], message: str) -> Callable[[_F], _F]:
    """Precondition: ``predicate`` must hold on the (named) arguments.

    No-op unless ``REPRO_CONTRACTS=1`` at import time.
    """
    if not contracts_enabled():
        return lambda func: func

    params = _predicate_params(predicate)

    def decorate(func: _F) -> _F:
        func_sig = inspect.signature(func)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            arguments = _bind(func_sig, args, kwargs)
            values = [arguments[name] for name in params]
            if not predicate(*values):
                raise ContractViolation(
                    f"require violated in {func.__qualname__}: {message}"
                )
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def ensure(predicate: Callable[..., bool], message: str) -> Callable[[_F], _F]:
    """Postcondition: ``predicate`` must hold on ``result`` (and any named
    arguments) after the call.

    No-op unless ``REPRO_CONTRACTS=1`` at import time.
    """
    if not contracts_enabled():
        return lambda func: func

    params = _predicate_params(predicate)

    def decorate(func: _F) -> _F:
        func_sig = inspect.signature(func)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            arguments = _bind(func_sig, args, kwargs)
            arguments[RESULT_PARAM] = result
            values = [arguments[name] for name in params]
            if not predicate(*values):
                raise ContractViolation(
                    f"ensure violated in {func.__qualname__}: {message}"
                )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
