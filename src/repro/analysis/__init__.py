"""``repro.analysis`` — domain-aware static analysis + runtime contracts.

The machine-checked guardrails for the paper's invariants (see
``docs/static_analysis.md``):

* :mod:`repro.analysis.rules` — the six ``repro-check`` rules R1-R6
  (interval-endpoint comparisons, metric consistency, dataclass slots,
  mutable defaults, cache expiry, exception hygiene).
* :mod:`repro.analysis.engine` — AST walking, suppression pragmas,
  reporting.
* :mod:`repro.analysis.annotations` — the offline strict-annotation gate
  (mypy's ``disallow_untyped_defs`` subset, always available).
* :mod:`repro.analysis.contracts` — ``@require``/``@ensure`` runtime
  contracts, enabled with ``REPRO_CONTRACTS=1``.

CLI: ``python -m repro.analysis src/repro tests`` or the ``repro-check``
console script.  This package is stdlib-only by design.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from .annotations import check_annotations
from .engine import AnalysisError, AnalysisReport, Analyzer, SourceFile, Violation
from .rules import ALL_RULES, RULES_BY_ID, select_rules

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "AnalysisReport",
    "Analyzer",
    "RULES_BY_ID",
    "SourceFile",
    "Violation",
    "check_annotations",
    "check_paths",
    "check_source",
    "select_rules",
]


def check_paths(
    paths: Sequence[str | Path], rule_ids: Sequence[str] | None = None
) -> AnalysisReport:
    """Run ``repro-check`` over files/directories and return the report."""
    analyzer = Analyzer(select_rules(rule_ids))
    return analyzer.check_paths([Path(p) for p in paths])


def check_source(
    source: str, rel_path: str = "<snippet>.py", rule_ids: Sequence[str] | None = None
) -> list[Violation]:
    """Run ``repro-check`` over an in-memory snippet (fixture-test entry
    point).  ``rel_path`` controls which path-scoped rules apply."""
    analyzer = Analyzer(select_rules(rule_ids))
    return analyzer.check_source(source, rel_path=rel_path)
