"""``repro.analysis`` — domain-aware static analysis + runtime contracts.

The machine-checked guardrails for the paper's invariants (see
``docs/static_analysis.md``):

* :mod:`repro.analysis.rules` — the seventeen ``repro-check`` rules:
  per-file AST rules R1-R10 (interval comparisons, metric consistency,
  slots, mutable defaults, cache expiry, exception hygiene, resilience/
  engine/journal/clock bypasses), R15 (backpressure-bypass in the
  serving tier), R16 (epoch-bypass around the live-graph cache
  fence), and R17 (label-cardinality-bypass outside the guarded
  metrics registry) plus the whole-program passes R11-R14.
* :mod:`repro.analysis.graph` / :mod:`repro.analysis.dataflow` — the
  project graph (imports, classes, function IR) and the fixpoint
  summary framework the whole-program passes run on.
* :mod:`repro.analysis.passes` — R11 determinism-taint, R12
  interval-escape, R13 shared-state-mutation, R14 layer-conformance.
* :mod:`repro.analysis.engine` — AST walking, suppression pragmas,
  the parallel ``--jobs`` driver, reporting.
* :mod:`repro.analysis.cache` — content-hash memoisation of parse +
  extraction.
* :mod:`repro.analysis.baseline` / :mod:`repro.analysis.sarif` —
  grandfathered-finding ratchet and SARIF 2.1.0 export for CI.
* :mod:`repro.analysis.annotations` — the offline strict-annotation gate
  (mypy's ``disallow_untyped_defs`` subset, always available).
* :mod:`repro.analysis.contracts` — ``@require``/``@ensure`` runtime
  contracts, enabled with ``REPRO_CONTRACTS=1``.

CLI: ``python -m repro.analysis src/repro tests`` or the ``repro-check``
console script.  This package is stdlib-only by design.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from .annotations import check_annotations
from .engine import AnalysisError, AnalysisReport, Analyzer, SourceFile, Violation
from .rules import ALL_RULES, RULES_BY_ID, select_rules

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "AnalysisReport",
    "Analyzer",
    "RULES_BY_ID",
    "SourceFile",
    "Violation",
    "check_annotations",
    "check_paths",
    "check_snippets",
    "check_source",
    "select_rules",
]


def check_paths(
    paths: Sequence[str | Path],
    rule_ids: Sequence[str] | None = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Run ``repro-check`` over files/directories and return the report."""
    analyzer = Analyzer(select_rules(rule_ids))
    return analyzer.check_paths([Path(p) for p in paths], jobs=jobs)


def check_source(
    source: str, rel_path: str = "<snippet>.py", rule_ids: Sequence[str] | None = None
) -> list[Violation]:
    """Run ``repro-check`` over an in-memory snippet (fixture-test entry
    point).  ``rel_path`` controls which path-scoped rules apply."""
    analyzer = Analyzer(select_rules(rule_ids))
    return analyzer.check_source(source, rel_path=rel_path)


def check_snippets(
    snippets: Mapping[str, str], rule_ids: Sequence[str] | None = None
) -> list[Violation]:
    """Run ``repro-check`` over several in-memory files as one project —
    the entry point for cross-module fixtures (R11-R14)."""
    analyzer = Analyzer(select_rules(rule_ids))
    return analyzer.check_snippets(snippets)
