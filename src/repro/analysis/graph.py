"""Project-graph extraction: modules, imports, classes, and a function IR.

The whole-program passes (rules R11-R14 in :mod:`repro.analysis.passes`)
do not walk raw ASTs.  Each source file is *extracted* once into a
:class:`ModuleFacts` — a small, picklable summary of everything the
interprocedural analyses need:

* the module's **imports** (with their scope: top-level, inside a
  ``TYPE_CHECKING`` block, or deferred into a function body) for the
  layer-conformance pass,
* its **classes** with attribute-type facts (from annotations and
  constructor assignments) for the shared-state pass,
* its **functions**, each compiled to a linear event list over a tiny
  term IR (:class:`Term`) for the taint passes.

Extraction is the only phase that touches ``ast`` nodes; everything
downstream (summaries, fixpoint, findings) works on these facts.  That
is what makes the engine's ``--jobs`` driver possible — worker processes
ship facts, never syntax trees — and what the content-hash cache
(:mod:`repro.analysis.cache`) memoises.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from .engine import SourceFile

# ---------------------------------------------------------------------------
# the term IR
# ---------------------------------------------------------------------------
#
# A Term is a tiny, picklable expression tree.  Taint policies interpret
# terms — extraction never decides what is tainted, it only records
# structure (what was called, what was read, how values were combined).


@dataclass(frozen=True, slots=True)
class Const:
    """A literal or otherwise inert expression."""


@dataclass(frozen=True, slots=True)
class NameRef:
    """A read of a local/parameter/global name."""

    name: str


@dataclass(frozen=True, slots=True)
class AttrOf:
    """An attribute read ``base.attr``."""

    base: "Term"
    attr: str


@dataclass(frozen=True, slots=True)
class Callee:
    """Who a call resolves to, as far as extraction can tell.

    ``kind`` is one of:

    * ``"local"`` — a function/class defined in the same module
      (``qualified`` is its in-module qualname);
    * ``"import"`` — a name bound by ``from X import Y``
      (``qualified`` is ``X.Y``);
    * ``"module_attr"`` — ``alias.f(...)`` where ``alias`` is an
      imported module (``qualified`` is ``module.f``);
    * ``"method"`` — ``self.f(...)`` (``qualified`` is ``Class.f``);
    * ``"attr_call"`` — ``obj.f(...)`` on an arbitrary receiver
      (``receiver`` carries the receiver term);
    * ``"name"`` — a bare name the module never defined or imported
      (builtins such as ``id`` land here).
    """

    kind: str
    name: str
    qualified: str | None = None
    receiver: "Term | None" = None


@dataclass(frozen=True, slots=True)
class CallT:
    """A call expression."""

    callee: Callee
    args: tuple["Term", ...]
    line: int
    #: keyword argument names present at the call (seed detection).
    keywords: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class Combine:
    """A structural combination of sub-terms.

    ``op`` names the syntax: ``binop``, ``unary``, ``boolop``,
    ``compare``, ``ifexp``, ``tuple``, ``listset``, ``dict``,
    ``subscript``, ``fstring``, ``starred``, ``await``, ``comp``.
    """

    op: str
    parts: tuple["Term", ...]


@dataclass(frozen=True, slots=True)
class IterOf:
    """The element produced by iterating ``base`` (``for x in base``)."""

    base: "Term"
    setlike: bool


Term = Const | NameRef | AttrOf | CallT | Combine | IterOf

_CONST = Const()


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AssignEv:
    """``targets = value`` (names only; attribute targets become StoreEv)."""

    targets: tuple[str, ...]
    value: Term
    line: int


@dataclass(frozen=True, slots=True)
class ReturnEv:
    """``return value`` (or ``yield value``)."""

    value: Term
    line: int


@dataclass(frozen=True, slots=True)
class StoreEv:
    """A state mutation anchored on an attribute of ``owner``.

    ``kind`` is ``assign`` (``owner.attr = v``), ``augassign``
    (``owner.attr += v``), ``subscript`` (``owner.attr[k] = v`` /
    ``del owner.attr[k]``), or ``mutcall:<name>``
    (``owner.attr.clear()`` and friends).
    """

    owner: Term
    attr: str
    kind: str
    line: int
    value: Term | None = None


Event = AssignEv | ReturnEv | StoreEv


# ---------------------------------------------------------------------------
# facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FunctionFacts:
    """One function (or method, or the module body) in IR form."""

    name: str
    qualname: str  # "<module rel_path>::Class.method" — globally unique
    module: str  # rel_path of the defining module
    class_name: str | None
    params: tuple[str, ...]
    line: int
    events: tuple[Event, ...]
    calls: tuple[CallT, ...]
    #: local/parameter name -> class name, from constructor assignments
    #: and annotations.
    local_types: Mapping[str, str] = field(default_factory=dict)
    #: class named by the return annotation, when recognisable.
    return_type: str | None = None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_") or (
            self.name.startswith("__") and self.name.endswith("__")
        )


@dataclass(frozen=True, slots=True)
class ClassFacts:
    """One class definition: where it lives and what its attributes are."""

    name: str
    module: str
    line: int
    #: attribute name -> class name (from body annotations and
    #: ``self.x = ClassName(...)`` / ``self.x: ClassName`` in methods).
    attr_types: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ImportFact:
    """One cross-module import edge."""

    target: str  # dotted module, e.g. "repro.network.graph"
    names: tuple[str, ...]  # imported symbols ("*" for plain `import X`)
    line: int
    scope: str  # "toplevel" | "type_checking" | "deferred"


@dataclass(frozen=True, slots=True)
class ModuleFacts:
    """Everything the whole-program passes know about one file."""

    rel_path: str
    module_name: str  # dotted, e.g. "repro.core.ranking"
    package: str  # first component under repro, e.g. "core"
    is_test: bool
    imports: tuple[ImportFact, ...]
    functions: tuple[FunctionFacts, ...]
    classes: tuple[ClassFacts, ...]


@dataclass(slots=True)
class ProjectGraph:
    """The assembled project: module facts plus cross-module indexes."""

    modules: dict[str, ModuleFacts]  # rel_path -> facts
    functions: dict[str, FunctionFacts] = field(init=False, default_factory=dict)
    classes: dict[str, ClassFacts] = field(init=False, default_factory=dict)
    methods: dict[str, FunctionFacts] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        for facts in self.modules.values():
            for cls in facts.classes:
                # First definition wins; project class names are unique
                # in practice and the passes only key on well-known ones.
                self.classes.setdefault(cls.name, cls)
            for fn in facts.functions:
                self.functions[fn.qualname] = fn
                if fn.class_name is not None:
                    self.methods.setdefault(f"{fn.class_name}.{fn.name}", fn)

    def iter_functions(self) -> Iterator[FunctionFacts]:
        for facts in self.modules.values():
            yield from facts.functions

    def resolve_callee(self, call: CallT, module: ModuleFacts) -> FunctionFacts | None:
        """The :class:`FunctionFacts` a call dispatches to, when known."""
        callee = call.callee
        if callee.kind == "local" and callee.qualified is not None:
            return self.functions.get(f"{module.rel_path}::{callee.qualified}")
        if callee.kind == "method" and callee.qualified is not None:
            return self.functions.get(f"{module.rel_path}::{callee.qualified}")
        if callee.kind == "import" and callee.qualified is not None:
            dotted, _, symbol = callee.qualified.rpartition(".")
            for facts in self.modules.values():
                if facts.module_name == dotted:
                    return self.functions.get(f"{facts.rel_path}::{symbol}")
        return None

    def class_attr_type(self, class_name: str, attr: str) -> str | None:
        cls = self.classes.get(class_name)
        if cls is None:
            return None
        return cls.attr_types.get(attr)


# ---------------------------------------------------------------------------
# module naming
# ---------------------------------------------------------------------------


def module_identity(rel_path: str) -> tuple[str, str]:
    """``(dotted module name, package)`` for an analysis-relative path.

    Real runs are rooted at ``src/repro`` (rel paths like
    ``core/ranking.py``); fixture snippets use full repo-style paths
    (``src/repro/core/example.py``).  Both normalise to
    ``repro.core.<name>`` with package ``core``; top-level modules
    (``intervals.py``, ``__main__.py``) use their stem as the package.
    """
    parts = [p for p in rel_path.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return "repro", "<root>"
    if parts[0] == "repro":
        parts = parts[1:]
    stem = parts[-1][:-3] if parts and parts[-1].endswith(".py") else (parts[-1] if parts else "")
    dirs = parts[:-1]
    if stem == "__init__":
        dotted = ".".join(["repro", *dirs]) if dirs else "repro"
    else:
        dotted = ".".join(["repro", *dirs, stem]) if stem else "repro"
    package = dirs[0] if dirs else (stem or "<root>")
    return dotted, package


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------

_MUTATOR_METHODS = frozenset(
    {
        "clear",
        "pop",
        "popitem",
        "update",
        "setdefault",
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "add",
    }
)

_SETLIKE_CALLS = frozenset({"set", "frozenset"})


_VALUE_CONTAINERS = frozenset(
    {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict", "OrderedDict"}
)


def _annotation_class(node: ast.expr | None) -> str | None:
    """The class name an annotation refers to, when recognisable.

    Subscripted containers resolve to their *element* class
    (``dict[str, ResilientEndpoint]`` -> ``ResilientEndpoint``); the
    type-facts consumers pair this with subscript terms, so container
    and element conflate deliberately.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("|")[0].strip()
        return text.split(".")[-1].strip("'\" ") or None
    if isinstance(node, ast.Subscript):
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            head = node.value
            head_name = head.id if isinstance(head, ast.Name) else None
            if head_name in _VALUE_CONTAINERS:
                return _annotation_class(inner.elts[-1])
            return _annotation_class(inner.elts[0])
        return _annotation_class(inner)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_class(node.left)
    return None


class _ModuleExtractor:
    """Compiles one parsed module into :class:`ModuleFacts`."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.module_name, self.package = module_identity(source.rel_path)
        self.imports: list[ImportFact] = []
        self.functions: list[FunctionFacts] = []
        self.classes: list[ClassFacts] = []
        #: module alias -> dotted module ("import numpy as np")
        self.module_aliases: dict[str, str] = {}
        #: bare name -> "module.symbol" ("from time import perf_counter")
        self.from_imports: dict[str, str] = {}
        #: names of functions/classes defined at module level
        self.local_defs: set[str] = set()

    def extract(self) -> ModuleFacts:
        tree = self.source.tree
        self._collect_imports(tree)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self.local_defs.add(node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_defs.add(node.name)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._extract_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(node, class_name=None)
        module_body = [
            stmt
            for stmt in tree.body
            if not isinstance(stmt, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self.functions.append(
            _FunctionExtractor(self, "<module>", None, [], module_body, 1).extract()
        )
        return ModuleFacts(
            rel_path=self.source.rel_path,
            module_name=self.module_name,
            package=self.package,
            is_test=self.source.is_test,
            imports=tuple(self.imports),
            functions=tuple(self.functions),
            classes=tuple(self.classes),
        )

    # -- imports ----------------------------------------------------------

    def _collect_imports(self, tree: ast.Module) -> None:
        module_parts = self.module_name.split(".")
        is_package = self.source.rel_path.endswith("__init__.py")

        def resolve_relative(level: int, module: str | None) -> str:
            keep = len(module_parts) - level + (1 if is_package else 0)
            base = module_parts[: max(keep, 0)]
            if module:
                base = [*base, module]
            return ".".join(base)

        def record(node: ast.stmt, scope: str) -> None:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
                    self.imports.append(
                        ImportFact(target=alias.name, names=("*",), line=node.lineno, scope=scope)
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    target = resolve_relative(node.level, node.module)
                else:
                    target = node.module or ""
                if not target:
                    return
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = f"{target}.{alias.name}"
                self.imports.append(
                    ImportFact(
                        target=target,
                        names=tuple(alias.name for alias in node.names),
                        line=node.lineno,
                        scope=scope,
                    )
                )

        def walk(body: Sequence[ast.stmt], scope: str) -> None:
            for node in body:
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    record(node, scope)
                elif isinstance(node, ast.If):
                    test = node.test
                    is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
                    )
                    inner = "type_checking" if is_tc else scope
                    walk(node.body, inner)
                    walk(node.orelse, inner)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk(node.body, "deferred")
                elif isinstance(node, ast.ClassDef):
                    walk(node.body, scope)
                elif isinstance(node, (ast.For, ast.While, ast.With, ast.Try)):
                    walk(getattr(node, "body", []), scope)
                    walk(getattr(node, "orelse", []), scope)
                    walk(getattr(node, "finalbody", []), scope)
                    for handler in getattr(node, "handlers", []):
                        walk(handler.body, scope)

        walk(tree.body, "toplevel")

    # -- classes ----------------------------------------------------------

    def _extract_class(self, node: ast.ClassDef) -> None:
        attr_types: dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                annotated = _annotation_class(stmt.annotation)
                if annotated is not None:
                    attr_types[stmt.target.id] = annotated
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._harvest_self_attr_types(stmt, attr_types)
        self.classes.append(
            ClassFacts(
                name=node.name,
                module=self.source.rel_path,
                line=node.lineno,
                attr_types=attr_types,
            )
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(stmt, class_name=node.name)

    def _harvest_self_attr_types(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, attr_types: dict[str, str]
    ) -> None:
        param_types: dict[str, str] = {}
        for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
            annotated = _annotation_class(arg.annotation)
            if annotated is not None:
                param_types[arg.arg] = annotated

        def value_class(value: ast.expr) -> str | None:
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                return value.func.id
            if isinstance(value, ast.Name):
                return param_types.get(value.id)
            if isinstance(value, ast.IfExp):
                # `x if x is not None else Ctor(...)`: either arm may name
                # the class; prefer the concrete constructor.
                return value_class(value.body) or value_class(value.orelse)
            return None

        for node in ast.walk(fn):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
                annotated = _annotation_class(node.annotation)
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and annotated is not None
                ):
                    attr_types.setdefault(target.attr, annotated)
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            if (
                target is not None
                and value is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                inferred = value_class(value)
                if inferred is not None:
                    attr_types.setdefault(target.attr, inferred)

    # -- functions --------------------------------------------------------

    def _extract_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, class_name: str | None
    ) -> None:
        params = [
            arg.arg
            for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
        ]
        extractor = _FunctionExtractor(
            self, node.name, class_name, params, node.body, node.lineno, node
        )
        self.functions.append(extractor.extract())
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested_params = [
                        arg.arg
                        for arg in (
                            *inner.args.posonlyargs,
                            *inner.args.args,
                            *inner.args.kwonlyargs,
                        )
                    ]
                    nested = _FunctionExtractor(
                        self,
                        f"{node.name}.<locals>.{inner.name}",
                        class_name,
                        nested_params,
                        inner.body,
                        inner.lineno,
                        inner,
                    )
                    self.functions.append(nested.extract())


class _FunctionExtractor:
    """Compiles one function body into events + call sites."""

    def __init__(
        self,
        module: _ModuleExtractor,
        name: str,
        class_name: str | None,
        params: Sequence[str],
        body: Sequence[ast.stmt],
        line: int,
        node: ast.FunctionDef | ast.AsyncFunctionDef | None = None,
    ) -> None:
        self.module = module
        self.name = name
        self.class_name = class_name
        self.params = tuple(params)
        self.body = body
        self.line = line
        self.node = node
        self.events: list[Event] = []
        self.calls: list[CallT] = []
        self.local_types: dict[str, str] = {}
        #: names locally bound to set-typed values (for iteration order)
        self.set_names: set[str] = set()

    def extract(self) -> FunctionFacts:
        return_type: str | None = None
        if self.node is not None:
            args = self.node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                annotated = _annotation_class(arg.annotation)
                if annotated is not None:
                    self.local_types[arg.arg] = annotated
            return_type = _annotation_class(self.node.returns)
        self._walk(self.body)
        prefix = f"{self.class_name}." if self.class_name else ""
        return FunctionFacts(
            name=self.name,
            qualname=f"{self.module.source.rel_path}::{prefix}{self.name}",
            module=self.module.source.rel_path,
            class_name=self.class_name,
            params=self.params,
            line=self.line,
            events=tuple(self.events),
            calls=tuple(self.calls),
            local_types=self.local_types,
            return_type=return_type,
        )

    # -- statement walk ---------------------------------------------------

    def _walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are extracted separately
        if isinstance(stmt, ast.Assign):
            value = self._term(stmt.value)
            names: list[str] = []
            for target in stmt.targets:
                names.extend(self._assign_target(target, value, stmt.lineno, stmt.value))
            if names:
                self.events.append(AssignEv(tuple(names), value, stmt.lineno))
        elif isinstance(stmt, ast.AnnAssign):
            value = self._term(stmt.value) if stmt.value is not None else _CONST
            annotated = _annotation_class(stmt.annotation)
            if isinstance(stmt.target, ast.Name):
                if annotated is not None:
                    self.local_types.setdefault(stmt.target.id, annotated)
                if stmt.value is not None:
                    self._note_value_type(stmt.target.id, stmt.value)
                    self.events.append(AssignEv((stmt.target.id,), value, stmt.lineno))
            elif stmt.value is not None:
                for _ in self._assign_target(stmt.target, value, stmt.lineno, stmt.value):
                    pass
        elif isinstance(stmt, ast.AugAssign):
            rhs = self._term(stmt.value)
            if isinstance(stmt.target, ast.Name):
                combined = Combine("binop", (NameRef(stmt.target.id), rhs))
                self.events.append(AssignEv((stmt.target.id,), combined, stmt.lineno))
            elif isinstance(stmt.target, ast.Attribute):
                self.events.append(
                    StoreEv(
                        owner=self._term(stmt.target.value),
                        attr=stmt.target.attr,
                        kind="augassign",
                        line=stmt.lineno,
                        value=rhs,
                    )
                )
            elif isinstance(stmt.target, ast.Subscript):
                self._subscript_store(stmt.target, rhs, stmt.lineno)
        elif isinstance(stmt, (ast.Return,)):
            if stmt.value is not None:
                self.events.append(ReturnEv(self._term(stmt.value), stmt.lineno))
        elif isinstance(stmt, ast.Expr):
            term = self._term(stmt.value)
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)) and term is not _CONST:
                self.events.append(ReturnEv(term, stmt.lineno))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._subscript_store(target, None, stmt.lineno)
        elif isinstance(stmt, ast.For):
            iter_term = self._term(stmt.iter)
            setlike = self._is_setlike(stmt.iter)
            element = IterOf(iter_term, setlike)
            for name in self._assign_target(stmt.target, element, stmt.lineno, None):
                self.events.append(AssignEv((name,), element, stmt.lineno))
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._term(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._term(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                term = self._term(item.context_expr)
                if item.optional_vars is not None:
                    for name in self._assign_target(
                        item.optional_vars, term, stmt.lineno, item.context_expr
                    ):
                        self.events.append(AssignEv((name,), term, stmt.lineno))
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._term(child)

    def _assign_target(
        self,
        target: ast.expr,
        value: Term,
        line: int,
        value_node: ast.expr | None,
    ) -> list[str]:
        """Record attribute/subscript stores; return plain name targets."""
        names: list[str] = []
        if isinstance(target, ast.Name):
            names.append(target.id)
            if value_node is not None:
                self._note_value_type(target.id, value_node)
                if self._is_setlike(value_node):
                    self.set_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.events.append(
                StoreEv(
                    owner=self._term(target.value),
                    attr=target.attr,
                    kind="assign",
                    line=line,
                    value=value,
                )
            )
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, value, line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                names.extend(self._assign_target(element, value, line, None))
        elif isinstance(target, ast.Starred):
            names.extend(self._assign_target(target.value, value, line, None))
        return names

    def _subscript_store(self, target: ast.Subscript, value: Term | None, line: int) -> None:
        container = target.value
        if isinstance(container, ast.Attribute):
            self.events.append(
                StoreEv(
                    owner=self._term(container.value),
                    attr=container.attr,
                    kind="subscript",
                    line=line,
                    value=value,
                )
            )

    def _note_value_type(self, name: str, value: ast.expr) -> None:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            self.local_types.setdefault(name, value.func.id)
        elif isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            self.local_types.setdefault(name, value.func.attr)

    def _is_setlike(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _SETLIKE_CALLS
        ):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names or self.local_types.get(node.id) in _SETLIKE_CALLS
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.Sub)):
            return self._is_setlike(node.left) or self._is_setlike(node.right)
        return False

    # -- expression -> term ----------------------------------------------

    def _term(self, node: ast.expr | None) -> Term:
        if node is None:
            return _CONST
        if isinstance(node, ast.Name):
            return NameRef(node.id)
        if isinstance(node, ast.Attribute):
            return AttrOf(self._term(node.value), node.attr)
        if isinstance(node, ast.Call):
            return self._call_term(node)
        if isinstance(node, ast.BinOp):
            return Combine("binop", (self._term(node.left), self._term(node.right)))
        if isinstance(node, ast.UnaryOp):
            return Combine("unary", (self._term(node.operand),))
        if isinstance(node, ast.BoolOp):
            return Combine("boolop", tuple(self._term(value) for value in node.values))
        if isinstance(node, ast.Compare):
            return Combine(
                "compare",
                (self._term(node.left), *(self._term(cmp) for cmp in node.comparators)),
            )
        if isinstance(node, ast.IfExp):
            self._term(node.test)
            return Combine("ifexp", (self._term(node.body), self._term(node.orelse)))
        if isinstance(node, (ast.Tuple,)):
            return Combine("tuple", tuple(self._term(elt) for elt in node.elts))
        if isinstance(node, (ast.List, ast.Set)):
            return Combine("listset", tuple(self._term(elt) for elt in node.elts))
        if isinstance(node, ast.Dict):
            parts = tuple(
                self._term(value) for value in (*node.keys, *node.values) if value is not None
            )
            return Combine("dict", parts)
        if isinstance(node, ast.Subscript):
            self._term(node.slice)
            return Combine("subscript", (self._term(node.value),))
        if isinstance(node, ast.JoinedStr):
            parts = tuple(
                self._term(value.value)
                for value in node.values
                if isinstance(value, ast.FormattedValue)
            )
            return Combine("fstring", parts)
        if isinstance(node, ast.Starred):
            return Combine("starred", (self._term(node.value),))
        if isinstance(node, ast.Await):
            return Combine("await", (self._term(node.value),))
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return self._term(node.value) if node.value is not None else _CONST
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comp_term(node, (node.elt,))
        if isinstance(node, ast.DictComp):
            return self._comp_term(node, (node.key, node.value))
        if isinstance(node, ast.NamedExpr):
            term = self._term(node.value)
            if isinstance(node.target, ast.Name):
                self.events.append(AssignEv((node.target.id,), term, node.lineno))
            return term
        if isinstance(node, ast.Lambda):
            return _CONST
        return _CONST

    def _comp_term(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
        results: tuple[ast.expr, ...],
    ) -> Term:
        parts: list[Term] = []
        for generator in node.generators:
            iter_term = self._term(generator.iter)
            element = IterOf(iter_term, self._is_setlike(generator.iter))
            for name in self._assign_target(generator.target, element, node.lineno, None):
                self.events.append(AssignEv((name,), element, node.lineno))
            parts.append(element)
        for result in results:
            parts.append(self._term(result))
        return Combine("comp", tuple(parts))

    def _call_term(self, node: ast.Call) -> CallT:
        func = node.func
        callee: Callee
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.module.local_defs:
                callee = Callee(kind="local", name=name, qualified=name)
            elif name in self.module.from_imports:
                callee = Callee(
                    kind="import", name=name, qualified=self.module.from_imports[name]
                )
            else:
                callee = Callee(kind="name", name=name)
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self" and self.class_name:
                callee = Callee(
                    kind="method",
                    name=func.attr,
                    qualified=f"{self.class_name}.{func.attr}",
                )
            elif (
                isinstance(receiver, ast.Name)
                and receiver.id in self.module.module_aliases
            ):
                dotted = self.module.module_aliases[receiver.id]
                callee = Callee(
                    kind="module_attr", name=func.attr, qualified=f"{dotted}.{func.attr}"
                )
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id in self.module.module_aliases
            ):
                # two-level module attribute, e.g. np.random.default_rng
                dotted = self.module.module_aliases[receiver.value.id]
                callee = Callee(
                    kind="module_attr",
                    name=func.attr,
                    qualified=f"{dotted}.{receiver.attr}.{func.attr}",
                )
            else:
                callee = Callee(
                    kind="attr_call", name=func.attr, receiver=self._term(receiver)
                )
        else:
            self._term(func)
            callee = Callee(kind="name", name="<dynamic>")
        args = tuple(self._term(arg) for arg in node.args)
        keywords = tuple(kw.arg for kw in node.keywords if kw.arg is not None)
        for kw in node.keywords:
            args = (*args, self._term(kw.value))
        call = CallT(callee=callee, args=args, line=node.lineno, keywords=keywords)
        self.calls.append(call)
        return call


def extract_module(source: SourceFile) -> ModuleFacts:
    """Compile one parsed file into facts (the cache-aware entry point is
    :func:`repro.analysis.cache.facts_for`)."""
    return _ModuleExtractor(source).extract()


def build_graph(facts: Sequence[ModuleFacts]) -> ProjectGraph:
    """Assemble extracted modules into one :class:`ProjectGraph`."""
    return ProjectGraph(modules={f.rel_path: f for f in facts})
