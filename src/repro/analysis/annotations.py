"""Strict-annotation checking — the offline twin of ``mypy --strict``.

The typing gate for the core packages is two-layered:

1. When :mod:`mypy` is importable, the lint-gate test runs the real
   ``mypy --strict`` using the ``[tool.mypy]`` configuration in
   ``pyproject.toml``.
2. This module provides the always-available subset: every function and
   method in the checked packages must fully annotate its parameters and
   return type (the ``disallow_untyped_defs`` /
   ``disallow_incomplete_defs`` half of strict mode), so an offline
   environment still refuses un-annotated code on the typed surface.

It reuses the engine's file walking/suppression machinery but is kept out
of the R1-R6 rule set: annotation completeness is a *typing* gate scoped
to the packages ``[tool.mypy]`` names, not a domain invariant.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Sequence

from .engine import SourceFile, Violation, iter_python_files

#: Parameter names exempt from annotation (bound implicitly).
_IMPLICIT_PARAMS = {"self", "cls"}

RULE_ID = "TYP"


def _unannotated_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    params = [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]
    missing = [
        param.arg
        for param in params
        if param.annotation is None and param.arg not in _IMPLICIT_PARAMS
    ]
    for star in (node.args.vararg, node.args.kwarg):
        if star is not None and star.annotation is None:
            missing.append(f"*{star.arg}")
    return missing


def _is_overload_or_abstract(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute) else None
        )
        if name in {"overload", "abstractmethod"}:
            return True
    return False


def check_annotations_in_file(source: SourceFile) -> Iterator[Violation]:
    """Yield a violation for every def with missing parameter or return
    annotations (``__init__``-style implicit-None returns included: strict
    mypy requires them annotated too)."""
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _is_overload_or_abstract(node):
            continue
        missing = _unannotated_params(node)
        needs_return = node.returns is None
        if not missing and not needs_return:
            continue
        parts = []
        if missing:
            parts.append(f"unannotated parameter(s): {', '.join(missing)}")
        if needs_return:
            parts.append("missing return annotation")
        yield Violation(
            rule_id=RULE_ID,
            path=source.rel_path,
            line=node.lineno,
            message=f"'{node.name}' is not strictly annotated ({'; '.join(parts)})",
        )


def check_annotations(paths: Sequence[Path], root: Path | None = None) -> list[Violation]:
    """Annotation-completeness violations for every file under ``paths``."""
    violations: list[Violation] = []
    base = root if root is not None else Path.cwd()
    for file_path in iter_python_files([Path(p) for p in paths]):
        source = SourceFile.load(file_path, base)
        if source is None:
            continue
        for violation in check_annotations_in_file(source):
            if source.suppressions.is_suppressed(RULE_ID, violation.line):
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line))
    return violations
