"""``repro-check`` — the command-line front end of :mod:`repro.analysis`.

Usage::

    python -m repro.analysis src/repro tests
    repro-check --select R1,R4 src/repro
    repro-check --format json --annotations src/repro

Exit codes: 0 clean, 1 violations found, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .annotations import check_annotations
from .engine import AnalysisError, Analyzer
from .rules import ALL_RULES, select_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Domain-aware static analysis for the EcoCharge reproduction: "
            "interval, metric, and cache safety rules R1-R6."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (e.g. R1,R4); default: all",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--annotations",
        action="store_true",
        help="also run the strict-annotation (TYP) check on the same paths",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.name:<20} {rule.description}")
        return 0

    try:
        rule_ids = (
            [token.strip() for token in options.select.split(",") if token.strip()]
            if options.select
            else None
        )
        rules = select_rules(rule_ids)
    except KeyError as exc:
        print(f"repro-check: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in options.paths]
    analyzer = Analyzer(rules)
    try:
        report = analyzer.check_paths(paths)
    except AnalysisError as exc:
        print(f"repro-check: {exc}", file=sys.stderr)
        return 2

    violations = list(report.violations)
    if options.annotations:
        violations.extend(check_annotations(paths))
        violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
        report.violations = violations

    if options.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
