"""``repro-check`` — the command-line front end of :mod:`repro.analysis`.

Usage::

    python -m repro.analysis src/repro tests
    repro-check --select R1,R4 src/repro
    repro-check --format json --annotations src/repro
    repro-check --jobs auto --format sarif --output repro-check.sarif src/repro
    repro-check --baseline .repro-check-baseline.json src/repro
    repro-check --baseline new-baseline.json --write-baseline src/repro

Exit codes: 0 clean (or every finding baselined), 1 violations found,
2 usage/parse error.  A timing line goes to stderr so CI logs surface
analysis-engine slowdowns without touching the report on stdout.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from .annotations import check_annotations
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import AnalysisError, Analyzer
from .rules import ALL_RULES, select_rules
from .sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Domain-aware static analysis for the EcoCharge reproduction: "
            "per-file rules R1-R10 and R15-R17 plus whole-program passes "
            "R11-R14."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (e.g. R1,R11); default: all",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        metavar="N",
        default="1",
        help="worker processes; an integer or 'auto' (= CPU count). "
        "Findings are byte-identical to a serial run.",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file of grandfathered findings; matched findings "
        "are reported informationally and do not fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the --baseline path "
        f"(default {DEFAULT_BASELINE_NAME}) and exit 0",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--annotations",
        action="store_true",
        help="also run the strict-annotation (TYP) check on the same paths",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _resolve_jobs(raw: str) -> int:
    if raw.strip().lower() == "auto":
        return os.cpu_count() or 1
    return int(raw)


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.name:<20} {rule.description}")
        return 0

    try:
        rule_ids = (
            [token.strip() for token in options.select.split(",") if token.strip()]
            if options.select
            else None
        )
        rules = select_rules(rule_ids)
        jobs = _resolve_jobs(options.jobs)
        if jobs < 1:
            raise ValueError(f"--jobs must be >= 1, got {jobs}")
    except (KeyError, ValueError) as exc:
        print(f"repro-check: {exc.args[0]}", file=sys.stderr)
        return 2

    # Timing goes through the sanctioned clock boundary (R10): analysis
    # and observability sit in the same foundation layer.
    from repro.observability.clock import SYSTEM_CLOCK

    started = SYSTEM_CLOCK.monotonic()
    paths = [Path(p) for p in options.paths]
    analyzer = Analyzer(rules)
    try:
        report = analyzer.check_paths(paths, jobs=jobs)
    except AnalysisError as exc:
        print(f"repro-check: {exc}", file=sys.stderr)
        return 2

    violations = list(report.violations)
    if options.annotations:
        violations.extend(check_annotations(paths))
        violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
        report.violations = violations

    if options.write_baseline:
        baseline_path = Path(options.baseline or DEFAULT_BASELINE_NAME)
        Baseline.from_violations(report.violations).save(baseline_path)
        elapsed = SYSTEM_CLOCK.monotonic() - started
        print(
            f"repro-check: wrote baseline of {len(report.violations)} "
            f"finding(s) to {baseline_path} in {elapsed:.2f}s",
            file=sys.stderr,
        )
        return 0

    if options.baseline is not None:
        baseline_path = Path(options.baseline)
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"repro-check: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        new, grandfathered = baseline.split(report.violations)
        report.violations = new
        report.baselined = grandfathered

    if options.format == "sarif":
        rendered = render_sarif(report, rules, report.baselined)
    elif options.format == "json":
        rendered = report.render_json()
    else:
        rendered = report.render_text()

    if options.output is not None:
        Path(options.output).write_text(rendered + "\n", encoding="utf-8")
    else:
        print(rendered)

    elapsed = SYSTEM_CLOCK.monotonic() - started
    print(
        f"repro-check: analysed {report.files_checked} file(s) with "
        f"{len(report.rules_run)} rule(s) in {elapsed:.2f}s [jobs={jobs}]",
        file=sys.stderr,
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
