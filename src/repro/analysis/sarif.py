"""SARIF 2.1.0 export for ``repro-check``.

SARIF (Static Analysis Results Interchange Format) is what CI forges
ingest to annotate findings inline on pull requests.  This module
renders an :class:`~repro.analysis.engine.AnalysisReport` as a SARIF
``2.1.0`` log: one run, the full 14-rule catalogue under
``tool.driver.rules``, and one ``result`` per violation with a
``physicalLocation``.

Validation: :func:`validate_sarif` structurally checks the documents we
emit against the required shape of the spec (the subset schema vendored
in ``sarif_schema.json`` mirrors the official 2.1.0 schema's required
properties; the full schema is not vendored wholesale).  The test suite
additionally runs the vendored schema through ``jsonschema`` when that
package is installed — it is never imported here, keeping
``repro.analysis`` stdlib-only.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from .engine import AnalysisReport, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

_TOOL_NAME = "repro-check"
_INFO_URI = "https://example.invalid/repro/docs/static_analysis.md"


def _rule_descriptor(rule: Any) -> dict[str, Any]:
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
    }


def _result(violation: Violation, baselined: bool) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": violation.rule_id,
        "level": "note" if baselined else "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(violation.line, 1)},
                }
            }
        ],
    }
    if baselined:
        result["baselineState"] = "unchanged"
    return result


def sarif_log(
    report: AnalysisReport,
    rules: Sequence[Any],
    baselined: Sequence[Violation] = (),
) -> dict[str, Any]:
    """The SARIF log as a JSON-ready dict.

    ``baselined`` findings (grandfathered via the baseline file) are
    included at level ``note`` with ``baselineState: unchanged`` so the
    forge still shows them without failing the run.
    """
    baselined_keys = {(v.rule_id, v.path, v.line, v.message) for v in baselined}
    all_violations = sorted(
        [*report.violations, *baselined],
        key=lambda v: (v.path, v.line, v.rule_id),
    )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _INFO_URI,
                        "version": "1.0.0",
                        "rules": [_rule_descriptor(rule) for rule in rules],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": [
                    _result(
                        violation,
                        (violation.rule_id, violation.path, violation.line, violation.message)
                        in baselined_keys,
                    )
                    for violation in all_violations
                ],
            }
        ],
    }


def render_sarif(
    report: AnalysisReport,
    rules: Sequence[Any],
    baselined: Sequence[Violation] = (),
) -> str:
    """The SARIF log serialised as stable, indented JSON."""
    return json.dumps(sarif_log(report, rules, baselined), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# structural validation (stdlib-only)
# ---------------------------------------------------------------------------


class SarifValidationError(ValueError):
    """The document does not satisfy the SARIF 2.1.0 required shape."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SarifValidationError(message)


def validate_sarif(document: Mapping[str, Any] | str) -> None:
    """Check required SARIF 2.1.0 structure; raises on the first defect.

    Covers the spec's required properties for ``sarifLog``, ``run``,
    ``tool``/``toolComponent``, ``reportingDescriptor``, ``result``, and
    the location objects we emit.
    """
    log: Any = json.loads(document) if isinstance(document, str) else document
    _require(isinstance(log, dict), "sarifLog must be an object")
    _require(log.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    runs = log.get("runs")
    _require(isinstance(runs, list) and len(runs) >= 1, "runs must be a non-empty array")
    for run in runs:
        _require(isinstance(run, dict), "run must be an object")
        tool = run.get("tool")
        _require(isinstance(tool, dict), "run.tool is required")
        driver = tool.get("driver")
        _require(isinstance(driver, dict), "tool.driver is required")
        _require(
            isinstance(driver.get("name"), str) and driver["name"],
            "driver.name must be a non-empty string",
        )
        for rule in driver.get("rules", []):
            _require(isinstance(rule, dict), "reportingDescriptor must be an object")
            _require(
                isinstance(rule.get("id"), str) and rule["id"],
                "reportingDescriptor.id is required",
            )
        rule_ids = {rule["id"] for rule in driver.get("rules", [])}
        results = run.get("results", [])
        _require(isinstance(results, list), "run.results must be an array")
        for result in results:
            _require(isinstance(result, dict), "result must be an object")
            message = result.get("message")
            _require(
                isinstance(message, dict) and isinstance(message.get("text"), str),
                "result.message.text is required",
            )
            rule_id = result.get("ruleId")
            _require(isinstance(rule_id, str) and bool(rule_id), "result.ruleId is required")
            if rule_ids:
                _require(
                    rule_id in rule_ids,
                    f"result.ruleId '{rule_id}' missing from driver.rules",
                )
            for location in result.get("locations", []):
                physical = location.get("physicalLocation")
                _require(
                    isinstance(physical, dict),
                    "location.physicalLocation must be an object",
                )
                artifact = physical.get("artifactLocation")
                _require(
                    isinstance(artifact, dict) and isinstance(artifact.get("uri"), str),
                    "artifactLocation.uri is required",
                )
                region = physical.get("region")
                if region is not None:
                    _require(
                        isinstance(region.get("startLine"), int)
                        and region["startLine"] >= 1,
                        "region.startLine must be a positive integer",
                    )


__all__ = [
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "SarifValidationError",
    "render_sarif",
    "sarif_log",
    "validate_sarif",
]
