"""Content-hash memoisation for parse + extraction.

``repro-check`` parses every file, extracts its
:class:`~repro.analysis.graph.ModuleFacts`, and parses its suppression
pragmas.  All three depend only on the file's *content* (plus its
analysis-relative path, which is baked into the facts), so repeated
checks of an unchanged file — watch loops, the test suite's many
``check_source`` calls, the serial half of a ``--jobs`` run — can reuse
the previous result.

The cache is in-process and keyed by ``(rel_path,
blake2s(content))``; a worker process under ``--jobs`` gets its own
(initially cold) cache.  Entries are never invalidated by time — a
content change simply hashes to a new key, and the bounded FIFO keeps
the footprint predictable.
"""

from __future__ import annotations

import ast
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .engine import Suppressions
    from .graph import ModuleFacts

_MAX_ENTRIES = 4096


@dataclass(slots=True)
class _Entry:
    tree: ast.Module
    suppressions: "Suppressions"
    facts: "ModuleFacts | None" = None


@dataclass(slots=True)
class CacheStatsSnapshot:
    """Observable cache behaviour, for tests and the ``--jobs`` driver."""

    hits: int = 0
    misses: int = 0
    facts_hits: int = 0
    facts_misses: int = 0


@dataclass(slots=True)
class ExtractionCache:
    """Memoises parse trees, suppressions, and extracted module facts."""

    _entries: "OrderedDict[tuple[str, str], _Entry]" = field(default_factory=OrderedDict)
    stats: CacheStatsSnapshot = field(default_factory=CacheStatsSnapshot)

    @staticmethod
    def content_key(rel_path: str, source: str) -> tuple[str, str]:
        digest = hashlib.blake2s(source.encode("utf-8", "surrogatepass")).hexdigest()
        return (rel_path, digest)

    def entry_for(self, rel_path: str, source: str) -> "tuple[ast.Module, Suppressions]":
        """Parse tree + suppressions for content, memoised."""
        from .engine import Suppressions

        key = self.content_key(rel_path, source)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry.tree, entry.suppressions
        self.stats.misses += 1
        tree = ast.parse(source, filename=rel_path)
        entry = _Entry(tree=tree, suppressions=Suppressions.parse(source))
        self._entries[key] = entry
        self._evict()
        return entry.tree, entry.suppressions

    def facts_for(self, source_file: "object") -> "ModuleFacts":
        """Extracted facts for an already-loaded SourceFile, memoised."""
        from .engine import SourceFile
        from .graph import extract_module

        assert isinstance(source_file, SourceFile)
        key = self.content_key(source_file.rel_path, source_file.source)
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry(tree=source_file.tree, suppressions=source_file.suppressions)
            self._entries[key] = entry
            self._evict()
        if entry.facts is None:
            self.stats.facts_misses += 1
            entry.facts = extract_module(source_file)
        else:
            self.stats.facts_hits += 1
        self._entries.move_to_end(key)
        return entry.facts

    def clear(self) -> None:
        self._entries.clear()
        self.stats = CacheStatsSnapshot()

    def _evict(self) -> None:
        while len(self._entries) > _MAX_ENTRIES:
            self._entries.popitem(last=False)


#: Process-wide cache used by the engine; tests may ``clear()`` it.
GLOBAL_CACHE = ExtractionCache()
