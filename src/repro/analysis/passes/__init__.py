"""Whole-program passes: the interprocedural rules R11-R14.

Unlike the per-file rules in :mod:`repro.analysis.rules`, a pass sees
the entire :class:`~repro.analysis.graph.ProjectGraph` at once — import
edges, class facts, and converged dataflow summaries — so it can follow
a value through helpers, attributes, and modules before deciding
whether an invariant broke.

Registry: :data:`PROJECT_RULES` is consumed by
:data:`repro.analysis.rules.ALL_RULES`, which is what the engine, the
CLI, and the docs table all iterate.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from ..engine import SourceFile, Violation
from ..graph import ProjectGraph


class ProjectRule:
    """Base class for whole-program rules.

    The engine collects :class:`~repro.analysis.graph.ModuleFacts` for
    every file in the run, assembles one graph, and calls
    :meth:`check_project` once; per-file suppressions are applied to the
    returned findings afterwards, exactly as for per-file rules.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    is_project_rule: ClassVar[bool] = True

    def applies_to(self, source: SourceFile) -> bool:
        return not source.is_test

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Project rules never run per-file."""
        return iter(())

    def check_project(self, graph: ProjectGraph) -> list[Violation]:  # pragma: no cover
        raise NotImplementedError


from .determinism import DeterminismTaintRule  # noqa: E402
from .interval_escape import IntervalEscapeRule  # noqa: E402
from .layering import LayerConformanceRule  # noqa: E402
from .shared_state import SharedStateMutationRule  # noqa: E402

PROJECT_RULES: tuple[ProjectRule, ...] = (
    DeterminismTaintRule(),
    IntervalEscapeRule(),
    SharedStateMutationRule(),
    LayerConformanceRule(),
)

__all__ = [
    "DeterminismTaintRule",
    "IntervalEscapeRule",
    "LayerConformanceRule",
    "PROJECT_RULES",
    "ProjectRule",
    "SharedStateMutationRule",
]
