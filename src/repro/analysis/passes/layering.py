"""R14 — layer conformance.

The documented architecture (``docs/architecture.md``) is a DAG::

    apps (experiments/simulation/trajectories/io/ui)
      └─ server
           └─ resilience
                └─ durability
                     └─ core
                          └─ chargers / estimation
                               └─ network
                                    └─ foundations (intervals, spatial,
                                       observability, analysis)

This pass assigns every ``repro.*`` package a layer rank and flags any
**module-scope runtime import** of a higher-ranked package — the
"upward or skip import" that would silently invert the architecture.
Two escape hatches are sanctioned and therefore exempt:

* imports inside ``if TYPE_CHECKING:`` (annotations only, no runtime
  edge), and
* imports deferred into a function body (the documented late-binding
  pattern, e.g. ``resilience.gateway`` resolving its server-side
  estimator lazily);

plus one shared kernel: :mod:`repro.resilience.errors` is a leaf
exception-contract module importable from any layer (core and
durability raise the upstream taxonomy without depending on the
resilience machinery).
"""

from __future__ import annotations

from ..engine import Violation
from ..graph import ModuleFacts, ProjectGraph
from . import ProjectRule

#: package -> layer rank; imports must flow toward smaller ranks.
LAYER_RANKS: dict[str, int] = {
    # foundations: leaf utilities with no domain dependencies
    "analysis": 0,
    "observability": 0,
    "intervals": 0,
    "spatial": 0,
    # the road network and its engines
    "network": 1,
    # domain data + estimation over the network
    "chargers": 2,
    "estimation": 2,
    # ranking core
    "core": 3,
    # durable state over the core
    "durability": 4,
    # upstream-failure machinery over durable serving state
    "resilience": 5,
    # the serving facade
    "server": 6,
    # applications and harnesses
    "experiments": 7,
    "simulation": 7,
    "trajectories": 7,
    "io": 7,
    "ui": 7,
    "__main__": 7,
    "<root>": 7,
}

#: leaf modules importable from anywhere (documented shared kernels).
SHARED_MODULES: frozenset[str] = frozenset({"repro.resilience.errors"})


def _target_package(target: str) -> str | None:
    parts = target.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return None  # bare `import repro` pins no package
    return parts[1]


def _is_shared(target: str, names: tuple[str, ...]) -> bool:
    if target in SHARED_MODULES:
        return True
    return any(f"{target}.{name}" in SHARED_MODULES for name in names)


class LayerConformanceRule(ProjectRule):
    """R14: module-scope imports must follow the architecture DAG."""

    rule_id = "R14"
    name = "layer-conformance"
    description = (
        "module-scope imports follow the layer DAG (server>resilience>"
        "durability>core>estimation>network>foundations); no upward imports"
    )

    def check_project(self, graph: ProjectGraph) -> list[Violation]:
        violations: list[Violation] = []
        for module in graph.modules.values():
            if module.is_test:
                continue
            source_rank = LAYER_RANKS.get(module.package)
            if source_rank is None:
                continue
            for fact in module.imports:
                if fact.scope != "toplevel":
                    continue  # TYPE_CHECKING / deferred: sanctioned
                target_package = _target_package(fact.target)
                if target_package is None:
                    continue
                target_rank = LAYER_RANKS.get(target_package)
                if target_rank is None or target_rank <= source_rank:
                    continue
                if _is_shared(fact.target, fact.names):
                    continue
                violations.append(
                    Violation(
                        rule_id=self.rule_id,
                        path=module.rel_path,
                        line=fact.line,
                        message=(
                            f"layer violation: '{module.module_name}' "
                            f"(layer '{module.package}', rank {source_rank}) "
                            f"imports '{fact.target}' (layer "
                            f"'{target_package}', rank {target_rank}); "
                            "depend downward only, or defer the import to "
                            "function scope / TYPE_CHECKING"
                        ),
                    )
                )
        return violations


__all__ = ["LayerConformanceRule", "LAYER_RANKS", "SHARED_MODULES"]
