"""R12 — interval endpoint escape.

:class:`repro.intervals.Interval` is the paper's uncertainty carrier;
the whole point of R1 (no raw endpoint comparisons) is defeated if a
*public* function of the interval/core subsystem hands a raw ``.lo`` /
``.hi`` float to callers, who will then compare it however they like.

This pass taints raw endpoint reads and follows them through tuples,
conditionals, ``min``/``max``, and helper calls (via summaries).  The
taint is *killed* by anything that turns the endpoint into a derived
quantity — arithmetic (``hi - lo``), comparisons (the sanctioned
comparators return booleans), string formatting, or construction of a
new ``Interval``.  A public function defined in ``core/`` or
``intervals.py`` whose return value is still raw-endpoint-tainted is an
escape.

Interprocedural case: ``def lower(iv): return _lower(iv)`` with a
private ``_lower`` returning ``iv.lo`` is flagged at the public
boundary, two hops from the read.
"""

from __future__ import annotations

from ..dataflow import TaintPolicy, compute_summaries, evaluate_returns
from ..engine import Violation
from ..graph import AttrOf, CallT, FunctionFacts, ModuleFacts, ProjectGraph
from . import ProjectRule

_ENDPOINTS = frozenset({"lo", "hi"})

#: named escape hatches (none today; documented in static_analysis.md).
SANCTIONED_ACCESSORS: frozenset[str] = frozenset()

#: builtins that pass a raw endpoint through unchanged.
_PRESERVING_BUILTINS = frozenset({"min", "max", "float"})


class _IntervalEscapePolicy(TaintPolicy):
    killing_ops = frozenset({"binop", "compare", "fstring", "await"})

    def attr_source(
        self, term: AttrOf, fn: FunctionFacts, module: ModuleFacts
    ) -> str | None:
        if term.attr in _ENDPOINTS:
            return f"raw endpoint '.{term.attr}'"
        return None

    def unknown_call(
        self,
        call: CallT,
        arg_reasons: list[str | None],
        receiver_reason: str | None,
    ) -> str | None:
        # Unlike determinism taint, an unknown call is assumed to *derive*
        # something new (Interval(...), a codec, a formatter) — only the
        # identity-preserving builtins keep the value raw.
        if call.callee.name in _PRESERVING_BUILTINS:
            for reason in arg_reasons:
                if reason is not None:
                    return reason
        return None


def _in_scope(module: ModuleFacts) -> bool:
    if module.is_test:
        return False
    return module.package == "core" or module.rel_path.endswith("intervals.py")


class IntervalEscapeRule(ProjectRule):
    """R12: raw endpoints may not cross the intervals/core public API."""

    rule_id = "R12"
    name = "interval-escape"
    description = (
        "raw .lo/.hi floats may not cross a public function boundary out "
        "of intervals/core; return Intervals or derived quantities"
    )

    def check_project(self, graph: ProjectGraph) -> list[Violation]:
        policy = _IntervalEscapePolicy()
        table = compute_summaries(graph, policy)
        violations: list[Violation] = []
        for module in graph.modules.values():
            if not _in_scope(module):
                continue
            for fn in module.functions:
                if not self._is_public_boundary(fn):
                    continue
                for line, reason in evaluate_returns(fn, module, graph, policy, table):
                    if reason is None:
                        continue
                    violations.append(
                        Violation(
                            rule_id=self.rule_id,
                            path=module.rel_path,
                            line=line,
                            message=(
                                f"public function '{fn.name}' returns "
                                f"{reason} across the intervals/core "
                                "boundary; return an Interval or a derived "
                                "quantity (or use a sanctioned comparator)"
                            ),
                        )
                    )
        return violations

    @staticmethod
    def _is_public_boundary(fn: FunctionFacts) -> bool:
        if fn.name == "<module>" or "<locals>" in fn.name:
            return False
        if fn.name in SANCTIONED_ACCESSORS:
            return False
        return fn.is_public


__all__ = ["IntervalEscapeRule", "SANCTIONED_ACCESSORS"]
