"""R11 — determinism taint.

The paper's replay contract (bitwise-identical Offering Tables across
engines, crashes, and resumes) dies the moment a nondeterministic value
is persisted.  This pass taints values derived from:

* wall-clock reads (``time.time()``, ``perf_counter()``, …) outside the
  sanctioned :mod:`repro.observability.clock` boundary,
* **unseeded** RNGs — ``random.Random()`` / ``numpy.random.default_rng()``
  with no seed argument, and the module-level ``random.*`` functions
  (global, unseeded-by-default state),
* entropy (``os.urandom``, ``uuid.uuid1/uuid4``),
* ``id()`` identity values,
* set-iteration order (and ``vars()``/``__dict__`` iteration),

and follows the taint through assignments, helper calls (via function
summaries), and ``self.*`` attributes until it reaches a replayed sink:
journal appends, codec encodes, snapshot construction/writes, trace-id
fields, or Offering Table construction.

Calibration: comparisons kill taint (branching on the clock is the
cache-expiry idiom, guarded separately by R5/R10), and ``sorted()``
kills set-order taint — that is the sanctioned fix.
"""

from __future__ import annotations

from ..dataflow import TaintPolicy, compute_summaries, report_sinks
from ..engine import Violation
from ..graph import (
    AttrOf,
    CallT,
    IterOf,
    ModuleFacts,
    NameRef,
    ProjectGraph,
    StoreEv,
    Term,
)
from . import ProjectRule

_TIME_FUNCS = frozenset(
    {
        "time",
        "monotonic",
        "perf_counter",
        "time_ns",
        "monotonic_ns",
        "perf_counter_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)
_TIME_QUALS = frozenset(f"time.{name}" for name in _TIME_FUNCS)

_RNG_CTORS = frozenset({"random.Random", "numpy.random.default_rng"})

_ENTROPY_QUALS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: module-level ``random.*`` draws on the global unseeded state.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
    }
)

_TRACE_ID_ATTRS = frozenset({"trace_id", "span_id", "parent_id", "correlation_id"})

_SEED_KEYWORDS = frozenset({"seed", "x"})  # random.Random(x=...) keyword is "x"

_SINK_CTORS = {
    "OfferingTable": "Offering Table construction",
    "build_table": "Offering Table construction",
    "SessionSnapshot": "snapshot state",
    "write_snapshot": "snapshot write",
    "JournalRecord": "journal record",
}


def _is_unseeded_rng(call: CallT) -> bool:
    if call.args:
        return False
    return not (set(call.keywords) & _SEED_KEYWORDS)


def _term_leaf_name(term: Term) -> str | None:
    if isinstance(term, NameRef):
        return term.name
    if isinstance(term, AttrOf):
        return term.attr
    return None


class _DeterminismPolicy(TaintPolicy):
    sanitizers = frozenset({"sorted", "len", "bool", "isinstance", "round"})
    killing_ops = frozenset({"compare"})

    def call_source(self, call: CallT, module: ModuleFacts) -> str | None:
        qualified = call.callee.qualified
        name = call.callee.name
        if qualified in _TIME_QUALS:
            return f"wall-clock read '{qualified}()'"
        if qualified in _ENTROPY_QUALS:
            return f"entropy source '{qualified}()'"
        if call.callee.kind == "name" and name == "id":
            return "id() identity value"
        if qualified in _RNG_CTORS and _is_unseeded_rng(call):
            return f"unseeded RNG '{qualified}()'"
        if qualified is not None:
            head, _, tail = qualified.rpartition(".")
            if head in ("random", "numpy.random") and tail in _GLOBAL_RNG_FUNCS:
                return f"global unseeded RNG '{qualified}()'"
        return None

    def iter_source(self, term: IterOf, module: ModuleFacts) -> str | None:
        if term.setlike:
            return "set-iteration order"
        base = term.base
        if isinstance(base, CallT) and base.callee.name in ("vars", "globals"):
            return f"{base.callee.name}() dict-order iteration"
        if isinstance(base, AttrOf) and base.attr == "__dict__":
            return "__dict__-order iteration"
        return None

    def call_sink(self, call: CallT, module: ModuleFacts) -> str | None:
        name = call.callee.name
        sink = _SINK_CTORS.get(name)
        if sink is not None:
            return sink
        if name == "append" and call.callee.kind == "attr_call":
            receiver = call.callee.receiver
            leaf = _term_leaf_name(receiver) if receiver is not None else None
            if leaf is not None and "journal" in leaf.lower():
                return "journal append"
        if name == "encode" and call.callee.kind == "attr_call":
            receiver = call.callee.receiver
            leaf = _term_leaf_name(receiver) if receiver is not None else None
            if leaf is not None and "codec" in leaf.lower():
                return "codec encode"
        return None

    def sink_args(
        self, call: CallT, module: ModuleFacts
    ) -> list[tuple[Term, str]]:
        pairs = super().sink_args(call, module)
        trace_keys = set(call.keywords) & _TRACE_ID_ATTRS
        if trace_keys:
            positional = len(call.args) - len(call.keywords)
            for offset, keyword in enumerate(call.keywords):
                if keyword in trace_keys:
                    pairs.append(
                        (call.args[positional + offset], f"trace-id argument '{keyword}'")
                    )
        return pairs

    def store_sink(self, store: StoreEv, module: ModuleFacts) -> str | None:
        if store.attr in _TRACE_ID_ATTRS:
            return f"trace-id field '{store.attr}'"
        return None

    def force_clean_module(self, module: ModuleFacts) -> bool:
        # The injected-clock boundary: SystemClock is *allowed* to read
        # time.*; consumers only ever see it through the Clock protocol.
        return module.rel_path.endswith("observability/clock.py")


class DeterminismTaintRule(ProjectRule):
    """R11: nondeterministic values must not reach replayed state."""

    rule_id = "R11"
    name = "determinism-taint"
    description = (
        "values derived from clocks, unseeded RNGs, id(), or set order "
        "must not reach journals, snapshots, trace ids, or Offering Tables"
    )

    def check_project(self, graph: ProjectGraph) -> list[Violation]:
        policy = _DeterminismPolicy()
        table = compute_summaries(graph, policy)
        violations: list[Violation] = []
        seen: set[tuple[str, int, str]] = set()
        for module, fn, hit in report_sinks(graph, policy, table):
            key = (module.rel_path, hit.line, hit.sink)
            if key in seen:
                continue
            seen.add(key)
            violations.append(
                Violation(
                    rule_id=self.rule_id,
                    path=module.rel_path,
                    line=hit.line,
                    message=(
                        f"{hit.reason} reaches {hit.sink} in "
                        f"'{fn.name}'; replayed state must be "
                        "deterministic — inject a seeded RNG or a Clock"
                    ),
                )
            )
        return violations


__all__ = ["DeterminismTaintRule"]
