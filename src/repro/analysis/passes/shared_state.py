"""R13 — shared-state mutation.

The ROADMAP's async/sharded serving tier will run today's
single-threaded caches and registries concurrently.  Ahead of that,
this pass freezes the ownership discipline: the mutable shared
singletons — :class:`DynamicCache`/:class:`CacheStats` (core.caching),
:class:`DistanceEngine`/:class:`EngineStats` LRUs
(network.distance_engine), :class:`MetricsRegistry`
(observability.metrics), and :class:`HealthRegistry`/
:class:`EndpointHealth` (resilience.health) — may only be mutated from
their owning module, through the transactional/locked APIs those
modules export.

Detection is type-driven, not name-driven: extraction records local and
attribute types (annotations + constructor assignments), so
``gateway.health.calls += 1`` resolves ``health`` to
``EndpointHealth`` and is flagged wherever it happens outside
``resilience/health.py``.  Calling a *method* of the watched class
(``cache.store(...)``, ``registry.counter(...)``) is the sanctioned
path and never flagged; reaching around it — attribute writes,
aug-assigns, subscript stores, or container mutators like
``engine._cache.clear()`` — is.
"""

from __future__ import annotations

from ..dataflow import infer_local_types, type_of_term
from ..engine import Violation
from ..graph import AttrOf, CallT, FunctionFacts, ModuleFacts, ProjectGraph, StoreEv, Term
from . import ProjectRule

#: watched class -> suffix of its owning module's path.
WATCHED_CLASSES: dict[str, str] = {
    "DynamicCache": "core/caching.py",
    "CacheStats": "core/caching.py",
    "DistanceEngine": "network/distance_engine.py",
    "EngineStats": "network/distance_engine.py",
    "MetricsRegistry": "observability/metrics.py",
    "HealthRegistry": "resilience/health.py",
    "EndpointHealth": "resilience/health.py",
    "SchedulerStats": "server/scheduling/scheduler.py",
}

_CONTAINER_MUTATORS = frozenset(
    {
        "clear",
        "pop",
        "popitem",
        "update",
        "setdefault",
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "add",
    }
)


class SharedStateMutationRule(ProjectRule):
    """R13: shared caches/registries mutate only via their owning module."""

    rule_id = "R13"
    name = "shared-state-mutation"
    description = (
        "DistanceEngine/DynamicCache/CacheStats/MetricsRegistry/"
        "HealthRegistry state mutates only via owning-module APIs"
    )

    def check_project(self, graph: ProjectGraph) -> list[Violation]:
        violations: list[Violation] = []
        for module in graph.modules.values():
            if module.is_test:
                continue
            for fn in module.functions:
                env = infer_local_types(fn, graph)
                for event in fn.events:
                    if isinstance(event, StoreEv):
                        violation = self._check_store(event, fn, module, graph, env)
                        if violation is not None:
                            violations.append(violation)
                for call in fn.calls:
                    violation = self._check_mutator_call(call, fn, module, graph, env)
                    if violation is not None:
                        violations.append(violation)
        return violations

    def _owner_of(
        self,
        term: Term,
        fn: FunctionFacts,
        graph: ProjectGraph,
        env: dict[str, str],
    ) -> str | None:
        """Watched class name if ``term`` is (typed as) a watched object."""
        resolved = type_of_term(term, fn, graph, env)
        if resolved in WATCHED_CLASSES:
            return resolved
        return None

    @staticmethod
    def _outside_owner(module: ModuleFacts, class_name: str) -> bool:
        return not module.rel_path.endswith(WATCHED_CLASSES[class_name])

    def _check_store(
        self,
        event: StoreEv,
        fn: FunctionFacts,
        module: ModuleFacts,
        graph: ProjectGraph,
        env: dict[str, str],
    ) -> Violation | None:
        watched = self._owner_of(event.owner, fn, graph, env)
        if watched is None or not self._outside_owner(module, watched):
            return None
        kinds = {
            "assign": "attribute write",
            "augassign": "augmented assignment",
            "subscript": "subscript store",
        }
        return Violation(
            rule_id=self.rule_id,
            path=module.rel_path,
            line=event.line,
            message=(
                f"{kinds.get(event.kind, event.kind)} to "
                f"{watched}.{event.attr} outside its owning module "
                f"({WATCHED_CLASSES[watched]}); go through the class's "
                "transactional API"
            ),
        )

    def _check_mutator_call(
        self,
        call: CallT,
        fn: FunctionFacts,
        module: ModuleFacts,
        graph: ProjectGraph,
        env: dict[str, str],
    ) -> Violation | None:
        if call.callee.kind != "attr_call" or call.callee.name not in _CONTAINER_MUTATORS:
            return None
        receiver = call.callee.receiver
        if not isinstance(receiver, AttrOf):
            # Mutators called on the watched object itself resolve to its
            # public API (e.g. DynamicCache.clear) — that's the sanctioned
            # path; only reach-around container mutation is flagged.
            return None
        watched = self._owner_of(receiver.base, fn, graph, env)
        if watched is None or not self._outside_owner(module, watched):
            return None
        return Violation(
            rule_id=self.rule_id,
            path=module.rel_path,
            line=call.line,
            message=(
                f"direct '{call.callee.name}()' on {watched}."
                f"{receiver.attr} outside its owning module "
                f"({WATCHED_CLASSES[watched]}); go through the class's "
                "transactional API"
            ),
        )


__all__ = ["SharedStateMutationRule", "WATCHED_CLASSES"]
