"""Typed upstream failure taxonomy.

The production EIS depends on four external providers (weather, busy
times, traffic, charger catalog — Section IV / Figure 4).  Every way a
provider call can fail is a distinct exception type so the retry policy,
the circuit breaker, and the degradation ladder can each react to exactly
the failures they are responsible for:

* transient errors and timeouts are *retryable* — backoff and try again;
* scheduled outages are retryable in principle but usually outlast the
  per-call deadline, which is what trips the breaker;
* an open breaker fails fast *locally* — no upstream attempt is made.
"""

from __future__ import annotations


class UpstreamError(Exception):
    """Base class for every failure of an external-provider call.

    ``endpoint`` names the logical provider ("weather", "busy",
    "traffic", "catalog"); ``latency_ms`` is the simulated wall time the
    failing attempt consumed, which the retry executor charges against
    its per-call deadline.
    """

    retryable: bool = False

    def __init__(self, endpoint: str, message: str = "", latency_ms: float = 0.0):
        detail = f"{endpoint}: {message}" if message else endpoint
        super().__init__(detail)
        self.endpoint = endpoint
        self.latency_ms = latency_ms


class TransientUpstreamError(UpstreamError):
    """A one-off provider failure (HTTP 5xx / connection reset)."""

    retryable = True


class UpstreamTimeoutError(UpstreamError):
    """The provider answered too slowly (latency spike past the client
    timeout); the response, if any, was discarded."""

    retryable = True


class UpstreamOutageError(UpstreamError):
    """The provider is inside a scheduled/extended outage window."""

    retryable = True


class CircuitOpenError(UpstreamError):
    """Raised locally when the endpoint's circuit breaker is open: the
    call is rejected *without* contacting the provider."""

    retryable = False


class RetriesExhaustedError(UpstreamError):
    """Every retry attempt failed (or the per-call deadline ran out).

    Wraps the last underlying failure as ``__cause__`` so callers can
    still classify it; ``attempts`` records how many were made.
    """

    retryable = False

    def __init__(
        self,
        endpoint: str,
        attempts: int,
        elapsed_ms: float,
        last_error: UpstreamError,
    ):
        super().__init__(
            endpoint,
            f"{attempts} attempt(s) failed in {elapsed_ms:.0f} ms "
            f"(last: {type(last_error).__name__})",
            latency_ms=elapsed_ms,
        )
        self.attempts = attempts
        self.elapsed_ms = elapsed_ms
        self.last_error = last_error
        self.__cause__ = last_error
