"""Fault tolerance for the EIS serving stack.

Fault injection (:mod:`.faults`), retry with backoff (:mod:`.retry`),
circuit breakers (:mod:`.breaker`), health accounting (:mod:`.health`),
and the graceful-degradation gateway (:mod:`.gateway`) that ties them
into the fresh → live → retried → stale → fallback ladder described in
``docs/resilience.md``.
"""

from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .endpoint import ResilientEndpoint
from .environment import FaultTolerantEnvironment
from .errors import (
    CircuitOpenError,
    RetriesExhaustedError,
    TransientUpstreamError,
    UpstreamError,
    UpstreamOutageError,
    UpstreamTimeoutError,
)
from .faults import (
    CrashPoint,
    FaultInjector,
    FaultProfile,
    FaultStats,
    FaultyBusyTimesApi,
    FaultyChargerCatalogApi,
    FaultyTrafficApi,
    FaultyWeatherApi,
    NO_FAULTS,
    OutageWindow,
    IncidentChaos,
    OverloadChaos,
    SessionCrash,
)
from .gateway import FetchResult, ResilienceGateway, ServiceLevel
from .health import EndpointHealth, HealthRegistry
from .policy import (
    BUSY,
    CATALOG,
    DEFAULT_RESILIENCE,
    ENDPOINTS,
    EndpointPolicy,
    ResilienceConfig,
    StalenessPolicy,
    TRAFFIC,
    WEATHER,
)
from .retry import NO_RETRY, RetryPolicy

__all__ = [
    "BUSY",
    "CATALOG",
    "DEFAULT_RESILIENCE",
    "ENDPOINTS",
    "NO_FAULTS",
    "NO_RETRY",
    "TRAFFIC",
    "WEATHER",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "CrashPoint",
    "EndpointHealth",
    "EndpointPolicy",
    "FaultInjector",
    "FaultProfile",
    "FaultStats",
    "FaultTolerantEnvironment",
    "FaultyBusyTimesApi",
    "FaultyChargerCatalogApi",
    "FaultyTrafficApi",
    "FaultyWeatherApi",
    "FetchResult",
    "HealthRegistry",
    "OutageWindow",
    "IncidentChaos",
    "OverloadChaos",
    "ResilienceConfig",
    "ResilienceGateway",
    "ResilientEndpoint",
    "RetriesExhaustedError",
    "RetryPolicy",
    "ServiceLevel",
    "SessionCrash",
    "StalenessPolicy",
    "TransientUpstreamError",
    "UpstreamError",
    "UpstreamOutageError",
    "UpstreamTimeoutError",
]
