"""The resilient provider gateway: one degradation ladder per endpoint.

Every upstream fetch of the serving stack goes down the same ladder:

1. **fresh** — answered from the response cache within TTL;
2. **live / retried** — the resilient call path (circuit breaker, then
   retries with exponential backoff and jitter under a per-call
   deadline);
3. **stale** — on upstream failure, a cached entry past its TTL but
   within the endpoint's staleness bound is served, with interval
   payloads honestly *widened* for their age;
4. **fallback** — with no stale entry either, the estimate degrades to
   the conservative floor derived from
   :meth:`~repro.estimation.component.ForecastConfidence.fallback_interval`
   — wider-but-correct instead of an exception.

The gateway is the *only* sanctioned way for server-tier code to reach
the raw provider APIs (``repro-check`` rule R7 enforces this): it owns
the fault-injecting wrappers, the per-endpoint breakers/retry policies,
and the health counters that reconcile against ``ApiUsage``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from ..estimation.component import DEFAULT_CONFIDENCE, ForecastConfidence
from ..estimation.weather import ATTENUATION, SkyState, WeatherForecast
from .endpoint import ResilientEndpoint
from .errors import UpstreamError
from .faults import (
    FaultInjector,
    FaultyBusyTimesApi,
    FaultyChargerCatalogApi,
    FaultyTrafficApi,
    FaultyWeatherApi,
)
from .health import HealthRegistry
from .policy import BUSY, CATALOG, DEFAULT_RESILIENCE, ENDPOINTS, TRAFFIC, WEATHER, ResilienceConfig

if TYPE_CHECKING:  # runtime imports are deferred to break the server cycle
    from ..chargers.charger import Charger
    from ..core.environment import ChargingEnvironment
    from ..server.api import ApiUsage
    from ..server.cache import ResponseCache
    from ..spatial.geometry import Point

#: Admissible bounds of the attenuation payload (clear sky .. heavy rain).
_ATTENUATION_LO = min(ATTENUATION.values())
_ATTENUATION_HI = max(ATTENUATION.values())


class ServiceLevel(enum.Enum):
    """Which rung of the degradation ladder answered a fetch."""

    CACHED = "cached"
    LIVE = "live"
    RETRIED = "retried"
    STALE = "stale"
    FALLBACK = "fallback"

    @property
    def is_degraded(self) -> bool:
        return self in (ServiceLevel.STALE, ServiceLevel.FALLBACK)


@dataclass(frozen=True, slots=True)
class FetchResult:
    """One ladder descent: the served value, its rung, and its age."""

    value: Any
    level: ServiceLevel
    age_h: float = 0.0


class ResilienceGateway:
    """Fault-wrapped provider APIs behind per-endpoint ladders."""

    def __init__(
        self,
        environment: "ChargingEnvironment",
        usage: "ApiUsage",
        cache: "ResponseCache",
        weather_api: FaultyWeatherApi,
        busy_api_guarded: FaultyBusyTimesApi,
        traffic_api_guarded: FaultyTrafficApi,
        catalog_api_guarded: FaultyChargerCatalogApi,
        config: ResilienceConfig,
        injector: FaultInjector,
        health: HealthRegistry,
        confidence: ForecastConfidence = DEFAULT_CONFIDENCE,
    ):
        self.environment = environment
        self.usage = usage
        self.cache = cache
        self.config = config
        self.injector = injector
        self.health = health
        self.confidence = confidence
        self._weather = weather_api
        self._busy = busy_api_guarded
        self._traffic = traffic_api_guarded
        self._catalog = catalog_api_guarded
        self.endpoints: dict[str, ResilientEndpoint] = {
            name: ResilientEndpoint(
                name,
                policy=config.for_endpoint(name).retry,
                breaker=config.for_endpoint(name).breaker,
                health=health.for_endpoint(name),
                seed=config.seed,
            )
            for name in ENDPOINTS
        }

    @classmethod
    def build(
        cls,
        environment: "ChargingEnvironment",
        usage: "ApiUsage | None" = None,
        cache: "ResponseCache | None" = None,
        config: ResilienceConfig | None = None,
        injector: FaultInjector | None = None,
        health: HealthRegistry | None = None,
        confidence: ForecastConfidence = DEFAULT_CONFIDENCE,
    ) -> "ResilienceGateway":
        """Wire raw provider APIs -> fault wrappers -> ladders.

        This factory is the single construction site of the raw
        ``server/api.py`` clients (rule R7 keeps them out of the rest of
        the server tier).  Imports are local to avoid an import cycle
        with ``repro.server``.
        """
        from ..server.api import (
            ApiUsage,
            BusyTimesApi,
            ChargerCatalogApi,
            TrafficApi,
            WeatherApi,
        )
        from ..server.cache import ResponseCache

        usage = usage if usage is not None else ApiUsage()
        cache = cache if cache is not None else ResponseCache()
        config = config if config is not None else DEFAULT_RESILIENCE
        injector = injector if injector is not None else FaultInjector()
        health = health if health is not None else HealthRegistry()
        return cls(
            environment=environment,
            usage=usage,
            cache=cache,
            weather_api=FaultyWeatherApi(WeatherApi(environment.weather, usage), injector),
            busy_api_guarded=FaultyBusyTimesApi(
                BusyTimesApi(environment.availability, usage), injector
            ),
            traffic_api_guarded=FaultyTrafficApi(
                TrafficApi(environment.traffic, usage), injector
            ),
            catalog_api_guarded=FaultyChargerCatalogApi(
                ChargerCatalogApi(environment.registry, usage), injector
            ),
            config=config,
            injector=injector,
            health=health,
            confidence=confidence,
        )

    # -- the ladder ----------------------------------------------------------

    def _fetch(
        self,
        endpoint_name: str,
        key: tuple,
        now_h: float,
        compute: Callable[[], Any],
        stale_fn: Callable[[Any, float], Any],
        fallback_fn: Callable[[], Any],
    ) -> FetchResult:
        telemetry = self.environment.telemetry
        if not telemetry.enabled:
            return self._descend(endpoint_name, key, now_h, compute, stale_fn, fallback_fn)
        started_s = telemetry.clock.monotonic()
        with telemetry.span("gateway.fetch", tier="gateway", endpoint=endpoint_name):
            result = self._descend(
                endpoint_name, key, now_h, compute, stale_fn, fallback_fn
            )
            # Exactly one ladder event per logical fetch — the span-level
            # twin of the health identity "every call lands on one rung".
            telemetry.event(
                "gateway.ladder", endpoint=endpoint_name, level=result.level.value
            )
        telemetry.inc(
            "ecocharge_gateway_ladder_total",
            endpoint=endpoint_name,
            level=result.level.value,
        )
        telemetry.observe(
            "ecocharge_gateway_fetch_seconds",
            telemetry.clock.monotonic() - started_s,
            endpoint=endpoint_name,
        )
        return result

    def _descend(
        self,
        endpoint_name: str,
        key: tuple,
        now_h: float,
        compute: Callable[[], Any],
        stale_fn: Callable[[Any, float], Any],
        fallback_fn: Callable[[], Any],
    ) -> FetchResult:
        endpoint = self.endpoints[endpoint_name]
        health = endpoint.health
        cached = self.cache.lookup(key, now_h)
        if cached is not None:
            health.record_cache_hit()
            return FetchResult(cached.value, ServiceLevel.CACHED, cached.age_h)
        # Deadline checkpoint before descending to the upstream rungs: a
        # cache hit above is served regardless (already paid for), but an
        # expired request must not spend a provider call, a retry budget,
        # or a fallback computation it can no longer use.
        self.environment.cancellation.checkpoint("gateway")
        retried_before = health.retried
        try:
            value = compute_result = endpoint.call(compute, now_h)
        except UpstreamError:
            bound = self.config.for_endpoint(endpoint_name).staleness.max_stale_h
            stale = self.cache.lookup_stale(key, now_h, bound)
            if stale is not None:
                health.record_stale_served()
                return FetchResult(
                    stale_fn(stale.value, stale.age_h), ServiceLevel.STALE, stale.age_h
                )
            health.record_fallback()
            return FetchResult(fallback_fn(), ServiceLevel.FALLBACK, math.inf)
        self.cache.put(key, now_h, value)
        level = (
            ServiceLevel.RETRIED if health.retried > retried_before else ServiceLevel.LIVE
        )
        return FetchResult(compute_result, level, 0.0)

    # -- endpoint fronts -----------------------------------------------------

    def forecast(self, location: "Point", target_h: float, now_h: float) -> FetchResult:
        """Hourly weather forecast through the ladder."""
        from ..server.cache import ResponseCache

        key = ResponseCache.spatial_key("rz-weather", location, target_h)

        def stale_fn(value: WeatherForecast, age_h: float) -> WeatherForecast:
            return replace(
                value,
                attenuation=self.confidence.stale_interval(
                    value.attenuation, age_h, _ATTENUATION_LO, _ATTENUATION_HI
                ),
                degraded=True,
            )

        def fallback_fn() -> WeatherForecast:
            return WeatherForecast(
                time_h=target_h,
                expected_state=SkyState.CLOUDY,
                attenuation=self.confidence.fallback_interval(
                    _ATTENUATION_LO, _ATTENUATION_HI
                ),
                degraded=True,
            )

        return self._fetch(
            WEATHER,
            key,
            now_h,
            lambda: self._weather.forecast(location, target_h, now_h),
            stale_fn,
            fallback_fn,
        )

    def window_attenuation(
        self, location: "Point", start_h: float, end_h: float, now_h: float
    ) -> FetchResult:
        """Charging-window attenuation hull through the ladder.

        Keyed by the *exact* window (not slot-bucketed): estimator-layer
        queries must be byte-identical to a direct model call on the
        happy path, so cache entries may only answer the very same
        question they stored — the cache's job here is serve-stale, not
        cross-query sharing (the region snapshot layer does that).
        """
        key = (
            "rz-wxwin",
            math.floor(location.x / 2.0),
            math.floor(location.y / 2.0),
            round(start_h, 4),
            round(end_h - start_h, 3),
        )
        return self._fetch(
            WEATHER,
            key,
            now_h,
            lambda: self._weather.window_forecast(location, start_h, end_h, now_h),
            lambda value, age_h: self.confidence.stale_interval(
                value, age_h, _ATTENUATION_LO, _ATTENUATION_HI
            ),
            lambda: self.confidence.fallback_interval(_ATTENUATION_LO, _ATTENUATION_HI),
        )

    def availability(self, charger: "Charger", eta_h: float, now_h: float) -> FetchResult:
        """Per-charger availability interval through the ladder.

        Keyed by the exact ETA (see :meth:`window_attenuation` for why
        estimator-layer keys are never slot-bucketed)."""
        key = ("rz-busy", charger.charger_id, round(eta_h, 4))
        return self._fetch(
            BUSY,
            key,
            now_h,
            lambda: self._busy.availability(charger, eta_h, now_h),
            lambda value, age_h: self.confidence.stale_interval(value, age_h),
            lambda: self.confidence.fallback_interval(0.0, 1.0),
        )

    def traffic_snapshot(self, now_h: float) -> FetchResult:
        """Traffic feed through the ladder.

        The *value* is always a usable traffic model: on full failure
        clients keep routing on the on-board static map (the simulation
        shares the model object), but the FALLBACK level obliges callers
        to widen any congestion-derived intervals to their floor.
        """
        key = ("rz-traffic", math.floor(now_h / 0.25))
        return self._fetch(
            TRAFFIC,
            key,
            now_h,
            lambda: self._traffic.model_snapshot(now_h),
            lambda value, age_h: value,
            lambda: self.environment.traffic,
        )

    def nearby(self, location: "Point", radius_km: float, now_h: float) -> FetchResult:
        """Charger catalog through the ladder.

        The catalog is quasi-static infrastructure, so its staleness
        bound is unbounded by default; with no cached copy at all the
        fallback is the honest empty list.
        """
        key = (
            "rz-catalog",
            math.floor(location.x / 2.0),
            math.floor(location.y / 2.0),
            round(radius_km, 1),
        )
        return self._fetch(
            CATALOG,
            key,
            now_h,
            lambda: self._catalog.nearby(location, radius_km, now_h),
            lambda value, age_h: value,
            lambda: [],
        )

    # -- observability -------------------------------------------------------

    def breaker_states(self) -> dict[str, str]:
        """Current breaker state per endpoint."""
        return {name: ep.breaker.state.value for name, ep in sorted(self.endpoints.items())}

    def accounting_ok(self) -> bool:
        """Do health counters reconcile with ``ApiUsage`` per endpoint?

        True iff, for every endpoint, every upstream attempt is
        accounted (success or failure), every logical call landed on
        exactly one ladder rung, and every delivered provider call is a
        recorded success.
        """
        provider_calls = {
            WEATHER: self.usage.weather_calls,
            BUSY: self.usage.busy_calls,
            TRAFFIC: self.usage.traffic_calls,
            CATALOG: self.usage.catalog_calls,
        }
        return all(
            self.health.for_endpoint(name).accounts_for(calls)
            for name, calls in provider_calls.items()
        )
