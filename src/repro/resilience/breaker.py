"""Per-endpoint circuit breaker over simulated clock time.

Standard three-state machine:

* **CLOSED** — calls flow; ``failure_threshold`` *consecutive* failures
  trip the breaker.
* **OPEN** — calls are rejected locally (no upstream attempt) until
  ``cooldown_h`` of simulated time has passed.
* **HALF_OPEN** — a limited number of probe calls are admitted;
  ``close_after`` consecutive probe successes close the breaker, any
  probe failure re-opens it (with a fresh cooldown).

The breaker runs on the simulation clock (``now_h`` hours), not wall
time, so chaos scenarios are deterministic and breaker recovery composes
with scheduled outage windows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Trip/recovery thresholds for one endpoint's breaker."""

    failure_threshold: int = 5
    cooldown_h: float = 0.25
    close_after: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_h <= 0:
            raise ValueError("cooldown_h must be positive")
        if self.close_after < 1:
            raise ValueError("close_after must be at least 1")


class CircuitBreaker:
    """One endpoint's breaker; all transitions take the simulated clock."""

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config if config is not None else BreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.half_open_successes = 0
        self.opened_at_h: float | None = None
        self.times_opened = 0
        self.rejections = 0

    def allow(self, now_h: float) -> bool:
        """Whether a call may go upstream at ``now_h``.

        An OPEN breaker whose cooldown has elapsed transitions to
        HALF_OPEN and admits the call as a probe.  Rejections are
        counted here — the caller must not contact the provider after a
        ``False``.
        """
        if self.state is BreakerState.OPEN:
            assert self.opened_at_h is not None
            if now_h - self.opened_at_h >= self.config.cooldown_h:
                self.state = BreakerState.HALF_OPEN
                self.half_open_successes = 0
            else:
                self.rejections += 1
                return False
        return True

    def record_success(self, now_h: float) -> None:
        """A call (or probe) completed successfully at ``now_h``."""
        if self.state is BreakerState.HALF_OPEN:
            self.half_open_successes += 1
            if self.half_open_successes >= self.config.close_after:
                self.state = BreakerState.CLOSED
                self.consecutive_failures = 0
        else:
            self.consecutive_failures = 0

    def record_failure(self, now_h: float) -> None:
        """A call (or probe) failed at ``now_h``."""
        if self.state is BreakerState.HALF_OPEN:
            self._open(now_h)
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.config.failure_threshold:
            self._open(now_h)

    def _open(self, now_h: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at_h = now_h
        self.times_opened += 1
        self.consecutive_failures = 0
        self.half_open_successes = 0
