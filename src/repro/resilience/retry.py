"""Retry policy: exponential backoff with jitter under a per-call deadline.

The policy is pure configuration plus a deterministic delay schedule; the
actual retry loop lives in :class:`~repro.resilience.endpoint.ResilientEndpoint`
so attempts, breaker transitions, and health counters stay in one place.

Time here is *simulated* milliseconds: failed-attempt latencies (carried
by the typed errors) and backoff sleeps are charged against
``deadline_ms`` without ever sleeping for real, which keeps chaos tests
fast and exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Backoff schedule and budget for one endpoint.

    ``max_attempts`` bounds upstream tries per logical call (1 = no
    retries).  Delay before retry ``i`` (1-based) is
    ``base_delay_ms * multiplier**(i-1)`` capped at ``max_delay_ms``,
    with up to ``jitter`` of the delay randomised away (full-jitter
    style, so synchronized clients de-correlate their retries).
    ``deadline_ms`` caps the *total* simulated time a logical call may
    consume across attempt latencies and backoff sleeps.
    """

    max_attempts: int = 3
    base_delay_ms: float = 50.0
    multiplier: float = 2.0
    max_delay_ms: float = 1000.0
    jitter: float = 0.5
    deadline_ms: float = 4000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")

    def backoff_ms(self, retry_index: int, rng: Random) -> float:
        """Simulated sleep before retry ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        raw = min(
            self.max_delay_ms, self.base_delay_ms * self.multiplier ** (retry_index - 1)
        )
        if self.jitter == 0.0:
            return raw
        # Full-jitter on the jittered fraction: deterministic under a
        # seeded Random, decorrelated across endpoints.
        fixed = raw * (1.0 - self.jitter)
        return fixed + rng.random() * (raw - fixed)

    def delays_ms(self, rng: Random) -> Iterator[float]:
        """The backoff delays between successive attempts."""
        for retry_index in range(1, self.max_attempts):
            yield self.backoff_ms(retry_index, rng)


#: No retries at all — first failure is final (useful as a baseline).
NO_RETRY = RetryPolicy(max_attempts=1)
