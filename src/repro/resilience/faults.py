"""Deterministic, seedable fault injection for the simulated providers.

Chaos testing needs faults that are *reproducible*: the same seed and the
same call sequence must produce the same failures, or a degraded-mode bug
can never be replayed.  The :class:`FaultInjector` draws per-endpoint
streams from :class:`random.Random` seeded with ``(seed, endpoint)``, so
endpoints fail independently and adding calls on one endpoint never
shifts another's schedule.

Three fault classes mirror what real provider SDKs defend against:

* **transient errors** — per-call probability of an HTTP-5xx-style
  failure (:class:`TransientUpstreamError`);
* **latency spikes** — per-call probability that the response exceeds the
  client timeout (:class:`UpstreamTimeoutError`);
* **outage windows** — scheduled ``[start_h, end_h)`` intervals of
  simulated clock time during which every call fails
  (:class:`UpstreamOutageError`).

The ``Faulty*Api`` wrappers mirror the four provider interfaces of
``server/api.py`` one-to-one and roll the injector *before* delegating:
an injected fault therefore never reaches the real provider and never
increments its :class:`~repro.server.api.ApiUsage` counter — exactly the
accounting a failed network call would produce.

Beyond provider faults, the injector also schedules **process crashes**
for the durability tier (``repro.durability``): a :class:`CrashPoint`
names a code location (``"mid-segment"``, ``"mid-journal-append"``,
``"post-snapshot"``, ...) and the occurrence at which the session dies
there.  Crash points are deterministic by construction — no randomness,
just a counter per point — so a recovery bug found at
``CrashPoint("mid-journal-append", 3)`` replays identically forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Any

from .errors import TransientUpstreamError, UpstreamOutageError, UpstreamTimeoutError

if TYPE_CHECKING:  # avoid a runtime repro.server import cycle
    from ..chargers.charger import Charger
    from ..intervals import Interval
    from ..server.api import BusyTimesApi, ChargerCatalogApi, TrafficApi, WeatherApi
    from ..spatial.geometry import Point


@dataclass(frozen=True, slots=True)
class OutageWindow:
    """A scheduled provider outage over simulated clock time."""

    start_h: float
    end_h: float

    def __post_init__(self) -> None:
        if self.end_h <= self.start_h:
            raise ValueError("outage window must end after it starts")

    def covers(self, time_h: float) -> bool:
        return self.start_h <= time_h < self.end_h


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Failure characteristics of one endpoint.

    ``latency_ms`` is the nominal round trip charged on success and on
    transient errors; ``spike_latency_ms`` is what a timed-out call
    costs the caller before it gives up.
    """

    error_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_ms: float = 40.0
    spike_latency_ms: float = 1500.0
    outages: tuple[OutageWindow, ...] = ()

    def __post_init__(self) -> None:
        for rate in (self.error_rate, self.latency_spike_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be in [0, 1]")
        if self.latency_ms < 0 or self.spike_latency_ms < 0:
            raise ValueError("latencies must be non-negative")

    def in_outage(self, now_h: float) -> bool:
        return any(window.covers(now_h) for window in self.outages)


#: A profile that never fails — the default when no chaos is requested.
NO_FAULTS = FaultProfile(latency_ms=0.0)


class SessionCrash(RuntimeError):
    """The simulated process death injected at a named crash point.

    Deliberately *not* an :class:`~repro.resilience.errors.UpstreamError`:
    the degradation ladder must never absorb it — it models the serving
    process itself dying, and the only valid handler is a recovery path
    (``SessionManager.resume``), never a retry.
    """

    def __init__(self, point: str, occurrence: int):
        super().__init__(f"injected crash at '{point}' (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


@dataclass(frozen=True, slots=True)
class CrashPoint:
    """Kill the session the ``at_occurrence``-th time it passes ``point``.

    Occurrences are 1-based and counted per point name across the whole
    injector lifetime, so a plan is an exact, replayable schedule.
    """

    point: str
    at_occurrence: int = 1

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("crash point needs a name")
        if self.at_occurrence < 1:
            raise ValueError("at_occurrence is 1-based")


@dataclass(frozen=True, slots=True)
class OverloadChaos:
    """An overload fault plan for the concurrent serving tier.

    Three deterministic pressure sources mirror how real serving tiers
    melt down:

    * **burst arrivals** — the load generator multiplies its sustained
      arrival rate by ``burst_multiplier`` inside
      ``[burst_start_s, burst_start_s + burst_duration_s)``;
    * **slow shard** — every dispatch on ``slow_shard`` is charged an
      extra ``slow_delay_s`` of simulated service time (one worker
      lagging: queue depth grows, brownout must engage);
    * **stuck worker** — ``stuck_shard`` wedges after serving
      ``stuck_after`` requests: later dispatches never complete and the
      scheduler must shed them at the deadline instead of waiting.

    Like :class:`CrashPoint`, there is no randomness here — the plan is
    an exact schedule, so an overload bug replays identically forever.
    """

    burst_multiplier: float = 1.0
    burst_start_s: float = 0.0
    burst_duration_s: float = 0.0
    slow_shard: int | None = None
    slow_delay_s: float = 0.0
    stuck_shard: int | None = None
    stuck_after: int = 0

    def __post_init__(self) -> None:
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1 (1 = no burst)")
        if self.burst_duration_s < 0 or self.burst_start_s < 0:
            raise ValueError("burst window must be non-negative")
        if self.slow_delay_s < 0:
            raise ValueError("slow_delay_s must be non-negative")
        if self.stuck_after < 0:
            raise ValueError("stuck_after must be non-negative")

    def in_burst(self, at_s: float) -> bool:
        return (
            self.burst_duration_s > 0
            and self.burst_start_s <= at_s < self.burst_start_s + self.burst_duration_s
        )


@dataclass(frozen=True, slots=True)
class IncidentChaos:
    """A live-graph incident-storm plan (the epoch-chaos mode).

    Seeds a deterministic
    :class:`~repro.network.epochs.IncidentStream` and bounds the storm:
    ``batches`` epoch bumps of ``batch_size`` incidents each, with every
    ``noop_every``-th bump an *empty* batch (epoch advances, no weights
    change) so the chaos run also proves a no-op bump invalidates
    nothing.  Like :class:`CrashPoint` and :class:`OverloadChaos` the
    plan is exact and seeded — a storm that finds an epoch bug replays
    identically forever.
    """

    seed: int = 0
    batches: int = 4
    batch_size: int = 3
    multiplier_lo: float = 1.25
    multiplier_hi: float = 4.0
    closure_rate: float = 0.2
    reopen_rate: float = 0.5
    max_closed: int = 2
    #: Every Nth bump is an empty batch (0 disables no-op bumps).
    noop_every: int = 3

    def __post_init__(self) -> None:
        if self.batches < 1:
            raise ValueError("an incident plan needs at least one batch")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if not 1.0 <= self.multiplier_lo <= self.multiplier_hi:
            raise ValueError("need 1.0 <= multiplier_lo <= multiplier_hi")
        if not 0.0 <= self.closure_rate <= 1.0 or not 0.0 <= self.reopen_rate <= 1.0:
            raise ValueError("rates must be in [0, 1]")
        if self.max_closed < 0:
            raise ValueError("max_closed must be non-negative")
        if self.noop_every < 0:
            raise ValueError("noop_every must be non-negative (0 disables)")


@dataclass(slots=True)
class FaultStats:
    """Per-endpoint injection accounting."""

    rolls: int = 0
    delivered: int = 0
    transients: int = 0
    timeouts: int = 0
    outage_hits: int = 0
    total_latency_ms: float = 0.0

    @property
    def injected(self) -> int:
        return self.transients + self.timeouts + self.outage_hits


class FaultInjector:
    """Seeded fault source shared by all wrapped endpoints.

    ``profiles`` maps endpoint names to :class:`FaultProfile`; endpoints
    without an entry use ``default`` (no faults unless configured).
    """

    def __init__(
        self,
        seed: int = 0,
        profiles: dict[str, FaultProfile] | None = None,
        default: FaultProfile = NO_FAULTS,
        crash_plan: "tuple[CrashPoint, ...] | list[CrashPoint] | None" = None,
        overload: OverloadChaos | None = None,
        incidents: IncidentChaos | None = None,
    ):
        self._seed = seed
        self._profiles = dict(profiles) if profiles is not None else {}
        self._default = default
        self._rngs: dict[str, Random] = {}
        self.stats: dict[str, FaultStats] = {}
        self._crash_plan: tuple[CrashPoint, ...] = (
            tuple(crash_plan) if crash_plan is not None else ()
        )
        self._crash_counts: dict[str, int] = {}
        self.crashes_fired: list[SessionCrash] = []
        self._overload = overload
        self._shard_dispatches: dict[int, int] = {}
        #: Deterministic firing counters per overload fault kind
        #: (``"burst"``, ``"slow"``, ``"stuck"``) for test reconciliation.
        self.overload_events: dict[str, int] = {}
        self._incidents = incidents
        self._incident_stream: Any = None
        self._incident_network: Any = None
        #: Deterministic counters per incident-chaos event kind
        #: (``"batches"``, ``"noops"``, ``"incidents"``, ``"closures"``,
        #: ``"reopenings"``) for test reconciliation.
        self.incident_events: dict[str, int] = {}

    def profile(self, endpoint: str) -> FaultProfile:
        return self._profiles.get(endpoint, self._default)

    def stats_for(self, endpoint: str) -> FaultStats:
        stats = self.stats.get(endpoint)
        if stats is None:
            stats = FaultStats()
            self.stats[endpoint] = stats
        return stats

    def _rng(self, endpoint: str) -> Random:
        rng = self._rngs.get(endpoint)
        if rng is None:
            # Seeding with a string keeps the stream stable across runs
            # and independent per endpoint.
            rng = Random(f"{self._seed}:{endpoint}")
            self._rngs[endpoint] = rng
        return rng

    @property
    def total_injected(self) -> int:
        return sum(stats.injected for stats in self.stats.values())

    # -- crash-point injection (durability chaos) ---------------------------

    @property
    def crash_plan(self) -> tuple[CrashPoint, ...]:
        return self._crash_plan

    def crash_next(self, point: str) -> bool:
        """Would the *next* arrival at ``point`` crash?

        Lets torn-write sites prepare the partial state (e.g. write half a
        journal line) before :meth:`maybe_crash` fires the actual crash.
        Does not advance the occurrence counter.
        """
        upcoming = self._crash_counts.get(point, 0) + 1
        return any(
            cp.point == point and cp.at_occurrence == upcoming
            for cp in self._crash_plan
        )

    def maybe_crash(self, point: str) -> None:
        """Register one arrival at ``point``; die if the plan says so."""
        count = self._crash_counts.get(point, 0) + 1
        self._crash_counts[point] = count
        for cp in self._crash_plan:
            if cp.point == point and cp.at_occurrence == count:
                crash = SessionCrash(point, count)
                self.crashes_fired.append(crash)
                raise crash

    # -- overload chaos (concurrent serving tier) ---------------------------

    @property
    def overload(self) -> OverloadChaos | None:
        return self._overload

    def burst_factor(self, at_s: float) -> float:
        """Arrival-rate multiplier at scheduler time ``at_s``.

        1.0 outside any burst window; the load generator multiplies its
        sustained rate by this when scheduling arrivals.
        """
        plan = self._overload
        if plan is None or not plan.in_burst(at_s):
            return 1.0
        self.overload_events["burst"] = self.overload_events.get("burst", 0) + 1
        return plan.burst_multiplier

    def shard_delay_s(self, shard_id: int) -> float:
        """Extra simulated service time charged to a dispatch on
        ``shard_id`` (the slow-shard fault; 0.0 for healthy shards)."""
        plan = self._overload
        if plan is None or plan.slow_shard != shard_id or plan.slow_delay_s <= 0:
            return 0.0
        self.overload_events["slow"] = self.overload_events.get("slow", 0) + 1
        return plan.slow_delay_s

    def shard_stuck(self, shard_id: int) -> bool:
        """Register one dispatch on ``shard_id``; True once it is wedged.

        Deterministic by construction — a counter per shard, no
        randomness — so a stuck-worker schedule replays exactly.  A
        wedged dispatch never completes: the scheduler must shed it at
        its deadline rather than wait for the worker.
        """
        plan = self._overload
        if plan is None or plan.stuck_shard != shard_id:
            return False
        count = self._shard_dispatches.get(shard_id, 0) + 1
        self._shard_dispatches[shard_id] = count
        if count <= plan.stuck_after:
            return False
        self.overload_events["stuck"] = self.overload_events.get("stuck", 0) + 1
        return True

    # -- incident chaos (live-graph tier) -----------------------------------

    @property
    def incidents(self) -> IncidentChaos | None:
        return self._incidents

    def next_incidents(self, network: Any) -> "tuple | None":
        """The next incident batch of the plan, or None when exhausted.

        Returns a (possibly empty) tuple of
        :class:`~repro.network.epochs.Incident` — an *empty* tuple is a
        scheduled no-op bump and must still be applied (the epoch
        advances, no weights change).  The underlying seeded stream is
        built lazily on first call against ``network``.
        """
        plan = self._incidents
        if plan is None:
            return None
        emitted = self.incident_events.get("batches", 0)
        if emitted >= plan.batches:
            return None
        from ..network.epochs import IncidentStream

        if self._incident_stream is None or self._incident_network is not network:
            self._incident_stream = IncidentStream(
                network,
                seed=plan.seed,
                multiplier_lo=plan.multiplier_lo,
                multiplier_hi=plan.multiplier_hi,
                closure_rate=plan.closure_rate,
                reopen_rate=plan.reopen_rate,
                max_closed=plan.max_closed,
            )
            self._incident_network = network
        self.incident_events["batches"] = emitted + 1
        if plan.noop_every and (emitted + 1) % plan.noop_every == 0:
            self.incident_events["noops"] = self.incident_events.get("noops", 0) + 1
            return ()
        batch = self._incident_stream.next_batch(plan.batch_size)
        self.incident_events["incidents"] = (
            self.incident_events.get("incidents", 0) + len(batch)
        )
        for incident in batch:
            if incident.is_closure:
                self.incident_events["closures"] = (
                    self.incident_events.get("closures", 0) + 1
                )
            elif incident.is_reopening:
                self.incident_events["reopenings"] = (
                    self.incident_events.get("reopenings", 0) + 1
                )
        return batch

    def roll(self, endpoint: str, now_h: float) -> float:
        """One provider call at simulated time ``now_h``.

        Returns the simulated latency on success; raises the scheduled
        typed :class:`~repro.resilience.errors.UpstreamError` otherwise.
        """
        profile = self.profile(endpoint)
        stats = self.stats_for(endpoint)
        stats.rolls += 1
        if profile.in_outage(now_h):
            stats.outage_hits += 1
            raise UpstreamOutageError(
                endpoint, f"scheduled outage at t={now_h:.2f}h",
                latency_ms=profile.spike_latency_ms,
            )
        rng = self._rng(endpoint)
        if profile.latency_spike_rate > 0 and rng.random() < profile.latency_spike_rate:
            stats.timeouts += 1
            raise UpstreamTimeoutError(
                endpoint, "latency spike past client timeout",
                latency_ms=profile.spike_latency_ms,
            )
        if profile.error_rate > 0 and rng.random() < profile.error_rate:
            stats.transients += 1
            raise TransientUpstreamError(
                endpoint, "transient provider failure", latency_ms=profile.latency_ms
            )
        stats.delivered += 1
        stats.total_latency_ms += profile.latency_ms
        return profile.latency_ms


# ---------------------------------------------------------------------------
# Faulty wrappers — one per provider interface of server/api.py
# ---------------------------------------------------------------------------


class FaultyWeatherApi:
    """Fault-injecting proxy over :class:`~repro.server.api.WeatherApi`."""

    ENDPOINT = "weather"

    def __init__(self, inner: "WeatherApi", injector: FaultInjector):
        self._inner = inner
        self._injector = injector

    def forecast(self, location: "Point", target_h: float, now_h: float) -> Any:
        self._injector.roll(self.ENDPOINT, now_h)
        return self._inner.forecast(location, target_h, now_h)

    def window_forecast(
        self, location: "Point", start_h: float, end_h: float, now_h: float
    ) -> "Interval":
        self._injector.roll(self.ENDPOINT, now_h)
        return self._inner.window_forecast(location, start_h, end_h, now_h)


class FaultyBusyTimesApi:
    """Fault-injecting proxy over :class:`~repro.server.api.BusyTimesApi`."""

    ENDPOINT = "busy"

    def __init__(self, inner: "BusyTimesApi", injector: FaultInjector):
        self._inner = inner
        self._injector = injector

    def availability(self, charger: "Charger", eta_h: float, now_h: float) -> "Interval":
        self._injector.roll(self.ENDPOINT, now_h)
        return self._inner.availability(charger, eta_h, now_h)


class FaultyTrafficApi:
    """Fault-injecting proxy over :class:`~repro.server.api.TrafficApi`."""

    ENDPOINT = "traffic"

    def __init__(self, inner: "TrafficApi", injector: FaultInjector):
        self._inner = inner
        self._injector = injector

    def model_snapshot(self, time_h: float) -> Any:
        self._injector.roll(self.ENDPOINT, time_h)
        return self._inner.model_snapshot(time_h)


class FaultyChargerCatalogApi:
    """Fault-injecting proxy over :class:`~repro.server.api.ChargerCatalogApi`."""

    ENDPOINT = "catalog"

    def __init__(self, inner: "ChargerCatalogApi", injector: FaultInjector):
        self._inner = inner
        self._injector = injector

    def nearby(
        self, location: "Point", radius_km: float, now_h: float = 0.0
    ) -> list["Charger"]:
        self._injector.roll(self.ENDPOINT, now_h)
        return self._inner.nearby(location, radius_km)
