"""The resilient call path of one endpoint: breaker -> retry -> health.

:class:`ResilientEndpoint` owns an endpoint's circuit breaker, retry
policy, and health counters, and executes provider thunks under them.
It knows nothing about caching or payload semantics — the degradation
ladder above it (``gateway.py``) decides what to serve when the resilient
call itself gives up.
"""

from __future__ import annotations

from random import Random
from typing import Callable, TypeVar

from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .errors import CircuitOpenError, RetriesExhaustedError, UpstreamError
from .health import EndpointHealth
from .retry import RetryPolicy

T = TypeVar("T")


class ResilientEndpoint:
    """Retry/backoff + circuit breaking around one endpoint's calls."""

    def __init__(
        self,
        name: str,
        policy: RetryPolicy | None = None,
        breaker: BreakerConfig | CircuitBreaker | None = None,
        health: EndpointHealth | None = None,
        seed: int = 0,
    ):
        self.name = name
        self.policy = policy if policy is not None else RetryPolicy()
        if isinstance(breaker, CircuitBreaker):
            self.breaker = breaker
        else:
            self.breaker = CircuitBreaker(breaker)
        self.health = health if health is not None else EndpointHealth(endpoint=name)
        self._rng = Random(f"{seed}:retry:{name}")

    @property
    def state(self) -> BreakerState:
        return self.breaker.state

    def call(self, fn: Callable[[], T], now_h: float) -> T:
        """Execute ``fn`` with retries under the breaker at ``now_h``.

        Raises :class:`CircuitOpenError` without any upstream attempt
        when the breaker rejects, and :class:`RetriesExhaustedError`
        when every admitted attempt fails or the deadline runs out.
        Non-upstream exceptions (programming errors) propagate untouched
        and are not charged to the breaker.
        """
        self.health.record_call()
        if not self.breaker.allow(now_h):
            self.health.record_breaker_rejection()
            raise CircuitOpenError(self.name, "circuit breaker open")

        elapsed_ms = 0.0
        attempts = 0
        last_error: UpstreamError | None = None
        while attempts < self.policy.max_attempts:
            attempts += 1
            self.health.record_attempt()
            try:
                value = fn()
            except UpstreamError as error:
                self.health.record_failure()
                elapsed_ms += error.latency_ms
                self.breaker.record_failure(now_h)
                last_error = error
                if not error.retryable:
                    break
                if attempts >= self.policy.max_attempts:
                    break
                backoff = self.policy.backoff_ms(attempts, self._rng)
                if elapsed_ms + backoff > self.policy.deadline_ms:
                    break  # the deadline would pass before the next try
                elapsed_ms += backoff
                self.health.record_retry()
                continue
            else:
                self.breaker.record_success(now_h)
                self.health.record_success(retried=attempts > 1, elapsed_ms=elapsed_ms)
                return value
        assert last_error is not None
        self.health.record_exhausted(elapsed_ms)
        raise RetriesExhaustedError(self.name, attempts, elapsed_ms, last_error)
