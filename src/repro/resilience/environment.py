"""A :class:`ChargingEnvironment` whose estimators survive upstream faults.

The ranking algorithms (``core/ranking.py``) query the environment's
estimators directly, so making ``run_over_trip`` fault-tolerant means the
*estimator* layer — not just the snapshot layer — must ride the
degradation ladder.  :class:`FaultTolerantEnvironment` shares the inner
environment's network/registry/ground-truth models but swaps the three
Estimated Component services for proxies that fetch their upstream inputs
through a :class:`~repro.resilience.gateway.ResilienceGateway`:

* sustainable ``L`` — the clear-sky envelope is local computation; only
  the weather attenuation travels the ladder, so a weather outage costs
  interval width, never the diurnal shape;
* availability ``A`` — the busy-times interval travels the ladder and
  degrades to the full ``[0, 1]`` admissible range;
* derouting ``D`` — computed on the on-board map, but when the traffic
  feed is stale or down the congestion-derived intervals are widened to
  honour what the client genuinely no longer knows.

The oracle view (``true_components*``) intentionally bypasses the ladder:
evaluation grades against ground truth, which no outage can corrupt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..core.environment import ChargingEnvironment
from ..estimation.derouting import DeroutingCost
from ..intervals import Interval
from .gateway import ResilienceGateway, ServiceLevel

if TYPE_CHECKING:
    from ..chargers.charger import Charger
    from ..estimation.availability import AvailabilityEstimator
    from ..estimation.derouting import DeroutingEstimator
    from ..estimation.sustainable import SustainableChargingEstimator, SustainableLevel
    from ..network.epochs import GraphEpochManager
    from ..network.path import TripSegment
    from ..observability.deadline import CancellationToken
    from ..observability.recorder import Telemetry


class _ResilientSustainable:
    """``L`` estimator fetching weather attenuation through the ladder."""

    def __init__(self, inner: "SustainableChargingEstimator", gateway: ResilienceGateway):
        self._inner = inner
        self._gateway = gateway

    def estimate(
        self, charger: "Charger", eta_h: float, now_h: float, window_h: float = 1.0
    ) -> "SustainableLevel":
        fetch = self._gateway.window_attenuation(
            charger.point, eta_h, eta_h + window_h, now_h
        )
        power = self._inner.power_with_attenuation(charger, eta_h, window_h, fetch.value)
        return self._inner.normalised_level(charger, power)

    def __getattr__(self, name: str) -> Any:
        # Oracle methods and parameters (true_power_kw, max_power_kw, ...)
        # pass straight through to the real estimator.
        return getattr(self._inner, name)


class _ResilientAvailability:
    """``A`` estimator fetching busy-times intervals through the ladder."""

    def __init__(self, inner: "AvailabilityEstimator", gateway: ResilienceGateway):
        self._inner = inner
        self._gateway = gateway

    def estimate(self, charger: "Charger", eta_h: float, now_h: float) -> Interval:
        return self._gateway.availability(charger, eta_h, now_h).value

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class _ResilientDerouting:
    """``D`` estimator honouring traffic-feed degradation.

    Routing always runs on the on-board static map (a real navigator
    keeps working offline), but the *congestion* bounds come from the
    traffic feed — so a stale feed widens the cost intervals with age,
    and a dead feed degrades them to the full admissible range.
    """

    def __init__(self, inner: "DeroutingEstimator", gateway: ResilienceGateway):
        self._inner = inner
        self._gateway = gateway

    def batch_estimate(
        self,
        segment: "TripSegment",
        chargers: Iterable["Charger"],
        time_h: float,
        now_h: float,
        next_segment: "TripSegment | None" = None,
        search_budget_h: float | None = None,
    ) -> dict[int, DeroutingCost]:
        fetch = self._gateway.traffic_snapshot(now_h)
        base = self._inner.batch_estimate(
            segment,
            chargers,
            time_h=time_h,
            now_h=now_h,
            next_segment=next_segment,
            search_budget_h=search_budget_h,
        )
        if fetch.level is ServiceLevel.FALLBACK:
            return {cid: self._floor_cost(cid) for cid in base}
        if fetch.level is ServiceLevel.STALE:
            return {
                cid: self._widened_cost(cost, fetch.age_h) for cid, cost in base.items()
            }
        return base

    def _floor_cost(self, charger_id: int) -> DeroutingCost:
        conf = self._gateway.confidence
        max_h = self._inner.max_derouting_h
        return DeroutingCost(
            charger_id=charger_id,
            hours=Interval(0.0, max_h),
            normalised=conf.fallback_interval(0.0, 1.0),
        )

    def _widened_cost(self, cost: DeroutingCost, age_h: float) -> DeroutingCost:
        conf = self._gateway.confidence
        max_h = self._inner.max_derouting_h
        # Absolute margin, not Interval.widened (which scales the width
        # and so would leave a saturated exact cost un-widened).
        margin_h = conf.degraded_half_width(age_h) * max_h
        return DeroutingCost(
            charger_id=cost.charger_id,
            hours=Interval(cost.hours.lo - margin_h, cost.hours.hi + margin_h).clamp(
                0.0, max_h
            ),
            normalised=conf.stale_interval(cost.normalised, age_h),
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class FaultTolerantEnvironment(ChargingEnvironment):
    """The inner environment with ladder-backed estimators.

    Everything the oracle and the routing layer need (network, registry,
    ground-truth weather/traffic, ETA) is shared with the inner
    environment; only the three forecast-view estimators are proxied.
    """

    def __init__(self, inner: ChargingEnvironment, gateway: ResilienceGateway):
        # Deliberately no super().__init__(): the inner environment
        # already built and validated every component; re-running the
        # constructor would duplicate estimator state and RNG streams.
        self.inner = inner
        self.gateway = gateway
        self.network = inner.network
        self.registry = inner.registry
        self.engine = inner.engine
        self.weather = inner.weather
        self.traffic = inner.traffic
        self.eta = inner.eta
        self.charging_window_h = inner.charging_window_h
        self.telemetry = inner.telemetry
        self.cancellation = inner.cancellation
        self.epochs = inner.epochs
        self.sustainable = _ResilientSustainable(inner.sustainable, gateway)
        self.availability = _ResilientAvailability(inner.availability, gateway)
        self.derouting = _ResilientDerouting(inner.derouting, gateway)

    def set_telemetry(self, telemetry: "Telemetry") -> None:
        """Install telemetry on this view *and* the inner environment (the
        gateway reads the inner environment's recorder at fetch time)."""
        self.telemetry = telemetry
        self.inner.set_telemetry(telemetry)

    def set_cancellation(self, token: "CancellationToken") -> None:
        """Install the deadline token on this view *and* the inner
        environment (the gateway polls the inner environment's token
        before every upstream descent)."""
        self.cancellation = token
        self.inner.set_cancellation(token)

    def set_epochs(self, epochs: "GraphEpochManager") -> None:
        """Attach the live-graph epoch manager on this view *and* the
        inner environment (which owns the traffic model and engine the
        manager must fence)."""
        self.inner.set_epochs(epochs)
        self.epochs = epochs

    @classmethod
    def build(
        cls, inner: ChargingEnvironment, gateway: ResilienceGateway | None = None, **kwargs: Any
    ) -> "FaultTolerantEnvironment":
        """Wrap ``inner``; extra kwargs go to :meth:`ResilienceGateway.build`."""
        if gateway is None:
            gateway = ResilienceGateway.build(inner, **kwargs)
        return cls(inner, gateway)
