"""Endpoint health accounting, exposed alongside ``ApiUsage``.

``ApiUsage`` counts what the *providers* saw; :class:`EndpointHealth`
counts what the *resilience layer* did — every logical call, every
upstream attempt, every retry, breaker rejection, stale serve, and
interval-widened fallback.  The two reconcile exactly (see
:meth:`EndpointHealth.accounts_for`): a chaos run can prove that no
upstream call went unaccounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class EndpointHealth:
    """Counters for one logical endpoint.

    Ladder outcome of a logical fetch (exactly one per fetch):

    * ``cache_hits`` — answered from the fresh response cache;
    * ``live`` — upstream success on the first attempt;
    * ``retried`` — upstream success after at least one retry;
    * ``stale_served`` — upstream failed, bounded-stale cache entry
      served (interval payloads widened);
    * ``fallbacks`` — upstream failed and no stale entry: the honest
      wide-interval floor was served.

    Upstream accounting: ``attempts = successes + failures`` always, and
    ``successes`` equals the provider's own usage counter because a
    fault fires *before* the provider is reached.
    """

    endpoint: str
    calls: int = 0
    cache_hits: int = 0
    live: int = 0
    retried: int = 0
    stale_served: int = 0
    fallbacks: int = 0
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    breaker_rejections: int = 0
    exhausted: int = 0
    simulated_ms: float = 0.0

    # -- recording API -----------------------------------------------------
    #
    # All counter mutations funnel through these methods (enforced by
    # repro-check R13): callers outside this module never touch the
    # fields directly, so the future async serving tier can make the
    # counters thread-safe by guarding exactly these entry points.

    def record_call(self) -> None:
        """One logical fetch reached the resilient call path."""
        self.calls += 1

    def record_breaker_rejection(self) -> None:
        self.breaker_rejections += 1

    def record_attempt(self) -> None:
        """One upstream attempt was admitted past the breaker."""
        self.attempts += 1

    def record_failure(self) -> None:
        self.failures += 1

    def record_retry(self) -> None:
        """A failed attempt will be retried after backoff."""
        self.retries += 1

    def record_success(self, retried: bool, elapsed_ms: float) -> None:
        """An upstream attempt succeeded, closing the logical call.

        ``retried`` lands the call on the ``retried`` ladder rung rather
        than ``live``; ``elapsed_ms`` charges the accumulated backoff
        latency.
        """
        self.successes += 1
        if retried:
            self.retried += 1
        else:
            self.live += 1
        self.simulated_ms += elapsed_ms

    def record_exhausted(self, elapsed_ms: float) -> None:
        """Every admitted attempt failed (or the deadline passed)."""
        self.exhausted += 1
        self.simulated_ms += elapsed_ms

    def record_cache_hit(self) -> None:
        """A logical fetch was answered from the fresh cache (counts the
        call and the rung together, preserving the ladder identity)."""
        self.calls += 1
        self.cache_hits += 1

    def record_stale_served(self) -> None:
        self.stale_served += 1

    def record_fallback(self) -> None:
        self.fallbacks += 1

    @property
    def degraded(self) -> int:
        """Fetches answered below full freshness."""
        return self.stale_served + self.fallbacks

    @property
    def availability_ratio(self) -> float:
        """Fraction of logical calls answered without degradation."""
        if self.calls == 0:
            return 1.0
        return (self.calls - self.degraded) / self.calls

    def accounts_for(self, provider_calls: int) -> bool:
        """Verify the counters reconcile with the provider's counter.

        Three identities must hold:

        1. every attempt either succeeded or failed;
        2. every logical call landed on exactly one ladder rung;
        3. every *delivered* upstream call is a recorded success
           (``provider_calls`` is the matching ``ApiUsage`` counter).
        """
        ladder = (
            self.cache_hits + self.live + self.retried + self.stale_served + self.fallbacks
        )
        return (
            self.attempts == self.successes + self.failures
            and self.calls == ladder
            and self.successes == provider_calls
            and self.degraded == self.exhausted + self.breaker_rejections
        )


@dataclass(slots=True)
class HealthRegistry:
    """All endpoint healths of one resilient serving stack."""

    endpoints: dict[str, EndpointHealth] = field(default_factory=dict)

    def for_endpoint(self, endpoint: str) -> EndpointHealth:
        health = self.endpoints.get(endpoint)
        if health is None:
            health = EndpointHealth(endpoint=endpoint)
            self.endpoints[endpoint] = health
        return health

    @property
    def total_degraded(self) -> int:
        return sum(h.degraded for h in self.endpoints.values())

    @property
    def total_calls(self) -> int:
        return sum(h.calls for h in self.endpoints.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Plain-dict snapshot for reports and logs."""
        out: dict[str, dict[str, float]] = {}
        for name, health in sorted(self.endpoints.items()):
            out[name] = {
                f.name: getattr(health, f.name)
                for f in fields(health)
                if f.name != "endpoint"
            }
        return out

    def render(self) -> str:
        """Aligned text table of all endpoint counters."""
        header = (
            "endpoint", "calls", "cache", "live", "retried", "stale",
            "fallback", "attempts", "fail", "rej",
        )
        rows = [header]
        for name, h in sorted(self.endpoints.items()):
            rows.append(
                (
                    name, str(h.calls), str(h.cache_hits), str(h.live),
                    str(h.retried), str(h.stale_served), str(h.fallbacks),
                    str(h.attempts), str(h.failures), str(h.breaker_rejections),
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        return "\n".join(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            for row in rows
        )
