"""Per-endpoint resilience configuration.

Each of the four provider endpoints gets its own retry policy, breaker
thresholds, and staleness bound, because the providers degrade very
differently: a charger catalog is near-static infrastructure (stale
entries stay useful for hours), while a weather window forecast sours
within its cache slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .breaker import BreakerConfig
from .retry import RetryPolicy

WEATHER = "weather"
BUSY = "busy"
TRAFFIC = "traffic"
CATALOG = "catalog"

ENDPOINTS = (WEATHER, BUSY, TRAFFIC, CATALOG)


@dataclass(frozen=True, slots=True)
class StalenessPolicy:
    """How far past its TTL a cached response may be served on error.

    ``max_stale_h`` bounds the *age* (time since the entry was stored)
    an error-path serve may use; ``None`` means unbounded — reserved for
    quasi-static data like the charger catalog.
    """

    max_stale_h: float | None = 2.0

    def __post_init__(self) -> None:
        if self.max_stale_h is not None and self.max_stale_h <= 0:
            raise ValueError("max_stale_h must be positive (or None for unbounded)")

    def admits(self, age_h: float) -> bool:
        return self.max_stale_h is None or age_h <= self.max_stale_h


@dataclass(frozen=True, slots=True)
class EndpointPolicy:
    """The full resilience stance of one endpoint."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    staleness: StalenessPolicy = field(default_factory=StalenessPolicy)


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Per-endpoint policies plus the seed for retry jitter streams."""

    weather: EndpointPolicy = field(default_factory=EndpointPolicy)
    busy: EndpointPolicy = field(default_factory=EndpointPolicy)
    traffic: EndpointPolicy = field(default_factory=EndpointPolicy)
    catalog: EndpointPolicy = field(
        default_factory=lambda: EndpointPolicy(
            staleness=StalenessPolicy(max_stale_h=None)
        )
    )
    seed: int = 0

    def for_endpoint(self, endpoint: str) -> EndpointPolicy:
        if endpoint not in ENDPOINTS:
            raise KeyError(f"unknown endpoint '{endpoint}' (expected one of {ENDPOINTS})")
        policy: EndpointPolicy = getattr(self, endpoint)
        return policy


#: The default stance used by the EIS when none is supplied.
DEFAULT_RESILIENCE = ResilienceConfig()
