"""Simulated external API services.

The production EIS talks to OpenWeatherMap, PlugShare, Google-Maps busy
times, and a traffic provider.  Offline, these classes wrap the internal
models behind request/response interfaces with call accounting, so the
caching experiments can measure exactly how many upstream calls Dynamic
Caching avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chargers.charger import Charger
from ..chargers.registry import ChargerRegistry
from ..intervals import Interval
from ..estimation.availability import AvailabilityEstimator
from ..estimation.traffic import TrafficModel
from ..estimation.weather import WeatherForecast, WeatherModel
from ..spatial.geometry import Point


@dataclass(slots=True)
class ApiUsage:
    """Upstream call counters, by endpoint."""

    weather_calls: int = 0
    busy_calls: int = 0
    traffic_calls: int = 0
    catalog_calls: int = 0

    @property
    def total(self) -> int:
        return self.weather_calls + self.busy_calls + self.traffic_calls + self.catalog_calls


class WeatherApi:
    """OpenWeatherMap stand-in: forecasts by location and hour."""

    def __init__(self, model: WeatherModel, usage: ApiUsage):
        self._model = model
        self._usage = usage

    def forecast(self, location: Point, target_h: float, now_h: float) -> WeatherForecast:
        """Hourly forecast (the synthetic weather field is spatially
        uniform; location is accepted for interface fidelity)."""
        self._usage.weather_calls += 1
        return self._model.forecast(target_h, now_h)

    def window_forecast(
        self, location: Point, start_h: float, end_h: float, now_h: float
    ) -> Interval:
        """Attenuation hull over a charging window, as one counted call.

        Real forecast providers return multi-hour payloads per request;
        counting the window as a single upstream call keeps the caching
        experiments' accounting faithful."""
        self._usage.weather_calls += 1
        return self._model.window_attenuation(start_h, end_h, now_h)


class BusyTimesApi:
    """Google-Maps-popular-times stand-in: availability per charger."""

    def __init__(self, estimator: AvailabilityEstimator, usage: ApiUsage):
        self._estimator = estimator
        self._usage = usage

    def availability(self, charger: Charger, eta_h: float, now_h: float) -> Interval:
        """Availability interval for one charger at the ETA (counted)."""
        self._usage.busy_calls += 1
        return self._estimator.estimate(charger, eta_h, now_h)


class TrafficApi:
    """Traffic-provider stand-in: congestion level for a region/time."""

    def __init__(self, model: TrafficModel, usage: ApiUsage):
        self._model = model
        self._usage = usage

    def model_snapshot(self, time_h: float) -> TrafficModel:
        """Hand back the traffic model for client-side routing (providers
        expose travel-time matrices; our simulation shares the model
        object and counts the fetch)."""
        self._usage.traffic_calls += 1
        return self._model


class ChargerCatalogApi:
    """PlugShare stand-in: chargers near a location."""

    def __init__(self, registry: ChargerRegistry, usage: ApiUsage):
        self._registry = registry
        self._usage = usage

    def nearby(self, location: Point, radius_km: float) -> list[Charger]:
        """Chargers within ``radius_km`` of ``location`` (counted)."""
        self._usage.catalog_calls += 1
        return self._registry.within_radius(location, radius_km)
