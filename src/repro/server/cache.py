"""Server-side response cache.

The EIS "mitigates the need for redundant API call requests by
intelligently employing a smart caching mechanism" (Section IV).  This is
a TTL keyed cache with spatial bucketing: requests for nearby locations at
nearby times share entries, which is what collapses the per-client API
fan-out when many vehicles traverse the same area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..spatial.geometry import Point


@dataclass(slots=True)
class ResponseCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResponseCache:
    """TTL cache with LRU-ish size bounding.

    Keys are arbitrary hashables; :meth:`spatial_key` buckets locations
    and times so continuous queries quantise onto shared entries.
    """

    def __init__(self, ttl_h: float = 0.5, max_entries: int = 4096):
        if ttl_h <= 0:
            raise ValueError("ttl_h must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.ttl_h = ttl_h
        self.max_entries = max_entries
        self.stats = ResponseCacheStats()
        self._entries: dict[Hashable, tuple[float, Any]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def spatial_key(
        kind: str, location: Point, time_h: float, cell_km: float = 2.0, slot_h: float = 0.25
    ) -> tuple:
        """Bucketed key: same cell + same quarter-hour share an entry."""
        return (
            kind,
            math.floor(location.x / cell_km),
            math.floor(location.y / cell_km),
            math.floor(time_h / slot_h),
        )

    def get_or_compute(self, key: Hashable, now_h: float, compute: Callable[[], Any]) -> Any:
        """Cached value if fresh, else compute, store, and return."""
        entry = self._entries.get(key)
        if entry is not None and now_h - entry[0] <= self.ttl_h:
            self.stats.hits += 1
            return entry[1]
        self.stats.misses += 1
        value = compute()
        self.put(key, now_h, value)
        return value

    def put(self, key: Hashable, now_h: float, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the stalest entry if full."""
        if len(self._entries) >= self.max_entries and key not in self._entries:
            # Evict the stalest entry (smallest timestamp).
            oldest = min(self._entries, key=lambda k: self._entries[k][0])
            del self._entries[oldest]
            self.stats.evictions += 1
        self._entries[key] = (now_h, value)

    def invalidate_older_than(self, now_h: float) -> int:
        """Drop expired entries; returns how many were removed."""
        stale = [k for k, (t, __) in self._entries.items() if now_h - t > self.ttl_h]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Drop every entry and reset statistics."""
        self._entries.clear()
        self.stats = ResponseCacheStats()
