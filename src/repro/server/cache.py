"""Server-side response cache.

The EIS "mitigates the need for redundant API call requests by
intelligently employing a smart caching mechanism" (Section IV).  This is
a TTL keyed cache with spatial bucketing: requests for nearby locations at
nearby times share entries, which is what collapses the per-client API
fan-out when many vehicles traverse the same area.

Beyond freshness, the cache is the middle rung of the resilience
degradation ladder (``docs/resilience.md``): entries past their TTL are
retained up to the eviction bound and can be served *stale* when the
upstream provider is failing — ``lookup_stale`` with an explicit
staleness bound, so serve-stale-on-error is bounded, observable
(``stats.stale_hits``), and never silently substitutes for a fresh
response on the happy path.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..spatial.geometry import Point


@dataclass(slots=True)
class ResponseCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stale_hits: int = 0
    compute_errors: int = 0
    #: ``get_or_compute`` callers that joined another caller's in-flight
    #: computation instead of starting their own (single-flight).
    coalesced: int = 0

    @property
    def hit_rate(self) -> float:
        # Each counter is read exactly once: re-reading ``hits`` for the
        # numerator after a concurrent increment slipped between the two
        # reads can report a rate above 1.0 (the torn-read bug).
        hits = self.hits
        total = hits + self.misses
        return hits / total if total else 0.0


@dataclass(frozen=True, slots=True)
class CachedValue:
    """A cache read: the stored value plus how old it is."""

    value: Any
    stored_h: float
    age_h: float


@dataclass(slots=True)
class _Entry:
    """One stored response: write time, last read time, payload."""

    stored_h: float
    last_access_h: float
    value: Any


class _Flight:
    """One in-progress ``get_or_compute`` computation (single-flight).

    The leader computes and publishes either ``value`` or ``error``
    before setting ``done``; followers block on ``done`` and then read
    whichever was published.  The fields are written exactly once,
    before the event is set, so followers never observe a torn flight.
    """

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class ResponseCache:
    """TTL cache with a true LRU size bound.

    Keys are arbitrary hashables; :meth:`spatial_key` buckets locations
    and times so continuous queries quantise onto shared entries.
    Recency is tracked per *access* (reads refresh it), so a hot entry
    is never evicted in favour of a cold one merely because the cold one
    was written later.
    """

    def __init__(self, ttl_h: float = 0.5, max_entries: int = 4096):
        if ttl_h <= 0:
            raise ValueError("ttl_h must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.ttl_h = ttl_h
        self.max_entries = max_entries
        self.stats = ResponseCacheStats()
        self._entries: dict[Hashable, _Entry] = {}
        # Entries, stats, and the in-flight table mutate under one
        # re-entrant lock; ``compute()`` itself always runs outside it so
        # a slow upstream never blocks unrelated keys.
        self._lock = threading.RLock()
        self._inflight: dict[Hashable, _Flight] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def spatial_key(
        kind: str, location: Point, time_h: float, cell_km: float = 2.0, slot_h: float = 0.25
    ) -> tuple:
        """Bucketed key: same cell + same quarter-hour share an entry."""
        return (
            kind,
            math.floor(location.x / cell_km),
            math.floor(location.y / cell_km),
            math.floor(time_h / slot_h),
        )

    def _fresh_entry(self, key: Hashable, now_h: float) -> _Entry | None:
        entry = self._entries.get(key)
        if entry is not None and now_h - entry.stored_h <= self.ttl_h:
            return entry
        return None

    def lookup(self, key: Hashable, now_h: float) -> CachedValue | None:
        """Fresh entry under ``key`` or None; counts a hit or a miss."""
        with self._lock:
            entry = self._fresh_entry(key, now_h)
            if entry is not None:
                self.stats.hits += 1
                entry.last_access_h = now_h
                return CachedValue(entry.value, entry.stored_h, now_h - entry.stored_h)
            self.stats.misses += 1
            return None

    def lookup_stale(
        self, key: Hashable, now_h: float, max_stale_h: float | None = None
    ) -> CachedValue | None:
        """Any entry under ``key`` no older than ``max_stale_h``.

        The error-path read of the degradation ladder: unlike
        :meth:`lookup` it ignores the TTL (``max_stale_h=None`` accepts
        any retained entry) and counts ``stale_hits`` instead of
        hits/misses, so serve-stale never distorts the hit rate the
        caching experiments measure.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            age_h = now_h - entry.stored_h
            if max_stale_h is not None and age_h > max_stale_h:
                return None
            self.stats.stale_hits += 1
            entry.last_access_h = now_h
            return CachedValue(entry.value, entry.stored_h, max(0.0, age_h))

    def get_or_compute(self, key: Hashable, now_h: float, compute: Callable[[], Any]) -> Any:
        """Cached value if fresh, else compute, store, and return.

        Concurrent callers for the same key **coalesce into one
        computation** (single-flight): the first caller becomes the
        leader and runs ``compute()`` outside the cache lock; later
        callers park on the flight and receive the leader's value (or
        error) when it lands, counted as ``coalesced`` — never as extra
        hits, misses, or errors, so one upstream computation reconciles
        to exactly one miss (or one ``compute_errors``) however many
        requests rode it.

        A ``compute()`` failure is counted as ``compute_errors`` (not a
        miss), leaves any previous entry in place for serve-stale, and
        propagates to the caller — the cache never swallows upstream
        errors and never stores a placeholder for a failed computation.
        """
        with self._lock:
            entry = self._fresh_entry(key, now_h)
            if entry is not None:
                self.stats.hits += 1
                entry.last_access_h = now_h
                return entry.value
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[key] = flight
            else:
                self.stats.coalesced += 1
        if not leader:
            flight.done.wait(timeout=None)
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            value = compute()
        except BaseException as error:
            with self._lock:
                if isinstance(error, Exception):
                    self.stats.compute_errors += 1
                self._inflight.pop(key, None)
            # Publish before waking followers so they never read a torn
            # flight; the flight is already unlinked, so a retry starts
            # a fresh computation instead of inheriting this failure.
            flight.error = error
            flight.done.set()
            raise
        with self._lock:
            self.stats.misses += 1
            self.put(key, now_h, value)
            self._inflight.pop(key, None)
        flight.value = value
        flight.done.set()
        return value

    def put(self, key: Hashable, now_h: float, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the least recently
        *used* entry if full (reads refresh recency, so hot entries
        survive write bursts)."""
        with self._lock:
            if len(self._entries) >= self.max_entries and key not in self._entries:
                coldest = min(
                    self._entries, key=lambda k: self._entries[k].last_access_h
                )
                del self._entries[coldest]
                self.stats.evictions += 1
            self._entries[key] = _Entry(stored_h=now_h, last_access_h=now_h, value=value)

    def invalidate_older_than(self, now_h: float) -> int:
        """Drop expired entries; returns how many were removed."""
        with self._lock:
            stale = [
                k
                for k, entry in self._entries.items()
                if now_h - entry.stored_h > self.ttl_h
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Drop every entry and reset statistics (in-flight computations
        are left to land; their stores repopulate the fresh cache)."""
        with self._lock:
            self._entries.clear()
            self.stats = ResponseCacheStats()
