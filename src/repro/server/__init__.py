"""Server/client architecture simulation: EIS, client, deployment modes."""

from .api import ApiUsage, BusyTimesApi, ChargerCatalogApi, TrafficApi, WeatherApi
from .cache import ResponseCache, ResponseCacheStats
from .client import EcoChargeClient, SessionStats
from .eis import EcoChargeInformationServer, RegionSnapshot
from .sessions import DurableSessionService
from .modes import (
    LATENCY_MODELS,
    DeploymentMode,
    LatencyModel,
    ModeReport,
    compare_modes,
    simulate_mode,
)

__all__ = [
    "ApiUsage",
    "BusyTimesApi",
    "ChargerCatalogApi",
    "DeploymentMode",
    "DurableSessionService",
    "EcoChargeClient",
    "EcoChargeInformationServer",
    "LATENCY_MODELS",
    "LatencyModel",
    "ModeReport",
    "RegionSnapshot",
    "ResponseCache",
    "ResponseCacheStats",
    "SessionStats",
    "TrafficApi",
    "WeatherApi",
    "compare_modes",
    "simulate_mode",
]
