"""Server/client architecture simulation: EIS, client, deployment modes."""

from .api import ApiUsage, BusyTimesApi, ChargerCatalogApi, TrafficApi, WeatherApi
from .cache import ResponseCache, ResponseCacheStats
from .client import EcoChargeClient, SessionStats
from .eis import EcoChargeInformationServer, RegionSnapshot
from .scheduling import (
    AdmissionController,
    BrownoutController,
    BrownoutLevel,
    Outcome,
    Priority,
    RankRequest,
    RankResponse,
    SchedulerConfig,
    SchedulerStats,
    ShardedScheduler,
    TokenBucket,
)
from .sessions import DurableSessionService
from .modes import (
    LATENCY_MODELS,
    DeploymentMode,
    LatencyModel,
    ModeReport,
    compare_modes,
    simulate_mode,
)

__all__ = [
    "AdmissionController",
    "ApiUsage",
    "BrownoutController",
    "BrownoutLevel",
    "BusyTimesApi",
    "ChargerCatalogApi",
    "DeploymentMode",
    "DurableSessionService",
    "EcoChargeClient",
    "EcoChargeInformationServer",
    "LATENCY_MODELS",
    "LatencyModel",
    "ModeReport",
    "Outcome",
    "Priority",
    "RankRequest",
    "RankResponse",
    "RegionSnapshot",
    "ResponseCache",
    "ResponseCacheStats",
    "SchedulerConfig",
    "SchedulerStats",
    "SessionStats",
    "ShardedScheduler",
    "TokenBucket",
    "TrafficApi",
    "WeatherApi",
    "compare_modes",
    "simulate_mode",
]
