"""EcoCharge Information Server (EIS).

The centralised aggregation tier of the architecture (Figure 4): it fronts
the external APIs, consolidates per-region data into snapshots, and caches
responses so that many clients traversing the same area do not multiply
upstream calls.

All upstream access flows through a
:class:`~repro.resilience.gateway.ResilienceGateway` (retry with backoff,
circuit breakers, serve-stale, interval-widening fallback — see
``docs/resilience.md``), so the EIS keeps answering, with honestly wider
intervals, while providers misbehave.  ``repro-check`` rule R7 keeps raw
API access out of this tier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chargers.charger import Charger
from ..core.environment import ChargingEnvironment
from ..intervals import Interval
from ..estimation.weather import WeatherForecast
from ..resilience import (
    FaultInjector,
    FaultTolerantEnvironment,
    HealthRegistry,
    ResilienceConfig,
    ResilienceGateway,
)
from ..spatial.geometry import Point
from .api import ApiUsage
from .cache import ResponseCache


@dataclass(frozen=True)
class RegionSnapshot:
    """Consolidated per-request payload handed to a client.

    Contains everything the client-side Algorithm 1 needs for one
    Filtering pass: the nearby chargers, the weather forecast for the ETA
    window, and per-charger availability intervals.

    ``degraded_components`` names the endpoints (``"catalog"``,
    ``"weather"``, ``"busy"``) whose data was served stale or from the
    conservative fallback rather than live; an empty tuple means a fully
    fresh snapshot.
    """

    origin: Point
    radius_km: float
    time_h: float
    chargers: tuple[Charger, ...]
    weather: WeatherForecast
    availability: dict[int, Interval]
    degraded_components: tuple[str, ...] = ()

    @property
    def charger_count(self) -> int:
        return len(self.chargers)

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded_components)


class EcoChargeInformationServer:
    """The EIS: resilience gateway + response cache + snapshot assembly."""

    def __init__(
        self,
        environment: ChargingEnvironment,
        cache_ttl_h: float = 0.5,
        resilience: ResilienceConfig | None = None,
        injector: FaultInjector | None = None,
    ):
        self.environment = environment
        self.usage = ApiUsage()
        self.cache = ResponseCache(ttl_h=cache_ttl_h)
        self.gateway = ResilienceGateway.build(
            environment,
            usage=self.usage,
            cache=self.cache,
            config=resilience,
            injector=injector,
        )
        # Server-side ranking (Mode 2) runs over the same degradation
        # ladder the snapshot path uses, so central answers survive
        # provider faults exactly like client-assembled ones.
        self.serving_environment = FaultTolerantEnvironment(environment, self.gateway)
        self.requests_served = 0
        self._rankers: dict[tuple, object] = {}

    @property
    def health(self) -> HealthRegistry:
        """Per-endpoint resilience counters (alongside ``self.usage``)."""
        return self.gateway.health

    def region_snapshot(
        self, origin: Point, radius_km: float, eta_h: float, now_h: float
    ) -> RegionSnapshot:
        """Serve one consolidated region request (cached).

        Degraded snapshots are returned but never cached: the moment the
        providers recover, the next request in the same bucket gets fresh
        data instead of inheriting a degraded payload for a full TTL.
        """
        self.requests_served += 1
        with self.environment.telemetry.span(
            "server.region_snapshot", tier="server", radius_km=radius_km
        ):
            key = self.cache.spatial_key("region", origin, eta_h) + (round(radius_km, 1),)
            cached = self.cache.lookup(key, now_h)
            if cached is not None:
                return cached.value
            snapshot = self._build_snapshot(origin, radius_km, eta_h, now_h)
            if not snapshot.is_degraded:
                self.cache.put(key, now_h, snapshot)
            return snapshot

    def _build_snapshot(
        self, origin: Point, radius_km: float, eta_h: float, now_h: float
    ) -> RegionSnapshot:
        degraded: set[str] = set()
        catalog = self.gateway.nearby(origin, radius_km, now_h)
        if catalog.level.is_degraded:
            degraded.add("catalog")
        chargers = tuple(catalog.value)
        weather = self.gateway.forecast(origin, eta_h, now_h)
        if weather.level.is_degraded:
            degraded.add("weather")
        availability: dict[int, Interval] = {}
        for charger in chargers:
            fetch = self.gateway.availability(charger, eta_h, now_h)
            if fetch.level.is_degraded:
                degraded.add("busy")
            availability[charger.charger_id] = fetch.value
        return RegionSnapshot(
            origin=origin,
            radius_km=radius_km,
            time_h=eta_h,
            chargers=chargers,
            weather=weather.value,
            availability=availability,
            degraded_components=tuple(sorted(degraded)),
        )

    def traffic_model(self, now_h: float):
        """Traffic feed for client-side routing (cached per time slot;
        on full feed failure clients keep the on-board static map)."""
        return self.gateway.traffic_snapshot(now_h).value

    def upstream_calls_saved(self) -> int:
        """How many upstream API calls the response cache absorbed."""
        return self.cache.stats.hits

    # -- Mode 2: server-side ranking ------------------------------------------

    def rank_trip(self, trip, config=None):
        """Mode-2 entry point: compute the whole CkNN-EC answer centrally.

        The client sends only the trip and receives ready Offering Tables;
        one ranker is kept per (k, R, Q, weights) configuration so
        concurrent vehicles with the same preferences share nothing but
        code (each call resets the per-trip dynamic cache).
        """
        from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
        from ..core.ranking import run_over_trip
        from ..observability.tracing import trip_correlation_id

        config = config if config is not None else EcoChargeConfig()
        key = (
            config.k, config.radius_km, config.range_km,
            config.weights.as_tuple(), config.segment_km,
        )
        ranker = self._rankers.get(key)
        if ranker is None:
            ranker = EcoChargeRanker(self.serving_environment, config)
            self._rankers[key] = ranker
        self.requests_served += 1
        with self.serving_environment.telemetry.span(
            "server.rank_trip",
            tier="server",
            trace_id=trip_correlation_id(trip),
            k=config.k,
        ):
            return run_over_trip(
                ranker, self.serving_environment, trip, segment_km=config.segment_km
            )
