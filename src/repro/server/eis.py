"""EcoCharge Information Server (EIS).

The centralised aggregation tier of the architecture (Figure 4): it fronts
the external APIs, consolidates per-region data into snapshots, and caches
responses so that many clients traversing the same area do not multiply
upstream calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chargers.charger import Charger
from ..core.environment import ChargingEnvironment
from ..intervals import Interval
from ..estimation.weather import WeatherForecast
from ..spatial.geometry import Point
from .api import ApiUsage, BusyTimesApi, ChargerCatalogApi, TrafficApi, WeatherApi
from .cache import ResponseCache


@dataclass(frozen=True)
class RegionSnapshot:
    """Consolidated per-request payload handed to a client.

    Contains everything the client-side Algorithm 1 needs for one
    Filtering pass: the nearby chargers, the weather forecast for the ETA
    window, and per-charger availability intervals.
    """

    origin: Point
    radius_km: float
    time_h: float
    chargers: tuple[Charger, ...]
    weather: WeatherForecast
    availability: dict[int, Interval]

    @property
    def charger_count(self) -> int:
        return len(self.chargers)


class EcoChargeInformationServer:
    """The EIS: external APIs + response cache + snapshot assembly."""

    def __init__(
        self,
        environment: ChargingEnvironment,
        cache_ttl_h: float = 0.5,
    ):
        self.environment = environment
        self.usage = ApiUsage()
        self.cache = ResponseCache(ttl_h=cache_ttl_h)
        self._weather_api = WeatherApi(environment.weather, self.usage)
        self._busy_api = BusyTimesApi(environment.availability, self.usage)
        self._traffic_api = TrafficApi(environment.traffic, self.usage)
        self._catalog_api = ChargerCatalogApi(environment.registry, self.usage)
        self.requests_served = 0
        self._rankers: dict[tuple, object] = {}

    def region_snapshot(
        self, origin: Point, radius_km: float, eta_h: float, now_h: float
    ) -> RegionSnapshot:
        """Serve one consolidated region request (cached)."""
        self.requests_served += 1
        key = self.cache.spatial_key("region", origin, eta_h) + (round(radius_km, 1),)
        return self.cache.get_or_compute(
            key, now_h, lambda: self._build_snapshot(origin, radius_km, eta_h, now_h)
        )

    def _build_snapshot(
        self, origin: Point, radius_km: float, eta_h: float, now_h: float
    ) -> RegionSnapshot:
        chargers = tuple(self._catalog_api.nearby(origin, radius_km))
        weather = self._weather_api.forecast(origin, eta_h, now_h)
        availability = {
            charger.charger_id: self._busy_api.availability(charger, eta_h, now_h)
            for charger in chargers
        }
        return RegionSnapshot(
            origin=origin,
            radius_km=radius_km,
            time_h=eta_h,
            chargers=chargers,
            weather=weather,
            availability=availability,
        )

    def traffic_model(self, now_h: float):
        """Traffic feed for client-side routing (cached per time slot)."""
        key = ("traffic", int(now_h * 4))
        return self.cache.get_or_compute(
            key, now_h, lambda: self._traffic_api.model_snapshot(now_h)
        )

    def upstream_calls_saved(self) -> int:
        """How many upstream API calls the response cache absorbed."""
        return self.cache.stats.hits

    # -- Mode 2: server-side ranking ------------------------------------------

    def rank_trip(self, trip, config=None):
        """Mode-2 entry point: compute the whole CkNN-EC answer centrally.

        The client sends only the trip and receives ready Offering Tables;
        one ranker is kept per (k, R, Q, weights) configuration so
        concurrent vehicles with the same preferences share nothing but
        code (each call resets the per-trip dynamic cache).
        """
        from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
        from ..core.ranking import run_over_trip

        config = config if config is not None else EcoChargeConfig()
        key = (
            config.k, config.radius_km, config.range_km,
            config.weights.as_tuple(), config.segment_km,
        )
        ranker = self._rankers.get(key)
        if ranker is None:
            ranker = EcoChargeRanker(self.environment, config)
            self._rankers[key] = ranker
        self.requests_served += 1
        return run_over_trip(ranker, self.environment, trip, segment_km=config.segment_km)
