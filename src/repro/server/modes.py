"""The three deployment modes and their latency simulation (Section IV).

* **Mode 1** — EcoCharge runs in the vehicle's embedded OS: ranking is
  local, data snapshots travel over the vehicle's connectivity.
* **Mode 2** — the EIS computes centrally: per segment, the client sends a
  small request and receives a ready Offering Table.
* **Mode 3** — an edge device (phone) computes: like Mode 1 but with
  phone-class compute (slower CPU factor) and cellular latency.

The simulation composes measured local compute time with a parametric
network model, yielding the end-to-end per-segment latency each mode
delivers — the quantity that motivates the paper's claim that continuous
recomputation is feasible "on the edge devices".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
from ..core.environment import ChargingEnvironment
from ..core.ranking import run_over_trip
from ..network.path import Trip
from ..observability.clock import SYSTEM_CLOCK, Clock


class DeploymentMode(enum.Enum):
    """Where EcoCharge executes (the paper's Modes 1/2/3)."""

    EMBEDDED = "mode1-embedded"
    SERVER = "mode2-server"
    EDGE = "mode3-edge"


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Parametric network/compute model per mode.

    ``round_trip_ms`` is one request/response exchange; ``per_kb_ms``
    models payload serialisation; ``compute_factor`` scales local compute
    (embedded automotive SoCs and phones are slower than the server).
    """

    round_trip_ms: float
    per_kb_ms: float
    compute_factor: float

    def transfer_ms(self, payload_kb: float) -> float:
        """Round trip plus payload serialisation time for ``payload_kb``."""
        return self.round_trip_ms + self.per_kb_ms * payload_kb


#: Defaults: automotive modem, datacenter server, cellular phone.
LATENCY_MODELS: dict[DeploymentMode, LatencyModel] = {
    DeploymentMode.EMBEDDED: LatencyModel(round_trip_ms=60.0, per_kb_ms=0.08, compute_factor=2.0),
    DeploymentMode.SERVER: LatencyModel(round_trip_ms=45.0, per_kb_ms=0.05, compute_factor=1.0),
    DeploymentMode.EDGE: LatencyModel(round_trip_ms=90.0, per_kb_ms=0.12, compute_factor=3.0),
}

#: Rough payload sizes (KB) for the simulated exchanges.
SNAPSHOT_KB_PER_CHARGER = 0.25
OFFERING_TABLE_KB = 2.0
REQUEST_KB = 0.5


@dataclass(frozen=True, slots=True)
class ModeReport:
    """Per-trip latency breakdown for one mode."""

    mode: DeploymentMode
    segments: int
    compute_ms: float
    network_ms: float

    @property
    def total_ms(self) -> float:
        return self.compute_ms + self.network_ms

    @property
    def per_segment_ms(self) -> float:
        return self.total_ms / self.segments if self.segments else 0.0


def simulate_mode(
    environment: ChargingEnvironment,
    trip: Trip,
    mode: DeploymentMode,
    config: EcoChargeConfig | None = None,
    latency: LatencyModel | None = None,
    clock: Clock = SYSTEM_CLOCK,
) -> ModeReport:
    """Run EcoCharge over a trip as deployed in ``mode``.

    Local compute is *measured* (wall clock around the actual ranking) and
    scaled by the mode's compute factor; network cost is modelled from the
    number of snapshot/request exchanges the mode performs:

    * EMBEDDED / EDGE: one region snapshot per *regenerated* table (cache
      hits are free — the whole point of Dynamic Caching on-device);
    * SERVER: one request + one table download per segment.
    """
    config = config if config is not None else EcoChargeConfig()
    latency = latency if latency is not None else LATENCY_MODELS[mode]

    ranker = EcoChargeRanker(environment, config)
    started = clock.monotonic()
    run = run_over_trip(ranker, environment, trip, segment_km=config.segment_km)
    compute_s = clock.monotonic() - started

    segments = len(run.tables)
    regenerated = sum(1 for table in run.tables if not table.is_adapted)
    snapshot_kb = REQUEST_KB + SNAPSHOT_KB_PER_CHARGER * max(
        1, len(environment.registry)
    ) * min(1.0, config.radius_km / max(environment.registry.bounds.width, 1.0))

    if mode is DeploymentMode.SERVER:
        network_ms = segments * (
            latency.transfer_ms(REQUEST_KB) + latency.transfer_ms(OFFERING_TABLE_KB)
        )
        compute_ms = compute_s * 1000.0 * latency.compute_factor
    else:
        network_ms = regenerated * latency.transfer_ms(snapshot_kb)
        compute_ms = compute_s * 1000.0 * latency.compute_factor

    return ModeReport(
        mode=mode, segments=segments, compute_ms=compute_ms, network_ms=network_ms
    )


def compare_modes(
    environment: ChargingEnvironment,
    trip: Trip,
    config: EcoChargeConfig | None = None,
) -> dict[DeploymentMode, ModeReport]:
    """All three modes over the same trip."""
    return {
        mode: simulate_mode(environment, trip, mode, config) for mode in DeploymentMode
    }
