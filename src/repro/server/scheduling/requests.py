"""Request/response envelopes for the concurrent serving tier.

A :class:`RankRequest` is one tenant's continuous-query submission: the
trip to rank, a priority class, and the :class:`Deadline` minted by the
scheduler at admission.  A :class:`RankResponse` is the scheduler's
final word on it — exactly one response per submitted request, with an
:class:`Outcome` that says *how* it was resolved: served fresh, served
stale (never silently — ``stale_age_h`` is populated), or shed/rejected
at a named point.  The one-response-per-request identity is what makes
the scheduler's accounting reconcile exactly (see
``SchedulerStats.accounting_ok``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum

from ...core.offering import OfferingTable
from ...network.path import Trip
from ...observability.deadline import Deadline


class Priority(IntEnum):
    """Shedding order under pressure: lowest value goes first."""

    #: Prefetch/maintenance work; first to be shed.
    BACKGROUND = 0
    #: Periodic re-rank of an ongoing trip; shed under brownout.
    REFRESH = 1
    #: A driver waiting on the answer; shed only at the deadline.
    INTERACTIVE = 2


class Outcome(Enum):
    """How one request left the system (exactly one per request)."""

    #: Freshly computed Offering Tables, inside the deadline.
    COMPLETED = "completed"
    #: Served from the shard's response cache past its TTL — explicitly
    #: marked stale, never passed off as fresh.
    STALE = "stale"
    #: Deadline expired (pre-dispatch, at an in-flight checkpoint, or at
    #: serve time) and no acceptable stale answer existed.
    SHED_DEADLINE = "shed-deadline"
    #: Displaced from a full bounded queue by higher-priority work (or
    #: refused because everything queued outranked it).
    SHED_QUEUE = "shed-queue"
    #: Low-priority work dropped at admission while the shard was in the
    #: shed-refresh brownout level.
    SHED_BROWNOUT = "shed-brownout"
    #: Tenant token bucket empty at admission.
    REJECTED_RATE = "rejected-rate"
    #: Global concurrency limit reached at admission.
    REJECTED_CAPACITY = "rejected-capacity"
    #: The ranking itself failed past every resilience rung.
    FAILED = "failed"

    @property
    def is_served(self) -> bool:
        """True when the client received Offering Tables."""
        return self in (Outcome.COMPLETED, Outcome.STALE)

    @property
    def is_shed(self) -> bool:
        return self in (
            Outcome.SHED_DEADLINE,
            Outcome.SHED_QUEUE,
            Outcome.SHED_BROWNOUT,
        )

    @property
    def is_rejected(self) -> bool:
        return self in (Outcome.REJECTED_RATE, Outcome.REJECTED_CAPACITY)


@dataclass(frozen=True, slots=True)
class RankRequest:
    """One tenant's ranking submission, stamped at admission."""

    request_id: int
    tenant: str
    trip: Trip
    deadline: Deadline
    priority: Priority = Priority.INTERACTIVE
    #: Scheduler-clock instant the request entered ``submit`` (monotonic
    #: seconds); queue wait and total latency are measured from here.
    submitted_s: float = 0.0
    #: Live-graph epoch observed at admission (0 = static network).  An
    #: in-flight request completes on this epoch; if the graph moves past
    #: it before the answer is cached, the scheduler serves the result
    #: (computed consistently on the admission epoch) but never caches it
    #: as fresh for the new epoch.
    epoch: int = 0


@dataclass(frozen=True, slots=True)
class RankResponse:
    """The scheduler's single, final answer for one request.

    ``tables`` is non-empty only for served outcomes; ``stale_age_h`` is
    set exactly when ``outcome is Outcome.STALE``, so a deadline-expired
    request can never masquerade as a fresh answer.  ``brownout`` is the
    shard's brownout level (``BrownoutLevel`` value) at resolution time
    and ``widened`` records whether the served intervals were widened by
    the degradation ladder.
    """

    request: RankRequest
    outcome: Outcome
    tables: tuple[OfferingTable, ...] = ()
    shard: int = -1
    brownout: int = 0
    widened: bool = False
    stale_age_h: float | None = None
    latency_s: float = 0.0
    detail: str = ""
    #: True when the tables were served from a *previous* live-graph
    #: epoch with intervals widened by the per-incident worst-case bound
    #: (the sound degraded mode of docs/live_graph.md).  Always paired
    #: with ``widened`` and a served outcome.
    epoch_degraded: bool = False

    def __post_init__(self) -> None:
        if self.outcome is Outcome.STALE and self.stale_age_h is None:
            raise ValueError("a stale response must carry its staleness age")
        if self.outcome is not Outcome.STALE and self.stale_age_h is not None:
            raise ValueError("only stale responses carry a staleness age")
        if self.tables and not self.outcome.is_served:
            raise ValueError(f"{self.outcome.value} responses must not carry tables")
        if self.epoch_degraded and not self.outcome.is_served:
            raise ValueError("epoch-degraded responses must be served responses")
        if self.epoch_degraded and not self.widened:
            raise ValueError("epoch-degraded responses carry widened intervals")

    @property
    def served_fresh(self) -> bool:
        return self.outcome is Outcome.COMPLETED
