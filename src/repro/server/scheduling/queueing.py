"""Bounded per-shard request queues with priority-aware shedding.

This module is the owning home of the serving tier's only queues —
repro-check rule R15 (backpressure-bypass) forbids unbounded queue
construction anywhere else in ``server/`` precisely so that backpressure
cannot be silently reintroduced by a convenience ``Queue()``.

The queue is a capacity-bounded priority heap.  ``offer`` never blocks
and never grows past capacity: when full it sheds the *worst* resident
(lowest priority, then latest arrival) if the newcomer outranks it, or
refuses the newcomer itself — either way exactly one request is shed
and reported to the caller, so the scheduler's accounting stays exact.
``poll`` pops the *best* resident (highest priority, then earliest
deadline, then FIFO) with a mandatory timeout — a worker waiting on an
idle shard must remain stoppable.
"""

from __future__ import annotations

import heapq
import math
import threading

from .requests import Priority, RankRequest


class BoundedShardQueue:
    """One shard's bounded, priority-ordered request queue."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        #: (-priority, due_s, seq) heap entries: highest priority first,
        #: then the most urgent deadline, then arrival order.
        self._heap: list[tuple[tuple[float, float, int], RankRequest]] = []
        self._seq = 0
        self.peak_depth = 0
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def depth(self) -> int:
        return len(self)

    def _key(self, request: RankRequest, seq: int) -> tuple[float, float, int]:
        due_s = request.deadline.due_s
        return (-float(request.priority), due_s if math.isfinite(due_s) else math.inf, seq)

    def offer(self, request: RankRequest) -> RankRequest | None:
        """Admit ``request``; returns the shed victim when full, else None.

        The victim may be ``request`` itself (everything already queued
        outranks it).  The queue depth never exceeds ``capacity`` — the
        no-unbounded-growth invariant the burst chaos test asserts.
        """
        with self._ready:
            if len(self._heap) < self.capacity:
                self._push(request)
                self._ready.notify()
                return None
            victim_at = self._worst_index()
            victim = self._heap[victim_at][1]
            if victim.priority >= request.priority:
                # Nothing queued is more expendable than the newcomer.
                return request
            self._heap.pop(victim_at)
            heapq.heapify(self._heap)
            self._push(request)
            self._ready.notify()
            return victim

    def _push(self, request: RankRequest) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._key(request, self._seq), request))
        if len(self._heap) > self.peak_depth:
            self.peak_depth = len(self._heap)

    def _worst_index(self) -> int:
        """Index of the most expendable resident: lowest priority, and
        among equals the latest arrival (highest seq).  The stored key
        leads with ``-priority``, so the maximum of ``(key[0], seq)``
        is exactly the lowest-priority, latest-queued entry."""
        return max(
            range(len(self._heap)),
            key=lambda i: (self._heap[i][0][0], self._heap[i][0][2]),
        )

    def pop(self) -> RankRequest | None:
        """Best request now, or None when empty (deterministic drain mode)."""
        with self._lock:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[1]

    def poll(self, timeout_s: float) -> RankRequest | None:
        """Best request, waiting up to ``timeout_s`` for one to arrive.

        The timeout is mandatory (and must be positive): an indefinitely
        parked worker thread could never be stopped, which is exactly
        the blocking pattern rule R15 exists to keep out of this tier.
        """
        if timeout_s <= 0:
            raise ValueError("poll needs a positive timeout")
        with self._ready:
            if not self._heap:
                self._ready.wait(timeout_s)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[1]

    def drain(self) -> list[RankRequest]:
        """Remove and return everything queued, best first (shutdown)."""
        out: list[RankRequest] = []
        with self._lock:
            while self._heap:
                out.append(heapq.heappop(self._heap)[1])
        return out
