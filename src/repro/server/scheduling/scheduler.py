"""The sharded, overload-safe request scheduler of the serving tier.

Requests are sharded by trip correlation ID over N workers; each shard
owns one :class:`ChargingEnvironment` (and therefore one DistanceEngine
and one DynamicCache per ranker configuration) plus a bounded priority
queue and a per-shard :class:`ResponseCache` of finished Offering
Tables.  Shard affinity is what makes the per-trip caches effective
*and* contention-free: the same trip always lands on the same engine.

The request path is a fixed gauntlet, every exit of which produces
exactly one :class:`RankResponse`:

``submit`` — admission control (per-tenant token bucket, then the
global concurrency cap), deadline pre-check, brownout refresh-shedding,
then the bounded queue (which may displace a lower-priority resident).

``execute`` — overload chaos hooks (stuck worker, slow shard), deadline
checkpoints at dispatch and at serve time, the brownout ladder
(serve-stale, interval widening), and the ranking itself with the
deadline token installed on the shard's environment so expiry
propagates out of the engine/pool/segment loops.

The scheduler runs in two modes.  *Deterministic* mode (`run_one` /
`drain`) executes on the caller's thread in shard round-robin order —
this is what the chaos tests and the experiment driver use, on a
``SimulatedClock``, so every run replays exactly.  *Threaded* mode
(`start` / `stop`) parks one worker per shard on its queue with a
bounded ``poll`` timeout, which is how the wall-clock benchmark
measures real contention.

``SchedulerStats`` is the exact source of truth, mutated only under the
scheduler lock; the (deliberately lock-free) metrics registry receives
*mirrored absolutes* via :func:`repro.observability.mirror_scheduler_stats`,
and reconciliation demands exact equality between the two.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ...core.ranking import run_over_trip
from ...network.epochs import GraphEpochManager
from ...network.path import Trip
from ...observability.clock import Clock
from ...observability.deadline import NEVER_EXPIRES, Deadline, DeadlineExpired
from ...observability.recorder import NOOP_TELEMETRY, Telemetry
from ...observability.tracing import trip_correlation_id
from ...resilience.errors import UpstreamError
from ..cache import ResponseCache
from .admission import AdmissionController
from .brownout import (
    BrownoutController,
    BrownoutLevel,
    floor_for_alert_severities,
    widen_table,
    widen_table_for_epoch,
)
from .queueing import BoundedShardQueue
from .requests import Outcome, Priority, RankRequest, RankResponse

if TYPE_CHECKING:
    from ...core.ecocharge import EcoChargeConfig
    from ...core.environment import ChargingEnvironment
    from ...observability.alerts import AlertManager
    from ...resilience.faults import FaultInjector


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """Capacity knobs of the serving tier.

    Defaults are sized for the simulated fleet harness; the load
    experiments sweep them (``python -m repro.experiments serving``).
    """

    #: Worker shards; each owns an environment, engine, and caches.
    shards: int = 4
    #: Bounded depth of each shard's priority queue.
    queue_capacity: int = 16
    #: Global cap on requests in the system (queued + executing).
    max_inflight: int = 64
    #: Sustained per-tenant admission rate (token-bucket refill).
    tenant_rate_per_s: float = 8.0
    #: Per-tenant burst allowance (bucket capacity).
    tenant_burst: float = 16.0
    #: Deadline budget stamped on each request at submission.
    deadline_budget_s: float = 30.0
    #: TTL of the per-shard response cache (fresh-serving window).
    response_ttl_h: float = 0.25
    #: Oldest acceptable stale answer during brownout/deadline fallback.
    max_stale_h: float = 2.0
    #: Queue-fill fraction that switches a shard to serve-stale.
    serve_stale_at: float = 0.5
    #: Queue-fill fraction past which served intervals are widened.
    widen_at: float = 0.75
    #: Queue-fill fraction past which refresh/background work is shed.
    shed_refresh_at: float = 0.9
    #: ``Interval.widened`` factor applied at the WIDEN brownout level.
    widen_factor: float = 0.5
    #: Worker queue-poll timeout in threaded mode (bounded, stoppable).
    poll_timeout_s: float = 0.05
    #: When True, :meth:`ShardedScheduler.apply_alert_state` lets firing
    #: SLO alerts raise the brownout floor (alert-driven degradation);
    #: off by default so existing queue-depth-only behaviour is exact.
    alert_driven_brownout: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.deadline_budget_s <= 0:
            raise ValueError("deadline_budget_s must be positive")
        if self.response_ttl_h <= 0:
            raise ValueError("response_ttl_h must be positive")
        if self.max_stale_h <= 0:
            raise ValueError("max_stale_h must be positive")
        if self.poll_timeout_s <= 0:
            raise ValueError("poll_timeout_s must be positive")


@dataclass(slots=True)
class SchedulerStats:
    """Exact request accounting; every submission resolves to exactly one
    terminal counter, so :meth:`accounting_ok` can demand equality.

    Mutated only by the owning scheduler under its lock (repro-check
    rule R13 polices outside writers); the metrics registry carries a
    mirrored projection, never the source of truth.
    """

    submitted: int = 0
    completed: int = 0
    served_stale: int = 0
    sheds_deadline: int = 0
    sheds_queue: int = 0
    sheds_brownout: int = 0
    rejected_rate: int = 0
    rejected_capacity: int = 0
    failed: int = 0
    #: Served responses whose intervals were widened (subset of
    #: completed + served_stale, not a terminal outcome).
    widened: int = 0
    #: Served responses answered from a *previous* live-graph epoch with
    #: epoch-bound widening (subset of ``widened``, not a terminal).
    epoch_degraded: int = 0
    #: Fresh results discarded from the response cache because the graph
    #: epoch moved while they were being computed — served to their
    #: requester but never cached as fresh (not a terminal).
    stale_epoch_rejections: int = 0

    _TERMINALS = (
        "completed",
        "served_stale",
        "sheds_deadline",
        "sheds_queue",
        "sheds_brownout",
        "rejected_rate",
        "rejected_capacity",
        "failed",
    )

    def resolved(self) -> int:
        """Requests that reached a terminal outcome."""
        return sum(getattr(self, name) for name in self._TERMINALS)

    def accounting_ok(self, pending: int = 0) -> bool:
        """Every submission is resolved or still pending — no request is
        ever dropped without a response, and none is counted twice."""
        return self.submitted == self.resolved() + pending

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (experiment report rows)."""
        return {name: getattr(self, name) for name in self._TERMINALS} | {
            "submitted": self.submitted,
            "widened": self.widened,
            "epoch_degraded": self.epoch_degraded,
            "stale_epoch_rejections": self.stale_epoch_rejections,
        }


_OUTCOME_COUNTERS = {
    Outcome.COMPLETED: "completed",
    Outcome.STALE: "served_stale",
    Outcome.SHED_DEADLINE: "sheds_deadline",
    Outcome.SHED_QUEUE: "sheds_queue",
    Outcome.SHED_BROWNOUT: "sheds_brownout",
    Outcome.REJECTED_RATE: "rejected_rate",
    Outcome.REJECTED_CAPACITY: "rejected_capacity",
    Outcome.FAILED: "failed",
}


class _Shard:
    """One worker shard: environment + rankers + queue + response cache."""

    def __init__(
        self,
        shard_id: int,
        environment: "ChargingEnvironment",
        config: SchedulerConfig,
    ) -> None:
        self.shard_id = shard_id
        self.environment = environment
        self.queue = BoundedShardQueue(config.queue_capacity)
        self.responses = ResponseCache(ttl_h=config.response_ttl_h)
        # One ranker per (k, R, Q, weights, segment) configuration, as in
        # EcoChargeInformationServer.rank_trip: same-preference requests
        # share the shard's dynamic cache; the cache itself is built by
        # core (rule R9 keeps cache construction out of the server tier).
        self._rankers: dict[tuple, object] = {}

    def ranker_for(self, config: "EcoChargeConfig"):
        from ...core.ecocharge import EcoChargeRanker

        key = (
            config.k,
            config.radius_km,
            config.range_km,
            config.weights.as_tuple(),
            config.segment_km,
        )
        ranker = self._rankers.get(key)
        if ranker is None:
            ranker = EcoChargeRanker(self.environment, config)
            self._rankers[key] = ranker
        return ranker


class ShardedScheduler:
    """Admission → bounded queues → deadline-aware execution → response.

    ``environment_factory`` is called once per shard so that engines and
    dynamic caches are never shared across workers (shard affinity, not
    locking, is the concurrency story for the heavy state; the stats
    objects are additionally lock-protected for the mirrored counters).
    """

    def __init__(
        self,
        environment_factory: Callable[[], "ChargingEnvironment"],
        config: SchedulerConfig | None = None,
        ranker_config: "EcoChargeConfig | None" = None,
        clock: Clock | None = None,
        telemetry: Telemetry | None = None,
        injector: "FaultInjector | None" = None,
        epochs: GraphEpochManager | None = None,
    ) -> None:
        from ...core.ecocharge import EcoChargeConfig

        self.config = config if config is not None else SchedulerConfig()
        self.ranker_config = (
            ranker_config if ranker_config is not None else EcoChargeConfig()
        )
        self.telemetry = telemetry if telemetry is not None else NOOP_TELEMETRY
        self.clock: Clock = clock if clock is not None else self.telemetry.clock
        self.injector = injector
        self.stats = SchedulerStats()
        self.admission = AdmissionController(
            self.clock,
            rate_per_s=self.config.tenant_rate_per_s,
            burst=self.config.tenant_burst,
            max_inflight=self.config.max_inflight,
        )
        self.brownout = BrownoutController(
            serve_stale_at=self.config.serve_stale_at,
            widen_at=self.config.widen_at,
            shed_refresh_at=self.config.shed_refresh_at,
            widen_factor=self.config.widen_factor,
        )
        self.shards = tuple(
            _Shard(i, environment_factory(), self.config)
            for i in range(self.config.shards)
        )
        #: Live-graph epoch manager shared by every shard (None = static
        #: network).  Requests are stamped with the epoch at admission;
        #: the response cache stores ``(epoch, tables)`` pairs so a
        #: post-bump lookup can widen (or refuse) an old-epoch answer.
        self.epochs = epochs
        if epochs is not None:
            for shard in self.shards:
                shard.environment.set_epochs(epochs)
        self._lock = threading.Lock()
        self._completed: list[RankResponse] = []
        self._next_id = 0
        self._workers: list[threading.Thread] = []
        self._stop_event = threading.Event()

    # -- submission ---------------------------------------------------------

    def shard_for(self, trip: Trip) -> int:
        """Deterministic shard affinity by trip correlation ID (CRC32 —
        Python's ``hash`` of a str is salted per process, which would
        break replay determinism across runs)."""
        return zlib.crc32(trip_correlation_id(trip).encode("ascii")) % len(self.shards)

    def submit(
        self,
        tenant: str,
        trip: Trip,
        priority: Priority = Priority.INTERACTIVE,
        budget_s: float | None = None,
    ) -> RankRequest:
        """Run the admission gauntlet; always returns the stamped request.

        A request that fails admission is *finished immediately* (its
        terminal response is queued for ``drain_responses``); one that
        passes is parked on its shard's bounded queue, possibly
        displacing a lower-priority resident (finished as SHED_QUEUE).
        """
        now_s = self.clock.monotonic()
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self.stats.submitted += 1
        deadline = Deadline(
            self.clock,
            budget_s if budget_s is not None else self.config.deadline_budget_s,
            issued_s=now_s,
        )
        request = RankRequest(
            request_id=request_id,
            tenant=tenant,
            trip=trip,
            deadline=deadline,
            priority=priority,
            submitted_s=now_s,
            epoch=self._current_epoch(),
        )
        rejection = self.admission.try_admit(tenant)
        if rejection == "rate":
            self._finish(self._response(request, Outcome.REJECTED_RATE), admitted=False)
            return request
        if rejection == "capacity":
            self._finish(
                self._response(request, Outcome.REJECTED_CAPACITY), admitted=False
            )
            return request
        shard = self.shards[self.shard_for(trip)]
        if deadline.expired:
            self._finish(
                self._response(request, Outcome.SHED_DEADLINE, shard=shard.shard_id),
                admitted=True,
            )
            return request
        level = self.brownout.level_for(len(shard.queue), self.config.queue_capacity)
        if level >= BrownoutLevel.SHED_REFRESH and priority < Priority.INTERACTIVE:
            self._finish(
                self._response(
                    request,
                    Outcome.SHED_BROWNOUT,
                    shard=shard.shard_id,
                    brownout=int(level),
                    detail="refresh shed at admission",
                ),
                admitted=True,
            )
            return request
        victim = shard.queue.offer(request)
        if victim is not None:
            # Exactly one request (the newcomer or a displaced resident)
            # leaves the system here; both held an admission slot, and the
            # finish releases exactly one.
            self._finish(
                self._response(
                    victim,
                    Outcome.SHED_QUEUE,
                    shard=shard.shard_id,
                    detail="displaced from full queue"
                    if victim is not request
                    else "queue full",
                ),
                admitted=True,
            )
        return request

    def _current_epoch(self) -> int:
        """The live-graph epoch (0 when no manager is attached)."""
        return self.epochs.epoch if self.epochs is not None else 0

    # -- alert-driven brownout ----------------------------------------------

    def apply_alert_state(self, alerts: "AlertManager") -> BrownoutLevel:
        """Let firing SLO alerts raise the brownout floor (flag-gated).

        Called on the SLO evaluation cadence by the driver that owns the
        alert manager; a no-op (floor unchanged at NORMAL) unless
        ``SchedulerConfig.alert_driven_brownout`` is on.  The mapping
        from firing severities to floor lives in
        :func:`~.brownout.floor_for_alert_severities`; returns the floor
        now in effect.
        """
        if not self.config.alert_driven_brownout:
            return self.brownout.alert_floor
        floor = floor_for_alert_severities(
            [severity for _name, severity in alerts.firing()]
        )
        self.brownout.set_alert_floor(floor)
        return floor

    # -- execution ----------------------------------------------------------

    def run_one(self, shard_id: int) -> bool:
        """Deterministic mode: execute one queued request on the caller's
        thread.  Returns False when the shard's queue is empty."""
        shard = self.shards[shard_id]
        request = shard.queue.pop()
        if request is None:
            return False
        self._run_request(shard, request)
        return True

    def drain(self) -> int:
        """Round-robin every shard until all queues are empty; returns how
        many requests were executed (deterministic mode)."""
        executed = 0
        progressed = True
        while progressed:
            progressed = False
            for shard_id in range(len(self.shards)):
                if self.run_one(shard_id):
                    executed += 1
                    progressed = True
        return executed

    def _run_request(self, shard: _Shard, request: RankRequest) -> None:
        """Execute and resolve one popped request.

        A popped request must reach :meth:`_finish` exactly once whatever
        ``_execute`` raises — a leaked exception would kill the shard's
        worker thread, strand the admission slot, and break the exact
        accounting invariant — so unexpected errors resolve as FAILED
        instead of propagating.

        With live telemetry the execution is wrapped in a
        ``scheduler.request`` root span carrying the trip correlation ID
        and tenant/shard/outcome attributes — the markers the tail
        sampler (:mod:`repro.observability.sampling`) classifies on, and
        the root the ranker/engine/gateway spans nest under.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            response = self._guarded_execute(shard, request)
        else:
            with telemetry.span(
                "scheduler.request",
                tier="server",
                trace_id=trip_correlation_id(request.trip),
                tenant=request.tenant,
                shard=shard.shard_id,
                priority=request.priority.name,
            ) as span:
                response = self._guarded_execute(shard, request)
                if span is not None:
                    span.attributes["outcome"] = response.outcome.value
                    span.attributes["brownout"] = response.brownout
                    span.attributes["widened"] = response.widened
                    span.attributes["epoch_degraded"] = response.epoch_degraded
                    if response.outcome is Outcome.FAILED:
                        span.status = "error"
                        span.error = response.detail
        self._finish(response, admitted=True)

    def _guarded_execute(self, shard: _Shard, request: RankRequest) -> RankResponse:
        try:
            return self._execute(shard, request)
        except Exception as error:  # noqa: BLE001 — the shard must survive
            return self._response(
                request,
                Outcome.FAILED,
                shard=shard.shard_id,
                detail=f"unexpected {type(error).__name__}: {error}",
            )

    def _execute(self, shard: _Shard, request: RankRequest) -> RankResponse:
        deadline = request.deadline
        level = self.brownout.level_for(len(shard.queue), self.config.queue_capacity)
        key = ("tables", trip_correlation_id(request.trip))
        if self.injector is not None:
            if self.injector.shard_stuck(shard.shard_id):
                # A wedged worker burns the whole budget producing nothing.
                self._burn_budget(deadline)
                return self._degraded(
                    shard, request, level, key, detail="stuck worker"
                )
            delay_s = self.injector.shard_delay_s(shard.shard_id)
            if delay_s > 0.0:
                self._advance_clock(delay_s)
        try:
            deadline.checkpoint("dispatch")
        except DeadlineExpired as expiry:
            return self._degraded(shard, request, level, key, detail=str(expiry))
        if level >= BrownoutLevel.SERVE_STALE:
            stale = self._stale_response(shard, request, level, key)
            if stale is not None:
                return stale
        environment = shard.environment
        environment.set_cancellation(deadline)
        # The epoch this execution dispatches on.  Specs capture their
        # factor snapshot at construction, so the computed tables price
        # this epoch (or, if a bump lands mid-request in threaded mode, a
        # prefix of segments on it) — the serve-time re-check below
        # decides whether the result may be cached as fresh.
        epoch_at_dispatch = self._current_epoch()
        try:
            run = run_over_trip(
                shard.ranker_for(self.ranker_config),
                environment,
                request.trip,
                segment_km=self.ranker_config.segment_km,
                cancellation=deadline,
            )
            # A result that lands after the deadline must never be served
            # as fresh — the serve-time checkpoint converts it to a
            # stale/shed outcome like any other expiry.
            deadline.checkpoint("serve")
        except DeadlineExpired as expiry:
            return self._degraded(shard, request, level, key, detail=str(expiry))
        except UpstreamError as error:
            return self._response(
                request,
                Outcome.FAILED,
                shard=shard.shard_id,
                brownout=int(level),
                detail=f"{type(error).__name__}: {error}",
            )
        finally:
            environment.set_cancellation(NEVER_EXPIRES)
        tables = tuple(run.tables)
        epoch_at_serve = self._current_epoch()
        epoch_degraded = False
        bound = (
            self.epochs.bound_since(epoch_at_dispatch)
            if epoch_at_serve != epoch_at_dispatch
            else (1.0, 1.0)
        )
        if bound == (1.0, 1.0):
            # No *weight-changing* transition landed since dispatch (same
            # epoch, or only no-op bumps — whose ratio bound is exactly
            # (1, 1)), so the tables are the fresh truth for the serve
            # epoch too.  The response cache always stores the *unwidened*
            # answer: brownout widening is a per-response serving
            # decision, not a property of the computed result.  Stamp it
            # with the clock *after* the ranking run (and any chaos
            # delay) — a pre-execution timestamp would make the entry look
            # older than it is and shorten its staleness window.  The
            # epoch rides along so a post-bump stale lookup can widen it
            # soundly.
            now_h = self.clock.monotonic() / 3600.0
            shard.responses.put(key, now_h, (epoch_at_serve, tables))
        else:
            # The graph's weights moved while this request was executing:
            # the tables are consistent for their compute epoch(s) but
            # must never be cached as fresh for the new one.  Serve them
            # to their requester widened by the worst-case bound over the
            # missed transitions (a vacuous bound saturates derouting to
            # [0, 1] — still sound, never a lie).
            self._note_stale_epoch_rejection()
            lo, hi = bound
            tables = tuple(
                widen_table_for_epoch(table, lo, hi, self.ranker_config.weights)
                for table in tables
            )
            epoch_degraded = True
        widened = epoch_degraded
        if level >= BrownoutLevel.WIDEN:
            tables = self._widen_tables(tables)
            widened = True
        return self._response(
            request,
            Outcome.COMPLETED,
            tables=tables,
            shard=shard.shard_id,
            brownout=int(level),
            widened=widened,
            epoch_degraded=epoch_degraded,
        )

    def _stale_response(
        self,
        shard: _Shard,
        request: RankRequest,
        level: BrownoutLevel,
        key: tuple,
    ) -> RankResponse | None:
        """A bounded-staleness answer from the shard's response cache, or
        None when nothing acceptable is retained.

        Entries are ``(epoch, tables)`` pairs.  An entry from an older
        live-graph epoch is served only with its derouting intervals
        widened by :meth:`GraphEpochManager.bound_since` — and refused
        outright (None, so the caller computes fresh on the live graph)
        when that bound is vacuous, e.g. a closure landed since.
        """
        now_h = self.clock.monotonic() / 3600.0
        cached = shard.responses.lookup_stale(key, now_h, self.config.max_stale_h)
        if cached is None:
            return None
        entry_epoch, tables = cached.value
        tables = tuple(tables)
        widened = False
        epoch_degraded = False
        current = self._current_epoch()
        if entry_epoch != current:
            lo, hi = self.epochs.bound_since(entry_epoch)
            if hi == float("inf") or lo == 0.0:
                return None
            if (lo, hi) != (1.0, 1.0):
                # Only no-op bumps landed since the entry was cached when
                # the bound is exactly (1, 1): the entry is still the
                # fresh truth and needs no widening.
                tables = tuple(
                    widen_table_for_epoch(table, lo, hi, self.ranker_config.weights)
                    for table in tables
                )
                widened = True
                epoch_degraded = True
        if level >= BrownoutLevel.WIDEN:
            tables = self._widen_tables(tables)
            widened = True
        return self._response(
            request,
            Outcome.STALE,
            tables=tables,
            shard=shard.shard_id,
            brownout=int(level),
            widened=widened,
            epoch_degraded=epoch_degraded,
            stale_age_h=cached.age_h,
        )

    def _degraded(
        self,
        shard: _Shard,
        request: RankRequest,
        level: BrownoutLevel,
        key: tuple,
        detail: str,
    ) -> RankResponse:
        """Expiry/stuck resolution: prefer an honest stale answer over an
        empty one, else shed on the deadline."""
        stale = self._stale_response(shard, request, max(level, BrownoutLevel.SERVE_STALE), key)
        if stale is not None:
            return stale
        return self._response(
            request,
            Outcome.SHED_DEADLINE,
            shard=shard.shard_id,
            brownout=int(level),
            detail=detail,
        )

    def _note_stale_epoch_rejection(self) -> None:
        """Count one fresh result barred from the response cache by an
        epoch bump that landed while it was computing (mutated under the
        scheduler lock like every stats counter)."""
        with self._lock:
            self.stats.stale_epoch_rejections += 1

    def _widen_tables(self, tables: tuple) -> tuple:
        factor = self.brownout.widen_factor
        weights = self.ranker_config.weights
        return tuple(widen_table(table, factor, weights) for table in tables)

    def _burn_budget(self, deadline: Deadline) -> None:
        remaining = deadline.remaining_s()
        if remaining > 0.0 and remaining != float("inf"):
            self._advance_clock(remaining + 1e-6)

    def _advance_clock(self, seconds: float) -> None:
        # Only a SimulatedClock can be advanced; on the system clock the
        # chaos delay is a modelling no-op (R10 keeps ``time.sleep`` out
        # of this tier, and a benchmark must not actually stall).
        advance = getattr(self.clock, "advance", None)
        if advance is not None:
            advance(seconds)

    # -- resolution ---------------------------------------------------------

    def _response(self, request: RankRequest, outcome: Outcome, **kwargs) -> RankResponse:
        latency_s = max(0.0, self.clock.monotonic() - request.submitted_s)
        return RankResponse(
            request=request, outcome=outcome, latency_s=latency_s, **kwargs
        )

    def _finish(self, response: RankResponse, admitted: bool) -> None:
        """The single resolution point: exactly one per request.

        Stats mutation, native telemetry, response delivery, and the
        admission-slot release all happen here, under the scheduler lock
        — which is also what keeps the (lock-free by design) metrics
        registry single-writer in threaded mode.
        """
        with self._lock:
            counter = _OUTCOME_COUNTERS[response.outcome]
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            if response.widened:
                self.stats.widened += 1
            if response.epoch_degraded:
                self.stats.epoch_degraded += 1
            self.telemetry.inc(
                "ecocharge_scheduler_requests_total", outcome=response.outcome.value
            )
            self.telemetry.observe(
                "ecocharge_scheduler_latency_seconds", response.latency_s
            )
            if self.telemetry.enabled:
                # Dimensional families: per-tenant (cardinality-guarded
                # in the registry) and per-shard outcome counts, plus the
                # served-latency histogram with an exemplar linking its
                # bucket to this request's trace.
                outcome = response.outcome.value
                self.telemetry.inc(
                    "ecocharge_tenant_requests_total",
                    tenant=response.request.tenant,
                    outcome=outcome,
                )
                self.telemetry.inc(
                    "ecocharge_shard_requests_total",
                    shard=str(response.shard),
                    outcome=outcome,
                )
                if response.outcome.is_served:
                    self.telemetry.observe(
                        "ecocharge_served_latency_seconds",
                        response.latency_s,
                        exemplar=trip_correlation_id(response.request.trip),
                    )
            self._completed.append(response)
        if admitted:
            self.admission.release()

    def drain_responses(self) -> list[RankResponse]:
        """Take every resolved response accumulated since the last call."""
        with self._lock:
            out = self._completed
            self._completed = []
        return out

    # -- accounting ---------------------------------------------------------

    @property
    def pending(self) -> int:
        return sum(len(shard.queue) for shard in self.shards)

    def accounting_ok(self) -> bool:
        """Exact identity: submitted == resolved + still-queued."""
        return self.stats.accounting_ok(pending=self.pending)

    def peak_depths(self) -> tuple[int, ...]:
        """Per-shard high-water queue depths (bounded-growth evidence)."""
        return tuple(shard.queue.peak_depth for shard in self.shards)

    def epoch_cache_invalidations(self) -> int:
        """Entries dropped by live-graph epoch fencing across every
        shard's engine and dynamic caches — the incident-chaos evidence
        that a no-op epoch bump costs nothing."""
        total = 0
        for shard in self.shards:
            total += shard.environment.engine.stats.epoch_invalidations
            total += sum(
                ranker.cache_stats.epoch_invalidations
                for ranker in shard._rankers.values()
            )
        return total

    # -- threaded mode ------------------------------------------------------

    def start(self) -> None:
        """Spawn one worker thread per shard (wall-clock benchmark mode)."""
        if self._workers:
            raise RuntimeError("scheduler already started")
        self._stop_event.clear()
        for shard in self.shards:
            worker = threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"rank-shard-{shard.shard_id}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    def _worker_loop(self, shard: _Shard) -> None:
        while not self._stop_event.is_set():
            request = shard.queue.poll(self.config.poll_timeout_s)
            if request is None:
                continue
            self._run_request(shard, request)

    def stop(self, drain: bool = True) -> None:
        """Stop workers; with ``drain`` the remaining queued requests are
        then executed on the caller's thread (every admitted request still
        gets its one response).

        Workers are stopped *before* draining: a shard's environment and
        rankers are single-threaded by design, so the caller must never
        execute on a shard while its worker might still be mid-request —
        two concurrent ``_execute`` calls would race on the environment's
        cancellation token and could serve one request against the other's
        deadline.
        """
        self._stop_event.set()
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        if drain:
            while self.pending:
                for shard in self.shards:
                    request = shard.queue.pop()
                    if request is not None:
                        self._run_request(shard, request)
