"""Admission control: per-tenant token buckets + a global concurrency cap.

The first gate a request meets.  Both limiters are deliberately
*non-blocking* — ``try_acquire``/``try_enter`` return ``False`` instead
of waiting, so an overloaded scheduler rejects in O(1) rather than
stacking callers on a lock (repro-check rule R15 polices indefinite
blocking in this tier).  Time comes exclusively from the injected
:class:`~repro.observability.clock.Clock`, which is what makes the
hypothesis/stateful tests of the refill arithmetic deterministic under
``SimulatedClock``.
"""

from __future__ import annotations

import threading

from ...observability.clock import Clock


class TokenBucket:
    """Classic token bucket on an injected clock.

    ``rate_per_s`` tokens accrue per second of ``clock.monotonic()``
    time, capped at ``burst``; each admitted request spends one token
    (or ``amount``).  The bucket starts full, so a tenant can always
    burst up to ``burst`` requests after an idle period, then settles to
    the sustained rate.
    """

    def __init__(self, rate_per_s: float, burst: float, clock: Clock) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_s = clock.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now_s: float) -> None:
        # Monotonic clocks never run backwards, but a SimulatedClock
        # shared with auto-ticking telemetry can hand two readers the
        # same instant; clamp so a zero elapsed never drains tokens.
        elapsed_s = max(0.0, now_s - self._refilled_s)
        self._tokens = min(float(self.burst), self._tokens + elapsed_s * self.rate_per_s)
        self._refilled_s = now_s

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens if available; never blocks."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        with self._lock:
            self._refill(self._clock.monotonic())
            if self._tokens + 1e-12 >= amount:
                self._tokens -= amount
                return True
            return False

    def refund(self, amount: float = 1.0) -> None:
        """Return ``amount`` tokens (capped at ``burst``) for a spend that
        did not result in admission."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        with self._lock:
            self._tokens = min(float(self.burst), self._tokens + amount)

    @property
    def available(self) -> float:
        """Tokens available right now (refilled to the current instant)."""
        with self._lock:
            self._refill(self._clock.monotonic())
            return self._tokens


class ConcurrencyLimiter:
    """Global cap on requests concurrently *in the system* (queued or
    executing).  Non-blocking: ``try_enter`` refuses instead of waiting."""

    def __init__(self, max_inflight: int) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self.max_inflight = max_inflight
        self._inflight = 0
        self.peak_inflight = 0
        self._lock = threading.Lock()

    def try_enter(self) -> bool:
        with self._lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            if self._inflight > self.peak_inflight:
                self.peak_inflight = self._inflight
            return True

    def exit(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("exit() without a matching try_enter()")
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight


class AdmissionController:
    """Per-tenant token buckets in front of the global limiter.

    ``try_admit`` returns ``None`` on admission (the global slot is then
    *held* and must be released exactly once via :meth:`release` when
    the request leaves the system) or the rejection reason (``"rate"`` /
    ``"capacity"``).  Rate is checked first: a tenant hammering past its
    quota is rejected on its own budget before it can contend for — and
    exhaust — the shared capacity.
    """

    def __init__(
        self,
        clock: Clock,
        rate_per_s: float,
        burst: float,
        max_inflight: int,
    ) -> None:
        self._clock = clock
        self._rate_per_s = rate_per_s
        self._burst = burst
        self.limiter = ConcurrencyLimiter(max_inflight)
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket_for(self, tenant: str) -> TokenBucket:
        """The (lazily created) token bucket owned by ``tenant``."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self._rate_per_s, self._burst, self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def try_admit(self, tenant: str) -> str | None:
        """``None`` = admitted (slot held); else the rejection reason."""
        bucket = self.bucket_for(tenant)
        if not bucket.try_acquire():
            return "rate"
        if not self.limiter.try_enter():
            # A capacity rejection is the system's fault, not the
            # tenant's: refund the token so a well-behaved tenant is not
            # also rate-starved during a global overload episode.
            bucket.refund()
            return "capacity"
        return None

    def release(self) -> None:
        """Give back the global slot of one admitted request."""
        self.limiter.exit()

    @property
    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._buckets))
