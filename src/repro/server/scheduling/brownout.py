"""Brownout: graceful degradation under queue pressure.

Instead of collapsing when a shard's queue fills, the scheduler walks a
degradation ladder keyed to queue depth — the serving-tier twin of the
resilience gateway's upstream ladder (``docs/resilience.md``):

1. **NORMAL** — compute fresh answers.
2. **SERVE_STALE** — prefer a bounded-staleness answer from the shard's
   response cache over fresh computation (explicitly marked stale).
3. **WIDEN** — additionally widen every served interval: the system
   keeps answering, but honestly reports the extra uncertainty that
   skipped refreshes introduce.  Widening is *sound by construction* —
   a widened interval contains the original, and every original
   forecast interval contains its ground truth — so a brownout answer
   is never a lie, just a humbler truth.
4. **SHED_REFRESH** — additionally drop refresh/background submissions
   at admission, reserving the remaining capacity for interactive work.

Thresholds are deterministic fractions of queue capacity, so a seeded
burst replays the exact same brownout trajectory every run.
"""

from __future__ import annotations

import math
from enum import IntEnum

from ...core.intervals import Interval
from ...core.offering import OfferingTable, build_table
from ...core.scoring import ComponentScores, Weights, sc_score


class BrownoutLevel(IntEnum):
    """The degradation ladder, ordered: higher levels include the lower
    ones' behaviour (WIDEN also serves stale; SHED_REFRESH does both)."""

    NORMAL = 0
    SERVE_STALE = 1
    WIDEN = 2
    SHED_REFRESH = 3


class BrownoutController:
    """Maps a shard's queue depth to a :class:`BrownoutLevel`.

    ``level_for(depth, capacity)`` is a pure function of its arguments
    *and* the controller's explicit alert floor — there is still no
    hidden hysteresis, which keeps the chaos tests' expected
    trajectories derivable by hand.  The floor (default NORMAL, i.e. no
    effect) is the alert-driven degradation hook: when the scheduler's
    ``alert_driven_brownout`` flag is on, firing SLO alerts raise the
    floor via :meth:`set_alert_floor` and the served level is the *max*
    of the queue-derived level and the floor — burn-rate evidence can
    only deepen degradation, never mask queue pressure.
    """

    def __init__(
        self,
        serve_stale_at: float = 0.5,
        widen_at: float = 0.75,
        shed_refresh_at: float = 0.9,
        widen_factor: float = 0.5,
    ) -> None:
        if not 0.0 < serve_stale_at <= widen_at <= shed_refresh_at <= 1.0:
            raise ValueError(
                "brownout thresholds must satisfy 0 < serve_stale <= widen <= shed <= 1"
            )
        if widen_factor < 0:
            raise ValueError("widen_factor must be non-negative")
        self.serve_stale_at = serve_stale_at
        self.widen_at = widen_at
        self.shed_refresh_at = shed_refresh_at
        self.widen_factor = widen_factor
        self.alert_floor = BrownoutLevel.NORMAL

    def set_alert_floor(self, level: BrownoutLevel) -> None:
        """Install the alert-driven minimum ladder level (NORMAL clears)."""
        self.alert_floor = BrownoutLevel(level)

    def level_for(self, depth: int, capacity: int) -> BrownoutLevel:
        """The ladder level for a queue at ``depth`` of ``capacity``."""
        if capacity < 1:
            raise ValueError("capacity must be positive")
        fill = depth / capacity
        if fill >= self.shed_refresh_at:
            level = BrownoutLevel.SHED_REFRESH
        elif fill >= self.widen_at:
            level = BrownoutLevel.WIDEN
        elif fill >= self.serve_stale_at:
            level = BrownoutLevel.SERVE_STALE
        else:
            level = BrownoutLevel.NORMAL
        return max(level, self.alert_floor)


def floor_for_alert_severities(severities: "list[str] | tuple[str, ...]") -> BrownoutLevel:
    """The brownout floor implied by the currently-firing alert set.

    Deterministic mapping, deliberately conservative: a single firing
    **page** (fast-burn) alert forces serve-stale — shed load by
    answering from cache; two or more pages force interval widening on
    top.  **Ticket** (slow-burn) alerts alone do not degrade serving —
    they exist to open work items, not to change behaviour.
    """
    pages = sum(1 for severity in severities if severity == "page")
    if pages >= 2:
        return BrownoutLevel.WIDEN
    if pages == 1:
        return BrownoutLevel.SERVE_STALE
    return BrownoutLevel.NORMAL


def widen_table(table: OfferingTable, factor: float, weights: Weights) -> OfferingTable:
    """``table`` with every component interval widened by ``factor``.

    Each entry's L/A/D interval grows via ``Interval.widened`` (which
    contains the original by contract) and is clamped back into the
    admissible ``[0, 1]`` range; the ground truth lay inside both the
    original interval and ``[0, 1]``, so it lies inside the widened
    clamp too — interval soundness survives brownout.  Scores are
    re-evaluated from the widened components with the same Eq. 4-5
    weights so ``sc_min``/``sc_max`` honestly span the wider scenarios,
    while the *ordering* of entries is preserved: the ranking decision
    was made at compute time and widening must not quietly re-rank.
    """
    rows = []
    for entry in table.entries:
        sustainable = entry.sustainable.widened(factor).clamp(0.0, 1.0)
        availability = entry.availability.widened(factor).clamp(0.0, 1.0)
        derouting = entry.derouting.widened(factor).clamp(0.0, 1.0)
        score = sc_score(
            ComponentScores(
                charger_id=entry.charger_id,
                sustainable=sustainable,
                availability=availability,
                derouting=derouting,
            ),
            weights,
        )
        rows.append(
            (score, entry.charger, sustainable, availability, derouting, entry.eta_h)
        )
    return build_table(
        segment_index=table.segment_index,
        origin=table.origin,
        generated_at_h=table.generated_at_h,
        radius_km=table.radius_km,
        ranked=rows,
        adapted_from=table.adapted_from,
    )


def widen_table_for_epoch(
    table: OfferingTable, ratio_lo: float, ratio_hi: float, weights: Weights
) -> OfferingTable:
    """``table`` (computed on an older live-graph epoch) with derouting
    intervals widened to cover every graph the incidents since could have
    produced.

    ``[ratio_lo, ratio_hi]`` is the :meth:`GraphEpochManager.bound_since`
    bracket: any shortest-path cost ``d`` on the old epoch satisfies
    ``d_new ∈ [ratio_lo * d, ratio_hi * d]`` on the new one, and the
    normalised derouting component is a clamp of ``hours / max_h`` — a
    monotone map — so scaling the old interval's endpoints by the bracket
    and re-clamping to ``[0, 1]`` yields an interval that contains the
    fresh-epoch value (widened ⊇ true).  ``L`` and ``A`` do not depend on
    the road graph and pass through untouched.  Entry *order* is
    preserved exactly as :func:`widen_table` does: the ranking decision
    stays the admission epoch's, honestly re-scored over the wider
    scenarios.

    A closure makes ``ratio_hi`` infinite (the bound is vacuous — the
    caller should recompute on the live graph instead); if called anyway
    the non-finite endpoint saturates to the admissible bound, which is
    still sound for the ``[0, 1]``-clamped component.

    **Adapted tables degrade to the vacuous bound.**  The multiplicative
    bracket is a theorem about pure sums of shortest-path legs; a table
    built by dynamic-cache adaptation (``adapted_from`` set) carries a
    straight-line *additive* shift on every derouting value, and for a
    negative shift ``ratio_lo * d`` can overshoot the fresh value
    (scaling the shift term, which incidents never touched).  Rather
    than serve a plausible-but-unsound interval, adapted tables get the
    full ``[0, 1]`` derouting range — maximally uncertain, trivially
    containing the fresh epoch, and still honestly re-scored.
    """
    if math.isnan(ratio_lo) or math.isnan(ratio_hi):
        raise ValueError("epoch ratio bounds must not be NaN")
    if not 0.0 <= ratio_lo <= 1.0 <= ratio_hi:
        raise ValueError("epoch ratio bounds must bracket 1.0 with ratio_lo >= 0")
    if table.adapted_from is not None and (ratio_lo, ratio_hi) != (1.0, 1.0):
        ratio_lo, ratio_hi = 0.0, math.inf
    rows = []
    for entry in table.entries:
        lo = entry.derouting.lo * ratio_lo
        hi = entry.derouting.hi * ratio_hi
        if math.isinf(hi) or math.isnan(hi):  # inf * 0 -> nan; saturate
            hi = 1.0
        derouting = Interval(lo, hi).clamp(0.0, 1.0)
        score = sc_score(
            ComponentScores(
                charger_id=entry.charger_id,
                sustainable=entry.sustainable,
                availability=entry.availability,
                derouting=derouting,
            ),
            weights,
        )
        rows.append(
            (score, entry.charger, entry.sustainable, entry.availability, derouting, entry.eta_h)
        )
    return build_table(
        segment_index=table.segment_index,
        origin=table.origin,
        generated_at_h=table.generated_at_h,
        radius_km=table.radius_km,
        ranked=rows,
        adapted_from=table.adapted_from,
    )
