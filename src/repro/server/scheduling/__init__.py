"""Overload-safe concurrent serving: scheduling, admission, backpressure.

The multi-tenant serving tier in front of the ranking stack (see
``docs/serving.md``).  Requests run a fixed gauntlet — per-tenant token
buckets and a global concurrency cap (:mod:`.admission`), bounded
per-shard priority queues (:mod:`.queueing`, the tier's only sanctioned
queues under repro-check rule R15), deadline checkpoints threaded down
to the engine (:mod:`repro.observability.deadline`), and a brownout
ladder that degrades honestly — serve-stale, widened intervals — before
it ever drops interactive work (:mod:`.brownout`).  The
:class:`ShardedScheduler` (:mod:`.scheduler`) owns the gauntlet and the
exact one-response-per-request accounting.
"""

from .admission import AdmissionController, ConcurrencyLimiter, TokenBucket
from .brownout import (
    BrownoutController,
    BrownoutLevel,
    floor_for_alert_severities,
    widen_table,
)
from .queueing import BoundedShardQueue
from .requests import Outcome, Priority, RankRequest, RankResponse
from .scheduler import SchedulerConfig, SchedulerStats, ShardedScheduler

__all__ = [
    "AdmissionController",
    "BoundedShardQueue",
    "BrownoutController",
    "BrownoutLevel",
    "floor_for_alert_severities",
    "ConcurrencyLimiter",
    "Outcome",
    "Priority",
    "RankRequest",
    "RankResponse",
    "SchedulerConfig",
    "SchedulerStats",
    "ShardedScheduler",
    "TokenBucket",
    "widen_table",
]
