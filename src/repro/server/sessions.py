"""Durable Mode-2 sessions at the server tier.

``EcoChargeInformationServer.rank_trip`` answers a whole trip in one
shot; this service makes that continuous query *durable*: a vehicle
opens a named session, the server journals every segment transaction,
and if the serving process dies mid-trip the next process resumes the
session and finishes the remaining segments with bitwise-identical
Offering Tables.

Discipline (enforced by ``repro-check`` rule R9): the server tier never
touches session state — cache checkpoints, offering-table lists, journal
files — directly.  Every mutation flows through
:class:`~repro.durability.SessionManager` transactions, so the journal
is a complete record by construction.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from ..durability import DurabilityConfig, RankingSession, SessionManager

if TYPE_CHECKING:
    from ..core.ecocharge import EcoChargeConfig
    from ..core.ranking import RankingRun
    from ..network.path import Trip
    from .eis import EcoChargeInformationServer


class DurableSessionService:
    """Open / resume / close durable ranking sessions for one EIS.

    Sessions rank over the server's fault-tolerant serving environment,
    so the degradation ladder and the durability tier compose: an
    upstream outage degrades a segment (journaled as such), a process
    crash loses nothing that was committed.
    """

    def __init__(
        self,
        server: "EcoChargeInformationServer",
        root: Path | str,
        durability: DurabilityConfig | None = None,
    ) -> None:
        self.server = server
        self.manager = SessionManager(
            root, durability, injector=server.gateway.injector
        )

    def open(
        self,
        session_id: str,
        trip: "Trip",
        config: "EcoChargeConfig | None" = None,
    ) -> RankingSession:
        """Register a durable session for ``trip`` (header committed)."""
        self.server.requests_served += 1
        return self.manager.open(
            session_id, self.server.serving_environment, trip, config
        )

    def resume(self, session_id: str) -> RankingSession:
        """Recover a crashed session from its snapshot + journal tail."""
        self.server.requests_served += 1
        return self.manager.resume(session_id, self.server.serving_environment)

    def close(self, session: RankingSession) -> None:
        """Seal a session: final snapshot, truncated journal, closed file."""
        self.manager.close(session)

    def has_session(self, session_id: str) -> bool:
        """Whether durable state exists on disk for ``session_id``."""
        return self.manager.has_session(session_id)

    def rank_trip_durably(
        self,
        session_id: str,
        trip: "Trip",
        config: "EcoChargeConfig | None" = None,
    ) -> "RankingRun":
        """One-call convenience: open, run to completion, seal."""
        from ..observability.tracing import trip_correlation_id

        with self.server.serving_environment.telemetry.span(
            "server.rank_trip_durably",
            tier="server",
            trace_id=trip_correlation_id(trip),
            session_id=session_id,
        ):
            session = self.open(session_id, trip, config)
            try:
                return session.run()
            finally:
                self.close(session)

    def resume_and_finish(self, session_id: str) -> "RankingRun":
        """One-call convenience: resume, finish the trip, seal."""
        from ..observability.tracing import trip_correlation_id

        session = self.resume(session_id)
        # The resumed trace adopts the same content-hashed trip ID the
        # pre-crash run used, so both processes' spans share one trace.
        with self.server.serving_environment.telemetry.span(
            "server.resume_and_finish",
            tier="server",
            trace_id=trip_correlation_id(session.trip),
            session_id=session_id,
        ):
            try:
                return session.run()
            finally:
                self.close(session)
