"""EcoCharge client.

The in-vehicle / on-phone application tier: fetches region snapshots from
the EIS, runs the local Algorithm 1 over them, and keeps per-session
accounting of how much data crossed the (simulated) network — the figures
the Mode 1/3 deployments are judged on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
from ..core.environment import ChargingEnvironment
from ..core.offering import OfferingTable
from ..core.ranking import RankingRun, run_over_trip
from ..network.path import Trip
from .eis import EcoChargeInformationServer
from .modes import OFFERING_TABLE_KB, REQUEST_KB, SNAPSHOT_KB_PER_CHARGER


@dataclass(slots=True)
class SessionStats:
    """Per-trip client accounting."""

    snapshots_fetched: int = 0
    tables_generated: int = 0
    tables_adapted: int = 0
    payload_kb: float = 0.0
    degraded_snapshots: int = 0

    @property
    def degraded_fraction(self) -> float:
        """Share of fetched snapshots served stale or from fallback."""
        return (
            self.degraded_snapshots / self.snapshots_fetched
            if self.snapshots_fetched
            else 0.0
        )

    @property
    def cache_benefit(self) -> float:
        total = self.tables_generated + self.tables_adapted
        return self.tables_adapted / total if total else 0.0


class EcoChargeClient:
    """A client session bound to one EIS and one vehicle."""

    def __init__(
        self,
        server: EcoChargeInformationServer,
        config: EcoChargeConfig | None = None,
    ):
        self.server = server
        self.config = config if config is not None else EcoChargeConfig()
        self._ranker = EcoChargeRanker(server.environment, self.config)
        self.stats = SessionStats()

    @property
    def environment(self) -> ChargingEnvironment:
        return self.server.environment

    def plan_trip(self, trip: Trip) -> RankingRun:
        """Plan a full trip: one Offering Table per segment.

        Every regenerated table corresponds to one snapshot fetch from the
        EIS; adapted tables reuse on-device state and fetch nothing.
        """
        self._ranker.reset()
        self.stats = SessionStats()
        run = run_over_trip(
            self._ranker, self.environment, trip, segment_km=self.config.segment_km
        )
        for table in run.tables:
            self._account_for(table, trip)
        return run

    def _account_for(self, table: OfferingTable, trip: Trip) -> None:
        if table.is_adapted:
            self.stats.tables_adapted += 1
            return
        self.stats.tables_generated += 1
        self.stats.snapshots_fetched += 1
        snapshot = self.server.region_snapshot(
            table.origin,
            self.config.radius_km,
            eta_h=table.generated_at_h,
            now_h=trip.departure_time_h,
        )
        if snapshot.is_degraded:
            self.stats.degraded_snapshots += 1
        self.stats.payload_kb += (
            REQUEST_KB + SNAPSHOT_KB_PER_CHARGER * snapshot.charger_count + OFFERING_TABLE_KB
        )
